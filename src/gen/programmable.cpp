#include "gen/programmable.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::gen {

namespace {

std::vector<double> distinct_magnitudes(const std::vector<double>& steps) {
    std::vector<double> levels;
    for (double s : steps) {
        const double magnitude = std::abs(s);
        if (magnitude < 1e-12) {
            continue; // "no capacitor selected"
        }
        const bool known = std::any_of(levels.begin(), levels.end(), [&](double l) {
            return std::abs(l - magnitude) < 1e-9;
        });
        if (!known) {
            levels.push_back(magnitude);
        }
    }
    std::sort(levels.begin(), levels.end());
    return levels;
}

} // namespace

step_pattern::step_pattern(std::vector<double> steps) : steps_(std::move(steps)) {
    BISTNA_EXPECTS(steps_.size() >= 4, "pattern needs at least 4 steps per period");
    for (double s : steps_) {
        // Nominal patterns are within [-1, 1]; drawn (mismatched) capacitor
        // values may exceed unity by the matching error, so allow ~2 %.
        BISTNA_EXPECTS(std::abs(s) <= 1.02, "step values must be within [-1, 1]");
    }
    levels_ = distinct_magnitudes(steps_);
}

step_pattern step_pattern::quantized_sine(std::size_t steps_per_period) {
    BISTNA_EXPECTS(steps_per_period >= 4 && steps_per_period % 2 == 0,
                   "quantized sine needs an even step count >= 4");
    std::vector<double> steps(steps_per_period);
    for (std::size_t n = 0; n < steps_per_period; ++n) {
        steps[n] = std::sin(two_pi * static_cast<double>(n) /
                            static_cast<double>(steps_per_period));
    }
    return step_pattern(std::move(steps));
}

step_pattern step_pattern::two_tone(std::size_t steps_per_period, std::size_t m, double ratio,
                                    double phase_rad) {
    BISTNA_EXPECTS(m >= 2 && m < steps_per_period / 2, "second tone index out of range");
    BISTNA_EXPECTS(ratio > 0.0 && ratio <= 1.0, "tone ratio must be in (0, 1]");
    std::vector<double> steps(steps_per_period);
    double peak = 0.0;
    for (std::size_t n = 0; n < steps_per_period; ++n) {
        const double t = two_pi * static_cast<double>(n) /
                         static_cast<double>(steps_per_period);
        steps[n] = std::sin(t) + ratio * std::sin(static_cast<double>(m) * t + phase_rad);
        peak = std::max(peak, std::abs(steps[n]));
    }
    for (double& s : steps) {
        s /= peak;
    }
    return step_pattern(std::move(steps));
}

step_pattern step_pattern::with_mismatch(sim::process_sampler& process) const {
    // One physical capacitor per distinct magnitude: every step sharing a
    // magnitude gets the same drawn value.
    std::vector<double> drawn_levels = process.matched_capacitors(levels_);
    std::vector<double> steps = steps_;
    for (double& s : steps) {
        const double magnitude = std::abs(s);
        if (magnitude < 1e-12) {
            continue;
        }
        for (std::size_t i = 0; i < levels_.size(); ++i) {
            if (std::abs(levels_[i] - magnitude) < 1e-9) {
                s = std::copysign(drawn_levels[i], s);
                break;
            }
        }
    }
    return step_pattern(std::move(steps));
}

namespace {

sc::biquad_caps design_for_pattern(const step_pattern& pattern,
                                   const programmable_generator::params& config) {
    sc::biquad_design_spec spec;
    spec.normalized_f0 = 1.0 / static_cast<double>(pattern.period());
    spec.pole_radius = config.pole_radius;
    spec.passband_gain = config.passband_gain;
    return sc::design_biquad(spec);
}

} // namespace

programmable_generator::programmable_generator(step_pattern pattern, const params& config)
    : pattern_(std::move(pattern)), caps_(design_for_pattern(pattern_, config)),
      biquad_(caps_, config.opamp1, config.opamp2, rng(config.seed).spawn()) {
    rng seed_rng(config.seed);
    sim::process_sampler process(config.process, seed_rng.spawn());
    pattern_ = pattern_.with_mismatch(process);
}

double programmable_generator::step() {
    const double cap = pattern_.step_value(step_index_);
    ++step_index_;
    return biquad_.step(va_diff_, cap);
}

std::vector<double> programmable_generator::generate(std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(step());
    }
    return out;
}

void programmable_generator::settle(std::size_t periods) {
    for (std::size_t i = 0; i < periods * pattern_.period(); ++i) {
        step();
    }
}

void programmable_generator::reset() {
    biquad_.reset();
    step_index_ = 0;
}

double programmable_generator::normalized_output_frequency() const {
    return 1.0 / static_cast<double>(pattern_.period());
}

} // namespace bistna::gen
