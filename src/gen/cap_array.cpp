#include "gen/cap_array.hpp"

#include "common/error.hpp"

namespace bistna::gen {

cap_array::cap_array() {
    for (std::size_t k = 0; k < level_count; ++k) {
        levels_[k] = control_sequencer::ideal_level(k);
    }
}

cap_array::cap_array(sim::process_sampler& process) {
    levels_[0] = 0.0; // "no capacitor selected" has no mismatch
    for (std::size_t k = 1; k < level_count; ++k) {
        levels_[k] = process.matched_capacitor(control_sequencer::ideal_level(k));
    }
}

double cap_array::value(generator_control control) const {
    const double level = levels_[control.cap_index];
    return control.negative ? -level : level;
}

double cap_array::level(std::size_t cap_index) const {
    BISTNA_EXPECTS(cap_index < level_count, "capacitor index out of range");
    return levels_[cap_index];
}

void cap_array::inject_level_fault(std::size_t cap_index, double relative_delta) {
    BISTNA_EXPECTS(cap_index >= 1 && cap_index < level_count,
                   "fault must target a real capacitor (index 1..4)");
    levels_[cap_index] *= 1.0 + relative_delta;
}

} // namespace bistna::gen
