// The generator's digital control sequence (paper Fig. 2c, eqs. (1)-(2)).
//
// Over one output period the input capacitor array steps through
//   CI(t) = (Phi_in - !Phi_in) * sum_k c_k(t) * CI_k,  CI_k = sin(k*pi/8)
// i.e. 16 generator-clock steps selecting capacitor index
//   k(n) = {0,1,2,3,4,3,2,1, 0,1,2,3,4,3,2,1}  (n = 0..15)
// with Phi_in flipping the sign for the second half.  Because
// sin(n*pi/8) takes exactly the values +/- CI_k, the sampled input sequence
// is an *exact* sine at f_gen/16 -- the biquad only removes the
// zero-order-hold staircase images.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bistna::gen {

/// Number of generator-clock steps per output period.
inline constexpr std::size_t steps_per_period = 16;

/// Number of distinct capacitor levels (CI_0 = 0 is "no cap selected").
inline constexpr std::size_t level_count = 5;

/// Digital control word for one generator-clock step.
struct generator_control {
    std::uint8_t cap_index = 0; ///< which CI_k is switched into the signal path (0..4)
    bool negative = false;      ///< Phi_in polarity (second half-period)
};

/// Control sequencer producing the Fig. 2c pattern.
class control_sequencer {
public:
    /// Control word for step n (taken modulo 16).
    static generator_control at(std::size_t step) noexcept;

    /// Ideal level of capacitor CI_k = sin(k*pi/8).
    static double ideal_level(std::size_t cap_index);

    /// Ideal signed step value sin(n*pi/8) reconstructed from the controls.
    static double ideal_step_value(std::size_t step) noexcept;

    /// The full table of capacitor indices over one period.
    static const std::array<std::uint8_t, steps_per_period>& index_table() noexcept;
};

} // namespace bistna::gen
