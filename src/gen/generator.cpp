#include "gen/generator.hpp"

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"

namespace bistna::gen {

generator_params generator_params::ideal() {
    generator_params p;
    p.opamp1 = sc::opamp_params::ideal();
    p.opamp2 = sc::opamp_params::ideal();
    p.process = sim::process_params::ideal();
    return p;
}

namespace {

using bistna::fnv1a_mix; // keep the common overloads visible next to ours

void fnv1a_mix(std::uint64_t& hash, const sc::opamp_params& opamp) noexcept {
    fnv1a_mix(hash, opamp.dc_gain_db);
    fnv1a_mix(hash, opamp.settling_error);
    fnv1a_mix(hash, opamp.output_swing);
    fnv1a_mix(hash, opamp.offset_volts);
    fnv1a_mix(hash, opamp.noise_rms);
    fnv1a_mix(hash, opamp.hd2);
    fnv1a_mix(hash, opamp.hd3);
}

} // namespace

std::uint64_t generator_params::fingerprint() const noexcept {
    std::uint64_t hash = fnv1a_offset_basis;
    fnv1a_mix(hash, caps.a);
    fnv1a_mix(hash, caps.b);
    fnv1a_mix(hash, caps.c);
    fnv1a_mix(hash, caps.d);
    fnv1a_mix(hash, caps.f);
    fnv1a_mix(hash, caps.cin_scale);
    fnv1a_mix(hash, opamp1);
    fnv1a_mix(hash, opamp2);
    fnv1a_mix(hash, process.cap_mismatch_sigma);
    fnv1a_mix(hash, process.opamp_gain_sigma_db);
    fnv1a_mix(hash, process.comparator_offset_sigma);
    fnv1a_mix(hash, process.opamp_offset_sigma);
    fnv1a_mix(hash, static_cast<std::uint64_t>(process.process_corner));
    fnv1a_mix(hash, seed);
    fnv1a_mix(hash, static_cast<std::uint64_t>(cap_fault_index));
    fnv1a_mix(hash, cap_fault_delta);
    return hash;
}

std::uint64_t sinewave_generator::process_stream_seed(std::uint64_t seed) noexcept {
    return derive_stream_seed(seed, 0);
}

std::uint64_t sinewave_generator::noise_stream_seed(std::uint64_t seed) noexcept {
    return derive_stream_seed(seed, 1);
}

sinewave_generator::drawn_instance
sinewave_generator::draw_instance(const generator_params& params) {
    sim::process_sampler process(params.process, rng(process_stream_seed(params.seed)));
    sc::biquad_caps caps = params.caps;
    caps.a = process.matched_capacitor(caps.a);
    caps.b = process.matched_capacitor(caps.b);
    caps.c = process.matched_capacitor(caps.c);
    caps.d = process.matched_capacitor(caps.d);
    caps.f = process.matched_capacitor(caps.f);
    cap_array array(process);
    if (params.cap_fault_delta != 0.0) {
        array.inject_level_fault(params.cap_fault_index, params.cap_fault_delta);
    }
    return drawn_instance{caps, std::move(array)};
}

sinewave_generator::sinewave_generator(const generator_params& params)
    : sinewave_generator(params, draw_instance(params)) {}

sinewave_generator::sinewave_generator(const generator_params& params, drawn_instance&& drawn)
    : params_(params), drawn_caps_(drawn.caps), array_(drawn.array),
      biquad_(drawn_caps_, params.opamp1, params.opamp2,
              rng(noise_stream_seed(params.seed))) {}

double sinewave_generator::step() {
    const auto control = control_sequencer::at(step_);
    ++step_;
    return biquad_.step(va_diff_, array_.value(control));
}

void sinewave_generator::settle(std::size_t periods) {
    for (std::size_t i = 0; i < periods * steps_per_period; ++i) {
        step();
    }
}

std::vector<double> sinewave_generator::generate(std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(step());
    }
    return out;
}

void sinewave_generator::reset() {
    biquad_.reset();
    step_ = 0;
}

double sinewave_generator::expected_amplitude() const {
    // Fundamental of this instance's drawn 16-step input sequence.  With an
    // ideal array the sequence is an exact unit sine, so this factor is 1;
    // mismatch perturbs it by O(sigma).
    const double n = static_cast<double>(steps_per_period);
    std::complex<double> bin{0.0, 0.0};
    for (std::size_t step = 0; step < steps_per_period; ++step) {
        const double x = array_.value(control_sequencer::at(step));
        const double angle = -two_pi * static_cast<double>(step) / n;
        bin += x * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    const double input_fundamental = 2.0 * std::abs(bin) / n;

    // Linear response of the *drawn* biquad at f_gen/16.
    const double gain = std::abs(sc::biquad_response(drawn_caps_, 1.0 / n));
    return gain * input_fundamental * va_diff_;
}

ideal_sine_source::ideal_sine_source(double amplitude, double normalized_frequency,
                                     double phase_rad, double offset)
    : amplitude_(amplitude), normalized_frequency_(normalized_frequency), phase_(phase_rad),
      offset_(offset) {
    BISTNA_EXPECTS(normalized_frequency > 0.0 && normalized_frequency < 0.5,
                   "normalized frequency must be in (0, 0.5)");
}

double ideal_sine_source::sample(std::size_t n) const {
    return offset_ +
           amplitude_ * std::sin(two_pi * normalized_frequency_ * static_cast<double>(n) +
                                 phase_);
}

} // namespace bistna::gen
