#include "gen/generator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::gen {

generator_params generator_params::ideal() {
    generator_params p;
    p.opamp1 = sc::opamp_params::ideal();
    p.opamp2 = sc::opamp_params::ideal();
    p.process = sim::process_params::ideal();
    return p;
}

namespace {

/// Draw this instance's biquad capacitors and input array from the process.
struct drawn_instance {
    sc::biquad_caps caps;
    cap_array array;
};

drawn_instance draw_instance(const generator_params& params) {
    rng seed_rng(params.seed);
    sim::process_sampler process(params.process, seed_rng.spawn());
    sc::biquad_caps caps = params.caps;
    caps.a = process.matched_capacitor(caps.a);
    caps.b = process.matched_capacitor(caps.b);
    caps.c = process.matched_capacitor(caps.c);
    caps.d = process.matched_capacitor(caps.d);
    caps.f = process.matched_capacitor(caps.f);
    return drawn_instance{caps, cap_array(process)};
}

} // namespace

sinewave_generator::sinewave_generator(const generator_params& params)
    : params_(params),
      drawn_caps_(draw_instance(params).caps),
      array_(draw_instance(params).array),
      biquad_(drawn_caps_, params.opamp1, params.opamp2, rng(params.seed).spawn()) {}

double sinewave_generator::step() {
    const auto control = control_sequencer::at(step_);
    ++step_;
    return biquad_.step(va_diff_, array_.value(control));
}

void sinewave_generator::settle(std::size_t periods) {
    for (std::size_t i = 0; i < periods * steps_per_period; ++i) {
        step();
    }
}

std::vector<double> sinewave_generator::generate(std::size_t count) {
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(step());
    }
    return out;
}

void sinewave_generator::reset() {
    biquad_.reset();
    step_ = 0;
}

double sinewave_generator::expected_amplitude() const {
    const double gain =
        std::abs(sc::biquad_response(params_.caps, 1.0 / static_cast<double>(steps_per_period)));
    return gain * va_diff_;
}

ideal_sine_source::ideal_sine_source(double amplitude, double normalized_frequency,
                                     double phase_rad, double offset)
    : amplitude_(amplitude), normalized_frequency_(normalized_frequency), phase_(phase_rad),
      offset_(offset) {
    BISTNA_EXPECTS(normalized_frequency > 0.0 && normalized_frequency < 0.5,
                   "normalized frequency must be in (0, 0.5)");
}

double ideal_sine_source::sample(std::size_t n) const {
    return offset_ +
           amplitude_ * std::sin(two_pi * normalized_frequency_ * static_cast<double>(n) +
                                 phase_);
}

} // namespace bistna::gen
