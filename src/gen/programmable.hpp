// Programmable quantized-waveform generator (extension).
//
// The paper's generator hard-wires the 16-step sine of eq. (2); its cited
// predecessor (Patangia & Zenone [12]) is *programmable*.  This extension
// generalizes the control sequencer to any steps-per-period P and any
// level table, so the same biquad-plus-switched-array hardware can emit
//   - finer sine quantizations (P = 32, 64 -> images pushed further out),
//   - amplitude-modulated / multitone step patterns for two-tone tests.
// The biquad design helper retunes the smoothing filter to f_gen/P.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sc/analysis.hpp"
#include "sc/biquad.hpp"
#include "sim/process.hpp"

namespace bistna::gen {

/// A periodic step pattern: signed capacitor selections per generator cycle.
class step_pattern {
public:
    /// Build from explicit step values (normalized to [-1, 1]); the level
    /// table is the sorted set of distinct magnitudes (the capacitor bank).
    explicit step_pattern(std::vector<double> steps);

    /// Quantized sine with P steps per period: values sin(2 pi n / P).
    static step_pattern quantized_sine(std::size_t steps_per_period);

    /// Two-tone pattern: sin(2 pi n/P) + ratio * sin(2 pi m n / P + phase),
    /// renormalized to unit peak.  Useful for intermodulation testing.
    static step_pattern two_tone(std::size_t steps_per_period, std::size_t m, double ratio,
                                 double phase_rad);

    std::size_t period() const noexcept { return steps_.size(); }
    double step_value(std::size_t n) const noexcept { return steps_[n % steps_.size()]; }

    /// Number of distinct capacitor magnitudes the pattern requires
    /// (hardware cost: one unit-ratioed capacitor per level).
    std::size_t level_count() const noexcept { return levels_.size(); }
    const std::vector<double>& levels() const noexcept { return levels_; }

    /// Apply per-level mismatch (the same physical capacitor realizes every
    /// step that shares a magnitude, exactly like the Fig. 2b array).
    step_pattern with_mismatch(sim::process_sampler& process) const;

private:
    std::vector<double> steps_;
    std::vector<double> levels_;
};

/// Generator with a programmable pattern and a retuned smoothing biquad.
class programmable_generator {
public:
    struct params {
        sc::opamp_params opamp1 = sc::opamp_params::folded_cascode_035();
        sc::opamp_params opamp2 = sc::opamp_params::folded_cascode_035();
        sim::process_params process = sim::process_params::cmos035();
        double pole_radius = 0.9625; ///< smoothing-filter Q (as Table I)
        double passband_gain = 2.0;
        std::uint64_t seed = 1;
    };

    programmable_generator(step_pattern pattern, const params& config);

    void set_amplitude(double va_diff_volts) { va_diff_ = va_diff_volts; }

    /// One generator-clock cycle.
    double step();

    std::vector<double> generate(std::size_t count);
    void settle(std::size_t periods = 32);
    void reset();

    /// f_wave / f_gen for this pattern.
    double normalized_output_frequency() const;
    const sc::biquad_caps& caps() const noexcept { return caps_; }
    const step_pattern& pattern() const noexcept { return pattern_; }

private:
    step_pattern pattern_;
    sc::biquad_caps caps_;
    sc::sc_biquad biquad_;
    double va_diff_ = 0.0;
    std::size_t step_index_ = 0;
};

} // namespace bistna::gen
