#include "gen/quantized_sine.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::gen {

namespace {
constexpr std::array<std::uint8_t, steps_per_period> indices = {
    0, 1, 2, 3, 4, 3, 2, 1, 0, 1, 2, 3, 4, 3, 2, 1};
} // namespace

generator_control control_sequencer::at(std::size_t step) noexcept {
    const std::size_t n = step % steps_per_period;
    return generator_control{indices[n], n >= steps_per_period / 2};
}

double control_sequencer::ideal_level(std::size_t cap_index) {
    BISTNA_EXPECTS(cap_index < level_count, "capacitor index out of range");
    return std::sin(static_cast<double>(cap_index) * pi / 8.0);
}

double control_sequencer::ideal_step_value(std::size_t step) noexcept {
    const auto control = at(step);
    const double level = std::sin(static_cast<double>(control.cap_index) * pi / 8.0);
    return control.negative ? -level : level;
}

const std::array<std::uint8_t, steps_per_period>& control_sequencer::index_table() noexcept {
    return indices;
}

} // namespace bistna::gen
