// The time-variant input capacitor array CI(t) (paper Fig. 2b).
//
// Four unit-ratioed capacitors CI_1..CI_4 are switched into the signal path
// one at a time; fabrication mismatch perturbs each ratio, which is the
// mechanism behind the generator's residual harmonic distortion.  Because
// the same physical capacitor realizes mirrored steps (n, 8-n, 8+n, 16-n),
// the mismatch error waveform is half-wave antisymmetric and contributes
// only odd harmonics -- a property the tests check.
#pragma once

#include <array>

#include "gen/quantized_sine.hpp"
#include "sim/process.hpp"

namespace bistna::gen {

class cap_array {
public:
    /// Ideal array (levels exactly sin(k*pi/8)).
    cap_array();

    /// Array with mismatch drawn from the process sampler.
    explicit cap_array(sim::process_sampler& process);

    /// Signed capacitor value selected by a control word.
    double value(generator_control control) const;

    /// The drawn (unsigned) level for index k.
    double level(std::size_t cap_index) const;

    /// Inject a parametric deviation into one drawn level on top of the
    /// process mismatch: levels[cap_index] *= 1 + relative_delta.  This is
    /// the diag fault model's "unit capacitor defect" (a damaged switch or
    /// shorted finger), distinct from the random matching error: the same
    /// physical capacitor realizes the mirrored steps n, 8-n, 8+n, 16-n,
    /// so the deviation stays half-wave antisymmetric and shows up as odd
    /// harmonic distortion plus a fundamental shift.
    void inject_level_fault(std::size_t cap_index, double relative_delta);

private:
    std::array<double, level_count> levels_{};
};

} // namespace bistna::gen
