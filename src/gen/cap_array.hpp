// The time-variant input capacitor array CI(t) (paper Fig. 2b).
//
// Four unit-ratioed capacitors CI_1..CI_4 are switched into the signal path
// one at a time; fabrication mismatch perturbs each ratio, which is the
// mechanism behind the generator's residual harmonic distortion.  Because
// the same physical capacitor realizes mirrored steps (n, 8-n, 8+n, 16-n),
// the mismatch error waveform is half-wave antisymmetric and contributes
// only odd harmonics -- a property the tests check.
#pragma once

#include <array>

#include "gen/quantized_sine.hpp"
#include "sim/process.hpp"

namespace bistna::gen {

class cap_array {
public:
    /// Ideal array (levels exactly sin(k*pi/8)).
    cap_array();

    /// Array with mismatch drawn from the process sampler.
    explicit cap_array(sim::process_sampler& process);

    /// Signed capacitor value selected by a control word.
    double value(generator_control control) const;

    /// The drawn (unsigned) level for index k.
    double level(std::size_t cap_index) const;

private:
    std::array<double, level_count> levels_{};
};

} // namespace bistna::gen
