// The switched-capacitor sinewave generator (paper Fig. 2, section III.A).
//
// A Table-I biquad whose input capacitor is the time-variant array CI(t):
// each generator-clock cycle the selected capacitor samples the programming
// DC level V_A+ - V_A- and dumps the charge into the filter.  The output is
// a smoothed sine at f_wave = f_gen/16 with amplitude 2*(V_A+ - V_A-).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "gen/cap_array.hpp"
#include "gen/quantized_sine.hpp"
#include "sc/analysis.hpp"
#include "sc/biquad.hpp"
#include "sim/process.hpp"

namespace bistna::gen {

/// Configuration of one fabricated generator instance.
struct generator_params {
    sc::biquad_caps caps = sc::biquad_caps::table1();
    sc::opamp_params opamp1 = sc::opamp_params::folded_cascode_035();
    sc::opamp_params opamp2 = sc::opamp_params::folded_cascode_035();
    sim::process_params process = sim::process_params::cmos035();
    std::uint64_t seed = 1;

    /// Parametric single-fault injection into the drawn input array (diag
    /// fault model): unit capacitor `cap_fault_index` deviates by
    /// `cap_fault_delta` relative on top of the process mismatch draw.
    /// 0 disables the fault; both fields are part of the fingerprint.
    std::size_t cap_fault_index = 2;
    double cap_fault_delta = 0.0;

    /// Fully ideal instance (exact caps, perfect op-amps, no noise).
    static generator_params ideal();

    /// Hash over every field that shapes the emitted waveform (caps,
    /// op-amps, process, seed).  Two parameter sets with the
    /// same fingerprint draw the same instance and emit the same
    /// clock-normalized sequence, which is what lets a stimulus-record cache
    /// key on it (see core::stimulus_cache).
    std::uint64_t fingerprint() const noexcept;
};

class sinewave_generator {
public:
    explicit sinewave_generator(const generator_params& params);

    /// Seed of the child RNG stream that draws the process instance
    /// (capacitor mismatch).  Distinct from noise_stream_seed by
    /// construction, so mismatch draws and op-amp noise are uncorrelated.
    static std::uint64_t process_stream_seed(std::uint64_t seed) noexcept;
    /// Seed of the child RNG stream that drives the biquad's op-amp noise.
    static std::uint64_t noise_stream_seed(std::uint64_t seed) noexcept;

    /// Program the amplitude: the differential DC level V_A+ - V_A-.
    /// Output amplitude is approximately 2 * va_diff (Fig. 8a).
    void set_amplitude(volt va_diff) { va_diff_ = va_diff.value; }
    volt amplitude_setting() const { return volt{va_diff_}; }

    /// Advance one generator-clock cycle and return the output sample.
    double step();

    /// Current position within the 16-step period.
    std::size_t phase_step() const noexcept { return step_ % steps_per_period; }

    /// Run `periods` output periods to flush the startup transient.
    void settle(std::size_t periods = 32);

    /// Produce `count` output samples at the generator clock rate.
    std::vector<double> generate(std::size_t count);

    /// Restart from zero state and phase.
    void reset();

    /// The nominal (pre-draw) configuration of this instance.
    const generator_params& params() const noexcept { return params_; }
    /// The drawn (mismatched) input array of this instance.
    const cap_array& array() const noexcept { return array_; }
    /// The drawn biquad capacitors of this instance.
    const sc::biquad_caps& drawn_caps() const noexcept { return drawn_caps_; }
    /// Expected output amplitude of *this drawn instance* for the current
    /// setting: the fundamental of the drawn input-array sequence through
    /// the linear response of the drawn biquad capacitors.  For the
    /// design-nominal prediction evaluate sc::biquad_response over the
    /// nominal params().caps instead.
    double expected_amplitude() const;

private:
    /// One process draw: the biquad capacitors and the input array both
    /// come from a single sampler pass over the process stream.
    struct drawn_instance {
        sc::biquad_caps caps;
        cap_array array;
    };
    static drawn_instance draw_instance(const generator_params& params);
    sinewave_generator(const generator_params& params, drawn_instance&& drawn);

    generator_params params_;
    sc::biquad_caps drawn_caps_;
    cap_array array_;
    sc::sc_biquad biquad_;
    double va_diff_ = 0.0;
    std::size_t step_ = 0;
};

/// Ideal discrete-time sine source (reference/bypass experiments):
/// x[n] = offset + amplitude * sin(2 pi f_norm n + phase).
class ideal_sine_source {
public:
    ideal_sine_source(double amplitude, double normalized_frequency, double phase_rad = 0.0,
                      double offset = 0.0);

    double sample(std::size_t n) const;
    double step() { return sample(index_++); }
    void reset() noexcept { index_ = 0; }

private:
    double amplitude_;
    double normalized_frequency_;
    double phase_;
    double offset_;
    std::size_t index_ = 0;
};

} // namespace bistna::gen
