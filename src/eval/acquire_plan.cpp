#include "eval/acquire_plan.hpp"

#include "common/hash.hpp"

namespace bistna::eval {

namespace {

std::uint64_t tables_key(const acquisition_settings& settings) {
    std::uint64_t hash = fnv1a_offset_basis;
    fnv1a_mix(hash, static_cast<std::uint64_t>(settings.harmonic_k));
    fnv1a_mix(hash, static_cast<std::uint64_t>(settings.n_per_period));
    fnv1a_mix(hash, static_cast<std::uint64_t>(settings.periods));
    fnv1a_mix(hash, std::uint64_t{settings.offset == offset_mode::chopped ? 1U : 0U});
    return hash;
}

} // namespace

std::shared_ptr<const demod_tables>
demod_table_cache::get(const acquisition_settings& settings) {
    const std::uint64_t key = tables_key(settings);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second->matches(settings)) {
            return it->second;
        }
    }
    // Build outside the lock (tables for long acquisitions are sizeable);
    // concurrent builders produce identical tables, last store wins.
    auto built = std::make_shared<const demod_tables>(demod_tables::build(settings));
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = built;
    return built;
}

std::uint64_t calibration_share::key_hash(const sd::modulator_params& params,
                                          std::uint64_t seed, std::size_t periods,
                                          std::size_t n_per_period) {
    std::uint64_t hash = fnv1a_offset_basis;
    fnv1a_mix(hash, seed);
    fnv1a_mix(hash, static_cast<std::uint64_t>(periods));
    fnv1a_mix(hash, static_cast<std::uint64_t>(n_per_period));
    fnv1a_mix(hash, params.ci_over_cf);
    fnv1a_mix(hash, params.vref);
    fnv1a_mix(hash, params.dc_gain_db);
    fnv1a_mix(hash, params.settling_error);
    fnv1a_mix(hash, params.integrator_swing);
    fnv1a_mix(hash, params.input_offset);
    fnv1a_mix(hash, params.comparator_offset);
    fnv1a_mix(hash, params.comparator_hysteresis);
    fnv1a_mix(hash, params.noise_rms);
    return hash;
}

std::shared_ptr<const calibration_snapshot>
calibration_share::find(const sd::modulator_params& params, std::uint64_t seed,
                        std::size_t periods, std::size_t n_per_period) {
    const std::uint64_t key = key_hash(params, seed, periods, n_per_period);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end() || !(it->second->params == params)) {
        return nullptr;
    }
    return it->second;
}

void calibration_share::store(std::uint64_t seed, std::size_t periods,
                              std::size_t n_per_period, calibration_snapshot snapshot) {
    const std::uint64_t key = key_hash(snapshot.params, seed, periods, n_per_period);
    auto shared = std::make_shared<const calibration_snapshot>(std::move(snapshot));
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= max_entries && entries_.find(key) == entries_.end()) {
        return;
    }
    entries_[key] = std::move(shared);
}

std::size_t calibration_share::entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace bistna::eval
