// Shared acquisition resources for the lane-major fast paths (extension).
//
// Every acquire call used to rebuild the per-sample demodulation control
// tables (the q_k square-wave signs and the counter accumulation sign) and
// every lane used to run its own grounded-input offset calibration.  Both
// are pure functions of a handful of parameters, so the sweep engine keeps
// them in thread-safe shared caches:
//
//  - demod_table_cache maps acquisition settings to immutable sign tables,
//    built once per program stage and reused by every work item;
//  - calibration_share transplants the post-calibration extractor state
//    between lanes constructed with the same modulator params and seed.
//    Calibration consumes two RNG spawns and produces rates that are a pure
//    function of (params, stream position, length), so restoring a snapshot
//    into such a lane is bit-identical to the lane calibrating itself --
//    the restore verifies the stream position and params match before
//    adopting anything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "eval/signature.hpp"
#include "sd/modulator.hpp"

namespace bistna::eval {

/// Thread-safe cache of demod_tables keyed on the settings that shape them
/// (harmonic, period counts, chopping).  Entries are immutable and shared.
class demod_table_cache {
public:
    /// The tables for `settings`, built on first use.
    std::shared_ptr<const demod_tables> get(const acquisition_settings& settings);

private:
    std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const demod_tables>> entries_;
};

/// Thread-safe map of calibration snapshots keyed on (modulator params,
/// seed, calibration length).  find/store race benignly: the snapshot for a
/// key is unique (a pure function of the key), so double stores are
/// idempotent and a miss merely costs one redundant calibration.
class calibration_share {
public:
    /// Snapshot for lanes constructed with these params and seed, or null.
    std::shared_ptr<const calibration_snapshot>
    find(const sd::modulator_params& params, std::uint64_t seed, std::size_t periods,
         std::size_t n_per_period);

    /// Publish a snapshot for the key.  Ignored (cache full) beyond a size
    /// cap -- correctness never depends on a store landing.
    void store(std::uint64_t seed, std::size_t periods, std::size_t n_per_period,
               calibration_snapshot snapshot);

    std::size_t entries() const;

private:
    static std::uint64_t key_hash(const sd::modulator_params& params, std::uint64_t seed,
                                  std::size_t periods, std::size_t n_per_period);

    /// Growth cap: screening shares one evaluator config across a whole
    /// lot, so a handful of entries covers real batches; mixed-seed
    /// acquisition batches stop publishing here instead of growing without
    /// bound.
    static constexpr std::size_t max_entries = 4096;

    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const calibration_snapshot>> entries_;
};

} // namespace bistna::eval
