#include "eval/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::eval {

sinewave_evaluator::sinewave_evaluator(const evaluator_config& config)
    : config_(config), extractor_(config.modulator, config.seed) {}

void sinewave_evaluator::calibrate() {
    extractor_.calibrate_offset(config_.calibration_periods, config_.n_per_period);
}

void sinewave_evaluator::ensure_calibrated() {
    if (config_.offset == offset_mode::calibrated && !extractor_.offset_calibrated()) {
        calibrate();
    }
}

acquisition_settings sinewave_evaluator::settings_for(std::size_t k,
                                                      std::size_t periods) const {
    acquisition_settings settings;
    settings.harmonic_k = k;
    settings.periods = periods;
    settings.n_per_period = config_.n_per_period;
    settings.offset = config_.offset;
    return settings;
}

dc_measurement sinewave_evaluator::measure_dc(const sample_source& source,
                                              std::size_t periods) {
    ensure_calibrated();
    const auto sig = extractor_.acquire(source, settings_for(0, periods));
    return estimate_dc(sig);
}

harmonic_measurement sinewave_evaluator::measure_harmonic(const sample_source& source,
                                                          std::size_t k,
                                                          std::size_t periods) {
    ensure_calibrated();
    const auto sig = extractor_.acquire(source, settings_for(k, periods));
    return estimate_harmonic(sig, config_.constants);
}

std::vector<harmonic_measurement> sinewave_evaluator::harmonic_sweep(
    const sample_source& source, const std::vector<std::size_t>& ks, std::size_t periods) {
    std::vector<harmonic_measurement> out;
    out.reserve(ks.size());
    for (std::size_t k : ks) {
        out.push_back(measure_harmonic(source, k, periods));
    }
    return out;
}

std::vector<harmonic_measurement> sinewave_evaluator::corrected_harmonic_sweep(
    const sample_source& source, const std::vector<std::size_t>& ks, std::size_t periods,
    std::size_t correction_passes) {
    ensure_calibrated();

    // First pass: raw signatures for every requested harmonic.
    std::vector<signature_result> sigs;
    sigs.reserve(ks.size());
    for (std::size_t k : ks) {
        BISTNA_EXPECTS(k > 0, "leakage correction applies to harmonics, not DC");
        sigs.push_back(extractor_.acquire(source, settings_for(k, periods)));
    }

    // Current complex estimates A_k e^{j phi_k} (sin-reference phases).
    auto estimates = [&](const std::vector<signature_result>& s) {
        std::vector<std::complex<double>> est(s.size());
        for (std::size_t i = 0; i < s.size(); ++i) {
            const auto h = estimate_harmonic(s[i], constants_mode::exact);
            const double phase = h.phase ? h.phase->radians : 0.0;
            est[i] = std::polar(h.amplitude.volts, phase);
        }
        return est;
    };

    std::vector<signature_result> corrected = sigs;
    for (std::size_t pass = 0; pass < correction_passes; ++pass) {
        const auto current = estimates(corrected);
        corrected = sigs;
        for (std::size_t i = 0; i < ks.size(); ++i) {
            const std::size_t k = ks[i];
            const demod_reference demod(k, config_.n_per_period);
            const double mn = static_cast<double>(sigs[i].total_samples);
            // Subtract predicted leakage of measured harmonics m*k (m odd >= 3).
            for (std::size_t m = 3; m * k <= ks.back(); m += 2) {
                const auto it = std::find(ks.begin(), ks.end(), m * k);
                if (it == ks.end()) {
                    continue;
                }
                const auto& upper = current[static_cast<std::size_t>(it - ks.begin())];
                const std::complex<double> cm = demod.coefficient(m);
                const double amp = std::abs(upper);
                const double phi = std::arg(upper);
                const double psi = phi - std::arg(cm);
                // Leakage into the counters (count units = MN/vref * volts):
                const double s1 = amp * std::abs(cm) * std::sin(psi);
                const double s2 =
                    amp * std::abs(cm) *
                    std::sin(psi + static_cast<double>(m) * half_pi);
                corrected[i].i1 -= s1 * mn / sigs[i].vref;
                corrected[i].i2 -= s2 * mn / sigs[i].vref;
            }
        }
    }

    std::vector<harmonic_measurement> out;
    out.reserve(ks.size());
    for (const auto& sig : corrected) {
        out.push_back(estimate_harmonic(sig, config_.constants));
    }
    return out;
}

thd_measurement sinewave_evaluator::measure_thd(const sample_source& source,
                                                std::size_t max_harmonic,
                                                std::size_t periods) {
    BISTNA_EXPECTS(max_harmonic >= 2, "THD needs at least harmonics 1..2");
    std::vector<amplitude_measurement> amplitudes;
    for (std::size_t k = 1; k <= max_harmonic; ++k) {
        if (!demod_reference::alignment_ok(k, config_.n_per_period)) {
            continue; // documented: harmonics violating N mod 4k == 0 are skipped
        }
        amplitudes.push_back(measure_harmonic(source, k, periods).amplitude);
    }
    return compute_thd_lenient(amplitudes);
}

std::vector<amplitude_measurement> sinewave_evaluator::amplitude_convergence(
    const sample_source& source, std::size_t k,
    const std::vector<std::size_t>& checkpoint_periods) {
    ensure_calibrated();
    auto settings = settings_for(k, checkpoint_periods.back());
    const auto sigs =
        extractor_.acquire_with_checkpoints(source, settings, checkpoint_periods);
    std::vector<amplitude_measurement> out;
    out.reserve(sigs.size());
    for (const auto& sig : sigs) {
        out.push_back(estimate_amplitude(sig, config_.constants));
    }
    return out;
}

} // namespace bistna::eval
