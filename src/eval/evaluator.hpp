// High-level sinewave evaluator (paper Fig. 4): acquisition + estimation.
//
// Wraps the signature extractor and the eq. (3)-(5) estimator into the
// measurements the network analyzer needs: DC level, per-harmonic
// amplitude/phase, THD, and amplitude-vs-MN convergence series (Fig. 9).
//
// Extension beyond the paper: `corrected_harmonic_sweep` removes the
// square-wave demodulation's odd-harmonic leakage (the A_{3k}/3, A_{5k}/5
// terms the paper neglects) by measuring the higher harmonics and
// subtracting their predicted contribution from the lower signatures.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/estimator.hpp"
#include "eval/signature.hpp"

namespace bistna::eval {

struct evaluator_config {
    sd::modulator_params modulator = sd::modulator_params::ideal();
    std::uint64_t seed = 42;
    std::size_t calibration_periods = 4096;
    constants_mode constants = constants_mode::exact;
    offset_mode offset = offset_mode::calibrated;
    std::size_t n_per_period = 96; ///< N, fixed by construction on the board
};

class sinewave_evaluator {
public:
    explicit sinewave_evaluator(const evaluator_config& config);

    /// One-time offset calibration (automatic on first use when the offset
    /// mode requires it).
    void calibrate();

    /// DC level (k = 0), eq. (3).
    dc_measurement measure_dc(const sample_source& source, std::size_t periods);

    /// Amplitude + phase of harmonic k, eqs. (4)-(5).
    harmonic_measurement measure_harmonic(const sample_source& source, std::size_t k,
                                          std::size_t periods);

    /// Amplitudes/phases of several harmonics (sequential acquisitions,
    /// exactly like the silicon would run them).
    std::vector<harmonic_measurement> harmonic_sweep(const sample_source& source,
                                                     const std::vector<std::size_t>& ks,
                                                     std::size_t periods);

    /// Leakage-corrected sweep (see file comment).  `correction_passes`
    /// fixed-point iterations; 2 is plenty.
    std::vector<harmonic_measurement> corrected_harmonic_sweep(
        const sample_source& source, const std::vector<std::size_t>& ks, std::size_t periods,
        std::size_t correction_passes = 2);

    /// THD from harmonics 1..max_harmonic (skipping ks that violate the
    /// alignment condition, which is documented behaviour).
    thd_measurement measure_thd(const sample_source& source, std::size_t max_harmonic,
                                std::size_t periods);

    /// Fig. 9: amplitude of harmonic k at several checkpoint period counts
    /// within a single acquisition.
    std::vector<amplitude_measurement> amplitude_convergence(
        const sample_source& source, std::size_t k,
        const std::vector<std::size_t>& checkpoint_periods);

    signature_extractor& extractor() noexcept { return extractor_; }
    const evaluator_config& config() const noexcept { return config_; }

private:
    acquisition_settings settings_for(std::size_t k, std::size_t periods) const;
    void ensure_calibrated();

    evaluator_config config_;
    signature_extractor extractor_;
};

} // namespace bistna::eval
