// The modulating square waves SQ_kT(t) and SQ_kT(t - T/4k) (paper Fig. 4).
//
// Both are +/-1 sequences derived from the master clock: period P = N/k
// samples, the quadrature copy delayed by P/4 samples.  The paper's
// alignment condition ("N/(2^3 k) integer") guarantees these shifts land on
// the sample grid; we require N mod 4k == 0 and N/k even.
//
// The demodulation constants are the *exact* discrete-time Fourier
// coefficients of the sampled square wave:
//     c_m = (1/P) sum_n q[n] e^{-j 2 pi m n / P}
// |c_1| -> 2/pi as P grows (the paper's eq. (4) uses pi/2 = 1/(2/pi));
// using the exact value removes a 0.002..0.3 % systematic, and arg(c_1)
// gives the half-sample phase reference offset.
#pragma once

#include <complex>
#include <cstddef>

namespace bistna::eval {

class demod_reference {
public:
    /// k = harmonic index (0 = DC), n_per_period = oversampling ratio N.
    /// Throws precondition_error if the alignment condition fails.
    demod_reference(std::size_t k, std::size_t n_per_period);

    /// True when SQ_kT and its quarter-period shift exist on the grid.
    static bool alignment_ok(std::size_t k, std::size_t n_per_period) noexcept;

    std::size_t k() const noexcept { return k_; }
    std::size_t n_per_period() const noexcept { return n_; }
    /// Square-wave period in samples (N/k); 0 for k = 0.
    std::size_t period() const noexcept { return period_; }

    /// SQ_kT sign at master-clock sample n (+1/-1); +1 for k = 0.
    int in_phase_sign(std::size_t n) const noexcept;

    /// SQ_kT(t - T/4k) sign at sample n; +1 for k = 0.
    int quadrature_sign(std::size_t n) const noexcept;

    /// Exact m-th Fourier coefficient of the sampled in-phase square wave.
    std::complex<double> coefficient(std::size_t m) const;

    /// Fundamental coefficient c_1 (magnitude ~ 2/pi, phase ~ pi/P - pi/2).
    std::complex<double> c1() const { return c1_; }

    /// The paper's continuous-time constant 2/pi (for "paper mode").
    static constexpr double ct_magnitude = 2.0 / 3.14159265358979323846;

private:
    std::size_t k_;
    std::size_t n_;
    std::size_t period_;
    std::complex<double> c1_;
};

} // namespace bistna::eval
