#include "eval/square_wave.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::eval {

bool demod_reference::alignment_ok(std::size_t k, std::size_t n_per_period) noexcept {
    if (k == 0) {
        return n_per_period > 0;
    }
    // Quarter-period shift must be an integer number of samples and the
    // period must be even so half-cycles balance.
    return n_per_period % (4 * k) == 0;
}

demod_reference::demod_reference(std::size_t k, std::size_t n_per_period)
    : k_(k), n_(n_per_period) {
    BISTNA_EXPECTS(n_per_period > 0, "oversampling ratio must be positive");
    BISTNA_EXPECTS(alignment_ok(k, n_per_period),
                   "square-wave alignment requires N mod 4k == 0 (paper section II)");
    period_ = k == 0 ? 0 : n_per_period / k;
    c1_ = k == 0 ? std::complex<double>(1.0, 0.0) : coefficient(1);
}

int demod_reference::in_phase_sign(std::size_t n) const noexcept {
    if (k_ == 0) {
        return +1;
    }
    return (n % period_) < period_ / 2 ? +1 : -1;
}

int demod_reference::quadrature_sign(std::size_t n) const noexcept {
    if (k_ == 0) {
        return +1;
    }
    const std::size_t shift = period_ / 4;
    // q'(n) = q(n - P/4), with wraparound.
    return in_phase_sign(n + period_ - shift);
}

std::complex<double> demod_reference::coefficient(std::size_t m) const {
    if (k_ == 0) {
        return m == 0 ? std::complex<double>(1.0, 0.0) : std::complex<double>(0.0, 0.0);
    }
    std::complex<double> acc(0.0, 0.0);
    const double p = static_cast<double>(period_);
    for (std::size_t n = 0; n < period_; ++n) {
        const double angle = -two_pi * static_cast<double>(m) * static_cast<double>(n) / p;
        acc += static_cast<double>(in_phase_sign(n)) *
               std::complex<double>(std::cos(angle), std::sin(angle));
    }
    return acc / p;
}

} // namespace bistna::eval
