#include "eval/batch_evaluator.hpp"

#include <numeric>

#include "common/error.hpp"
#include "eval/acquire_plan.hpp"
#include "telemetry/span.hpp"

namespace bistna::eval {

batch_evaluator::batch_evaluator(std::vector<evaluator_config> configs)
    : configs_(std::move(configs)) {
    BISTNA_EXPECTS(!configs_.empty(), "batch evaluator needs at least one lane");
    const evaluator_config& front = configs_.front();
    for (const evaluator_config& config : configs_) {
        BISTNA_EXPECTS(config.n_per_period == front.n_per_period &&
                           config.offset == front.offset &&
                           config.calibration_periods == front.calibration_periods,
                       "batch lanes must share n_per_period, offset mode and "
                       "calibration_periods (seeds and modulators may differ)");
    }
    extractors_.reserve(configs_.size());
    for (const evaluator_config& config : configs_) {
        extractors_.emplace_back(config.modulator, config.seed);
    }
    all_lanes_.resize(configs_.size());
    std::iota(all_lanes_.begin(), all_lanes_.end(), std::size_t{0});
}

signature_extractor& batch_evaluator::extractor(std::size_t lane) {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return extractors_[lane];
}

const evaluator_config& batch_evaluator::config(std::size_t lane) const {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return configs_[lane];
}

acquisition_settings batch_evaluator::settings_for(std::size_t k,
                                                   std::size_t periods) const {
    acquisition_settings settings;
    settings.harmonic_k = k;
    settings.periods = periods;
    settings.n_per_period = configs_.front().n_per_period;
    settings.offset = configs_.front().offset;
    return settings;
}

void batch_evaluator::calibrate() { ensure_calibrated(all_lanes_); }

void batch_evaluator::set_shared_resources(demod_table_cache* tables, arena* scratch,
                                           calibration_share* calibration) noexcept {
    shared_tables_ = tables;
    scratch_ = scratch;
    calibration_share_ = calibration;
}

std::shared_ptr<const demod_tables>
batch_evaluator::tables_for(const acquisition_settings& settings) {
    if (shared_tables_ != nullptr) {
        return shared_tables_->get(settings);
    }
    return std::make_shared<const demod_tables>(demod_tables::build(settings));
}

void batch_evaluator::ensure_calibrated(std::span<const std::size_t> lane_ids) {
    if (configs_.front().offset != offset_mode::calibrated) {
        return;
    }
    const std::size_t cal_periods = configs_.front().calibration_periods;
    const std::size_t n = configs_.front().n_per_period;
    std::vector<std::size_t> pending;
    for (std::size_t lane : lane_ids) {
        BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
        if (!extractors_[lane].offset_calibrated()) {
            pending.push_back(lane);
        }
    }
    if (pending.empty()) {
        return;
    }

    // Adopt published snapshots where possible, then run the grounded loop
    // for whatever remains and publish the outcome.  Restores verify params
    // and stream position, so a transplanted lane is bit-identical to one
    // that calibrated itself.
    const auto restore_pass = [&](const std::vector<std::size_t>& lanes_in) {
        std::vector<std::size_t> missed;
        for (std::size_t lane : lanes_in) {
            const auto snapshot = calibration_share_->find(
                configs_[lane].modulator, configs_[lane].seed, cal_periods, n);
            if (snapshot == nullptr ||
                !extractors_[lane].try_restore_calibration(*snapshot)) {
                missed.push_back(lane);
            }
        }
        return missed;
    };
    const auto calibrate_lanes = [&](const std::vector<std::size_t>& lanes_in) {
        std::vector<bistna::rng> before;
        if (calibration_share_ != nullptr) {
            before.reserve(lanes_in.size());
            for (std::size_t lane : lanes_in) {
                before.push_back(extractors_[lane].rng_state());
            }
        }
        std::vector<signature_extractor*> pointers;
        pointers.reserve(lanes_in.size());
        for (std::size_t lane : lanes_in) {
            pointers.push_back(&extractors_[lane]);
        }
        signature_extractor::calibrate_offset_batch(pointers, cal_periods, n);
        if (calibration_share_ == nullptr) {
            return;
        }
        for (std::size_t i = 0; i < lanes_in.size(); ++i) {
            const std::size_t lane = lanes_in[i];
            calibration_snapshot snapshot;
            snapshot.params = configs_[lane].modulator;
            snapshot.rng_before = before[i];
            snapshot.rng_after = extractors_[lane].rng_state();
            snapshot.offset_rate_1 = extractors_[lane].offset_rate_ch1();
            snapshot.offset_rate_2 = extractors_[lane].offset_rate_ch2();
            snapshot.calibration_samples = extractors_[lane].calibration_samples();
            calibration_share_->store(configs_[lane].seed, cal_periods, n,
                                      std::move(snapshot));
        }
    };

    if (calibration_share_ != nullptr) {
        pending = restore_pass(pending);
        if (!pending.empty()) {
            // A screening lot seeds every lane identically, so calibrating
            // one exemplar and transplanting it covers the whole group even
            // on the very first work item.
            calibrate_lanes({pending.front()});
            const std::vector<std::size_t> rest(pending.begin() + 1, pending.end());
            pending = restore_pass(rest);
        }
    }
    if (!pending.empty()) {
        calibrate_lanes(pending);
    }
}

std::vector<signature_extractor*>
batch_evaluator::lane_pointers(std::span<const std::size_t> lane_ids) {
    std::vector<signature_extractor*> out;
    out.reserve(lane_ids.size());
    for (std::size_t lane : lane_ids) {
        BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
        out.push_back(&extractors_[lane]);
    }
    return out;
}

std::vector<harmonic_measurement> batch_evaluator::assemble_harmonics(
    std::span<const std::size_t> lane_ids, const std::vector<signature_result>& sigs) {
    std::vector<harmonic_measurement> out;
    out.reserve(sigs.size());
    for (std::size_t i = 0; i < sigs.size(); ++i) {
        out.push_back(estimate_harmonic(sigs[i], configs_[lane_ids[i]].constants));
    }
    return out;
}

std::vector<dc_measurement> batch_evaluator::measure_dc(
    std::span<const std::span<const double>> records, std::size_t periods) {
    BISTNA_EXPECTS(records.size() == lanes(), "need exactly one record per lane");
    ensure_calibrated(all_lanes_);
    const auto lane_ptrs = lane_pointers(all_lanes_);
    const acquisition_settings settings = settings_for(0, periods);
    std::vector<signature_result> sigs;
    if (scratch_ != nullptr) {
        const auto tables = tables_for(settings);
        sigs = signature_extractor::acquire_batch(lane_ptrs, records, settings, *tables,
                                                  *scratch_);
    } else {
        sigs = signature_extractor::acquire_batch(lane_ptrs, records, settings);
    }
    std::vector<dc_measurement> out;
    out.reserve(sigs.size());
    for (const signature_result& sig : sigs) {
        out.push_back(estimate_dc(sig));
    }
    return out;
}

std::vector<dc_measurement> batch_evaluator::measure_dc_lane_major(
    const double* lane_major, std::size_t periods) {
    ensure_calibrated(all_lanes_);
    const auto lane_ptrs = lane_pointers(all_lanes_);
    const acquisition_settings settings = settings_for(0, periods);
    const auto tables = tables_for(settings);
    const auto sigs = signature_extractor::acquire_batch_lane_major(lane_ptrs, lane_major,
                                                                    settings, *tables);
    std::vector<dc_measurement> out;
    out.reserve(sigs.size());
    for (const signature_result& sig : sigs) {
        out.push_back(estimate_dc(sig));
    }
    return out;
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic(
    std::span<const std::span<const double>> records, std::size_t k, std::size_t periods) {
    return measure_harmonic_lanes(all_lanes_, records, k, periods);
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic_lanes(
    std::span<const std::size_t> lane_ids, std::span<const std::span<const double>> records,
    std::size_t k, std::size_t periods) {
    BISTNA_EXPECTS(lane_ids.size() == records.size(),
                   "need exactly one record per requested lane");
    ensure_calibrated(lane_ids);

    const auto lane_ptrs = lane_pointers(lane_ids);
    const acquisition_settings settings = settings_for(k, periods);
    telemetry::trace_span span("eval.modulate");
    span.arg("lanes", static_cast<double>(lane_ids.size()));
    span.arg("k", static_cast<double>(k));
    std::vector<signature_result> sigs;
    if (scratch_ != nullptr) {
        const auto tables = tables_for(settings);
        sigs = signature_extractor::acquire_batch(lane_ptrs, records, settings, *tables,
                                                  *scratch_);
    } else {
        sigs = signature_extractor::acquire_batch(lane_ptrs, records, settings);
    }
    return assemble_harmonics(lane_ids, sigs);
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic_lanes_lane_major(
    std::span<const std::size_t> lane_ids, const double* lane_major, std::size_t k,
    std::size_t periods) {
    ensure_calibrated(lane_ids);
    const auto lane_ptrs = lane_pointers(lane_ids);
    const acquisition_settings settings = settings_for(k, periods);
    const auto tables = tables_for(settings);
    telemetry::trace_span span("eval.modulate");
    span.arg("lanes", static_cast<double>(lane_ids.size()));
    span.arg("k", static_cast<double>(k));
    const auto sigs = signature_extractor::acquire_batch_lane_major(lane_ptrs, lane_major,
                                                                    settings, *tables);
    return assemble_harmonics(lane_ids, sigs);
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic_lanes_shared(
    std::span<const std::size_t> lane_ids, std::span<const double> record, std::size_t k,
    std::size_t periods) {
    ensure_calibrated(lane_ids);
    const auto lane_ptrs = lane_pointers(lane_ids);
    const acquisition_settings settings = settings_for(k, periods);
    const auto tables = tables_for(settings);
    telemetry::trace_span span("eval.modulate");
    span.arg("lanes", static_cast<double>(lane_ids.size()));
    span.arg("k", static_cast<double>(k));
    const auto sigs = signature_extractor::acquire_batch_shared(lane_ptrs, record,
                                                                settings, *tables);
    return assemble_harmonics(lane_ids, sigs);
}

std::vector<thd_measurement> batch_evaluator::measure_thd(
    std::span<const std::span<const double>> records, std::size_t max_harmonic,
    std::size_t periods) {
    return measure_thd_lanes(all_lanes_, records, max_harmonic, periods);
}

std::vector<thd_measurement> batch_evaluator::measure_thd_lanes(
    std::span<const std::size_t> lane_ids, std::span<const std::span<const double>> records,
    std::size_t max_harmonic, std::size_t periods) {
    BISTNA_EXPECTS(max_harmonic >= 2, "THD needs at least harmonics 1..2");
    BISTNA_EXPECTS(lane_ids.size() == records.size(),
                   "need exactly one record per requested lane");

    std::vector<std::vector<amplitude_measurement>> per_lane(lane_ids.size());
    for (std::size_t k = 1; k <= max_harmonic; ++k) {
        if (!demod_reference::alignment_ok(k, configs_.front().n_per_period)) {
            continue; // documented: harmonics violating N mod 4k == 0 are skipped
        }
        const auto harmonics = measure_harmonic_lanes(lane_ids, records, k, periods);
        for (std::size_t i = 0; i < lane_ids.size(); ++i) {
            per_lane[i].push_back(harmonics[i].amplitude);
        }
    }

    std::vector<thd_measurement> out;
    out.reserve(lane_ids.size());
    for (std::size_t i = 0; i < lane_ids.size(); ++i) {
        out.push_back(compute_thd_lenient(per_lane[i]));
    }
    return out;
}

std::vector<thd_measurement> batch_evaluator::measure_thd_lanes_lane_major(
    std::span<const std::size_t> lane_ids, const double* lane_major,
    std::size_t max_harmonic, std::size_t periods) {
    BISTNA_EXPECTS(max_harmonic >= 2, "THD needs at least harmonics 1..2");

    std::vector<std::vector<amplitude_measurement>> per_lane(lane_ids.size());
    for (std::size_t k = 1; k <= max_harmonic; ++k) {
        if (!demod_reference::alignment_ok(k, configs_.front().n_per_period)) {
            continue; // documented: harmonics violating N mod 4k == 0 are skipped
        }
        const auto harmonics =
            measure_harmonic_lanes_lane_major(lane_ids, lane_major, k, periods);
        for (std::size_t i = 0; i < lane_ids.size(); ++i) {
            per_lane[i].push_back(harmonics[i].amplitude);
        }
    }

    std::vector<thd_measurement> out;
    out.reserve(lane_ids.size());
    for (std::size_t i = 0; i < lane_ids.size(); ++i) {
        out.push_back(compute_thd_lenient(per_lane[i]));
    }
    return out;
}

} // namespace bistna::eval
