#include "eval/batch_evaluator.hpp"

#include <numeric>

#include "common/error.hpp"

namespace bistna::eval {

batch_evaluator::batch_evaluator(std::vector<evaluator_config> configs)
    : configs_(std::move(configs)) {
    BISTNA_EXPECTS(!configs_.empty(), "batch evaluator needs at least one lane");
    const evaluator_config& front = configs_.front();
    for (const evaluator_config& config : configs_) {
        BISTNA_EXPECTS(config.n_per_period == front.n_per_period &&
                           config.offset == front.offset &&
                           config.calibration_periods == front.calibration_periods,
                       "batch lanes must share n_per_period, offset mode and "
                       "calibration_periods (seeds and modulators may differ)");
    }
    extractors_.reserve(configs_.size());
    for (const evaluator_config& config : configs_) {
        extractors_.emplace_back(config.modulator, config.seed);
    }
    all_lanes_.resize(configs_.size());
    std::iota(all_lanes_.begin(), all_lanes_.end(), std::size_t{0});
}

signature_extractor& batch_evaluator::extractor(std::size_t lane) {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return extractors_[lane];
}

const evaluator_config& batch_evaluator::config(std::size_t lane) const {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return configs_[lane];
}

acquisition_settings batch_evaluator::settings_for(std::size_t k,
                                                   std::size_t periods) const {
    acquisition_settings settings;
    settings.harmonic_k = k;
    settings.periods = periods;
    settings.n_per_period = configs_.front().n_per_period;
    settings.offset = configs_.front().offset;
    return settings;
}

void batch_evaluator::calibrate() { ensure_calibrated(all_lanes_); }

void batch_evaluator::ensure_calibrated(std::span<const std::size_t> lane_ids) {
    if (configs_.front().offset != offset_mode::calibrated) {
        return;
    }
    std::vector<signature_extractor*> pending;
    for (std::size_t lane : lane_ids) {
        BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
        if (!extractors_[lane].offset_calibrated()) {
            pending.push_back(&extractors_[lane]);
        }
    }
    if (!pending.empty()) {
        signature_extractor::calibrate_offset_batch(
            pending, configs_.front().calibration_periods, configs_.front().n_per_period);
    }
}

std::vector<dc_measurement> batch_evaluator::measure_dc(
    std::span<const std::span<const double>> records, std::size_t periods) {
    BISTNA_EXPECTS(records.size() == lanes(), "need exactly one record per lane");
    ensure_calibrated(all_lanes_);
    std::vector<signature_extractor*> lane_ptrs;
    lane_ptrs.reserve(lanes());
    for (signature_extractor& extractor : extractors_) {
        lane_ptrs.push_back(&extractor);
    }
    const auto sigs =
        signature_extractor::acquire_batch(lane_ptrs, records, settings_for(0, periods));
    std::vector<dc_measurement> out;
    out.reserve(sigs.size());
    for (const signature_result& sig : sigs) {
        out.push_back(estimate_dc(sig));
    }
    return out;
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic(
    std::span<const std::span<const double>> records, std::size_t k, std::size_t periods) {
    return measure_harmonic_lanes(all_lanes_, records, k, periods);
}

std::vector<harmonic_measurement> batch_evaluator::measure_harmonic_lanes(
    std::span<const std::size_t> lane_ids, std::span<const std::span<const double>> records,
    std::size_t k, std::size_t periods) {
    BISTNA_EXPECTS(lane_ids.size() == records.size(),
                   "need exactly one record per requested lane");
    ensure_calibrated(lane_ids);

    std::vector<signature_extractor*> lanes;
    lanes.reserve(lane_ids.size());
    for (std::size_t lane : lane_ids) {
        BISTNA_EXPECTS(lane < this->lanes(), "lane index out of range");
        lanes.push_back(&extractors_[lane]);
    }
    const auto sigs = signature_extractor::acquire_batch(lanes, records,
                                                         settings_for(k, periods));

    std::vector<harmonic_measurement> out;
    out.reserve(sigs.size());
    for (std::size_t i = 0; i < sigs.size(); ++i) {
        out.push_back(estimate_harmonic(sigs[i], configs_[lane_ids[i]].constants));
    }
    return out;
}

std::vector<thd_measurement> batch_evaluator::measure_thd(
    std::span<const std::span<const double>> records, std::size_t max_harmonic,
    std::size_t periods) {
    return measure_thd_lanes(all_lanes_, records, max_harmonic, periods);
}

std::vector<thd_measurement> batch_evaluator::measure_thd_lanes(
    std::span<const std::size_t> lane_ids, std::span<const std::span<const double>> records,
    std::size_t max_harmonic, std::size_t periods) {
    BISTNA_EXPECTS(max_harmonic >= 2, "THD needs at least harmonics 1..2");
    BISTNA_EXPECTS(lane_ids.size() == records.size(),
                   "need exactly one record per requested lane");

    std::vector<std::vector<amplitude_measurement>> per_lane(lane_ids.size());
    for (std::size_t k = 1; k <= max_harmonic; ++k) {
        if (!demod_reference::alignment_ok(k, configs_.front().n_per_period)) {
            continue; // documented: harmonics violating N mod 4k == 0 are skipped
        }
        const auto harmonics = measure_harmonic_lanes(lane_ids, records, k, periods);
        for (std::size_t i = 0; i < lane_ids.size(); ++i) {
            per_lane[i].push_back(harmonics[i].amplitude);
        }
    }

    std::vector<thd_measurement> out;
    out.reserve(lane_ids.size());
    for (std::size_t i = 0; i < lane_ids.size(); ++i) {
        out.push_back(compute_thd_lenient(per_lane[i]));
    }
    return out;
}

} // namespace bistna::eval
