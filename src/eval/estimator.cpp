#include "eval/estimator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace bistna::eval {

namespace {

interval signature_interval(double count, double eps_bound) {
    return interval::centered(count, eps_bound);
}

double demod_magnitude(const signature_result& sig, constants_mode mode) {
    if (mode == constants_mode::paper) {
        return demod_reference::ct_magnitude; // 2/pi
    }
    const demod_reference demod(sig.harmonic_k, sig.n_per_period);
    return std::abs(demod.c1());
}

double demod_phase_reference(const signature_result& sig, constants_mode mode) {
    if (mode == constants_mode::paper) {
        return -half_pi; // arg(c1) of the continuous-time square wave
    }
    const demod_reference demod(sig.harmonic_k, sig.n_per_period);
    return std::arg(demod.c1());
}

} // namespace

dc_measurement estimate_dc(const signature_result& sig) {
    BISTNA_EXPECTS(sig.harmonic_k == 0, "DC estimation requires a k = 0 signature");
    BISTNA_EXPECTS(sig.total_samples > 0, "empty signature");
    const double mn = static_cast<double>(sig.total_samples);
    dc_measurement m;
    m.volts = sig.vref * sig.i1 / mn;
    m.bounds_volts = signature_interval(sig.i1, sig.eps_bound) * (sig.vref / mn);
    return m;
}

amplitude_measurement estimate_amplitude(const signature_result& sig, constants_mode mode) {
    BISTNA_EXPECTS(sig.harmonic_k > 0, "harmonic amplitude requires k >= 1");
    BISTNA_EXPECTS(sig.total_samples > 0, "empty signature");
    const double mn = static_cast<double>(sig.total_samples);
    const double c1_mag = demod_magnitude(sig, mode);
    const double scale = sig.vref / (mn * c1_mag);

    amplitude_measurement m;
    m.harmonic_k = sig.harmonic_k;
    m.volts = std::hypot(sig.i1, sig.i2) * scale;
    // eq. (4): min/max of sqrt((I1+e1)^2 + (I2+e2)^2) over the eps box.
    const interval i1 = signature_interval(sig.i1, sig.eps_bound);
    const interval i2 = signature_interval(sig.i2, sig.eps_bound);
    m.bounds_volts = bistna::hypot(i1, i2) * scale;

    m.dbfs = amplitude_to_dbfs(m.volts, full_scale_reference);
    m.bounds_dbfs =
        interval(amplitude_to_dbfs(m.bounds_volts.lo(), full_scale_reference),
                 amplitude_to_dbfs(m.bounds_volts.hi(), full_scale_reference));
    return m;
}

std::optional<phase_measurement> estimate_phase(const signature_result& sig,
                                                constants_mode mode) {
    BISTNA_EXPECTS(sig.harmonic_k > 0, "harmonic phase requires k >= 1");
    const interval i1 = signature_interval(sig.i1, sig.eps_bound);
    const interval i2 = signature_interval(sig.i2, sig.eps_bound);
    if (i1.contains_zero() && i2.contains_zero()) {
        return std::nullopt; // box encloses the origin: phase undetermined
    }
    // I1 ~ A|c1| sin(phi~), I2 ~ A|c1| cos(phi~); phi = phi~ + arg(c1).
    const double reference = demod_phase_reference(sig, mode);
    phase_measurement m;
    m.harmonic_k = sig.harmonic_k;
    m.radians = wrap_phase(std::atan2(sig.i1, sig.i2) + reference);
    const interval box = atan2_box(i1, i2) + reference;
    // Keep the interval centered on the wrapped point value.
    const double shift = m.radians - (std::atan2(sig.i1, sig.i2) + reference);
    m.bounds_radians = box + shift;
    return m;
}

harmonic_measurement estimate_harmonic(const signature_result& sig, constants_mode mode) {
    harmonic_measurement m;
    m.amplitude = estimate_amplitude(sig, mode);
    m.phase = estimate_phase(sig, mode);
    m.signature = sig;
    return m;
}

thd_measurement compute_thd(const std::vector<amplitude_measurement>& harmonics) {
    BISTNA_EXPECTS(harmonics.size() >= 2, "THD needs a fundamental and at least one harmonic");
    const auto& fundamental = harmonics.front();
    BISTNA_EXPECTS(fundamental.bounds_volts.lo() > 0.0,
                   "THD undefined: fundamental amplitude interval reaches zero");

    double distortion_sq = 0.0;
    interval distortion_sq_bounds(0.0);
    for (std::size_t i = 1; i < harmonics.size(); ++i) {
        distortion_sq += square(harmonics[i].volts);
        distortion_sq_bounds = distortion_sq_bounds + bistna::square(harmonics[i].bounds_volts);
    }
    const double distortion = std::sqrt(distortion_sq);
    const interval distortion_bounds = bistna::sqrt(distortion_sq_bounds);

    thd_measurement thd;
    thd.db = amplitude_ratio_to_db(distortion / fundamental.volts);
    thd.bounds_db =
        interval(amplitude_ratio_to_db(distortion_bounds.lo() / fundamental.bounds_volts.hi()),
                 amplitude_ratio_to_db(distortion_bounds.hi() / fundamental.bounds_volts.lo()));
    return thd;
}

thd_measurement compute_thd_lenient(const std::vector<amplitude_measurement>& harmonics) {
    BISTNA_EXPECTS(harmonics.size() >= 2, "THD needs a fundamental and at least one harmonic");
    if (harmonics.front().bounds_volts.lo() > 0.0) {
        return compute_thd(harmonics);
    }
    constexpr double inf = std::numeric_limits<double>::infinity();
    return thd_measurement{inf, interval(-inf, inf)};
}

} // namespace bistna::eval
