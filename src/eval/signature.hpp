// Signature acquisition: two matched sigma-delta modulators + counters
// (paper Fig. 4a), with the offset-handling arithmetic of section II.
//
// Offset handling modes:
//  - `none`      : raw counts; modulator offset corrupts the signatures.
//  - `calibrated`: a one-time grounded-input run measures each modulator's
//                  offset count rate, subtracted from later signatures.
//                  Preserves the +/-4 bound (plus a small calibration term
//                  4*MN/MN_cal folded into eps_bound).  Default.
//  - `chopped`   : M even; the second half of the evaluation inverts q_k
//                  and the counter subtracts.  Offset cancels exactly with
//                  no calibration, at the cost of a +/-8 bound.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "eval/square_wave.hpp"
#include "sd/modulator.hpp"

namespace bistna::eval {

enum class offset_mode { none, calibrated, chopped };

/// Per-sample signal source on the master-clock grid (argument = sample n).
using sample_source = std::function<double(std::size_t)>;

struct acquisition_settings {
    std::size_t harmonic_k = 1;   ///< k (0 = DC measurement)
    std::size_t periods = 200;    ///< M; must be even for chopped mode
    std::size_t n_per_period = 96;///< oversampling ratio N (96 by construction)
    offset_mode offset = offset_mode::calibrated;
    bool randomize_initial_state = true; ///< silicon-like residual state per run
};

/// Counter contents after an acquisition, plus the metadata the estimator
/// needs.  Counts are doubles because the calibrated mode subtracts a
/// fractional offset estimate.
struct signature_result {
    double i1 = 0.0;              ///< in-phase signature (offset-corrected)
    double i2 = 0.0;              ///< quadrature signature (offset-corrected)
    long long raw_i1 = 0;         ///< raw counter contents
    long long raw_i2 = 0;
    std::size_t total_samples = 0;///< M*N
    std::size_t harmonic_k = 0;
    std::size_t n_per_period = 0;
    std::size_t periods = 0;
    double eps_bound = 4.0;       ///< |eps| bound on each of i1, i2
    double vref = 0.7;            ///< modulator full scale used
};

/// The acquisition engine: owns the matched modulator pair.
class signature_extractor {
public:
    signature_extractor(sd::modulator_params params, std::uint64_t seed);

    /// Grounded-input calibration run measuring each channel's offset count
    /// rate.  Longer runs make the residual calibration error negligible.
    void calibrate_offset(std::size_t periods = 4096, std::size_t n_per_period = 96);

    bool offset_calibrated() const noexcept { return calibrated_; }
    double offset_rate_ch1() const noexcept { return offset_rate_1_; }
    double offset_rate_ch2() const noexcept { return offset_rate_2_; }

    /// Acquire signatures for one measurement.
    signature_result acquire(const sample_source& source, const acquisition_settings& settings);

    /// Acquire once with the largest M and snapshot the counters at each
    /// checkpoint (ascending period counts).  Valid because the bounded-
    /// state property holds at every prefix.  Not available in chopped mode.
    std::vector<signature_result> acquire_with_checkpoints(
        const sample_source& source, acquisition_settings settings,
        const std::vector<std::size_t>& checkpoint_periods);

    const sd::modulator_params& modulator_params() const noexcept { return params_; }

    // --- Batched lockstep path (sd::modulator_bank) -----------------------
    //
    // Lane i consumes extractors[i]'s RNG stream in exactly the order the
    // scalar member functions would, so each lane's result is bit-identical
    // to the scalar call on that extractor alone -- at any lane count and
    // under any lane permutation (lanes never interact).  The scalar
    // members above remain the reference implementation.

    /// Batched acquire: lane i accumulates its signatures from records[i]
    /// (the rendered record on the master-clock grid, length >= M*N), all
    /// lanes stepped in lockstep through one modulator bank per channel.
    /// Bit-identical to extractors[i]->acquire(as_source(records[i]), s).
    static std::vector<signature_result> acquire_batch(
        std::span<signature_extractor* const> extractors,
        std::span<const std::span<const double>> records,
        const acquisition_settings& settings);

    /// Batched grounded-input offset calibration; bit-identical per lane to
    /// extractors[i]->calibrate_offset(periods, n_per_period).
    static void calibrate_offset_batch(std::span<signature_extractor* const> extractors,
                                       std::size_t periods = 4096,
                                       std::size_t n_per_period = 96);

private:
    void validate(const acquisition_settings& settings) const;
    double initial_state();

    sd::modulator_params params_;
    bistna::rng rng_;
    bool calibrated_ = false;
    double offset_rate_1_ = 0.0;
    double offset_rate_2_ = 0.0;
    double calibration_samples_ = 0.0;
};

} // namespace bistna::eval
