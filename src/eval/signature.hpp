// Signature acquisition: two matched sigma-delta modulators + counters
// (paper Fig. 4a), with the offset-handling arithmetic of section II.
//
// Offset handling modes:
//  - `none`      : raw counts; modulator offset corrupts the signatures.
//  - `calibrated`: a one-time grounded-input run measures each modulator's
//                  offset count rate, subtracted from later signatures.
//                  Preserves the +/-4 bound (plus a small calibration term
//                  4*MN/MN_cal folded into eps_bound).  Default.
//  - `chopped`   : M even; the second half of the evaluation inverts q_k
//                  and the counter subtracts.  Offset cancels exactly with
//                  no calibration, at the cost of a +/-8 bound.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "eval/square_wave.hpp"
#include "sd/modulator.hpp"

namespace bistna {
class arena;
} // namespace bistna

namespace bistna::eval {

enum class offset_mode { none, calibrated, chopped };

/// Per-sample signal source on the master-clock grid (argument = sample n).
using sample_source = std::function<double(std::size_t)>;

struct acquisition_settings {
    std::size_t harmonic_k = 1;   ///< k (0 = DC measurement)
    std::size_t periods = 200;    ///< M; must be even for chopped mode
    std::size_t n_per_period = 96;///< oversampling ratio N (96 by construction)
    offset_mode offset = offset_mode::calibrated;
    bool randomize_initial_state = true; ///< silicon-like residual state per run
};

/// Counter contents after an acquisition, plus the metadata the estimator
/// needs.  Counts are doubles because the calibrated mode subtracts a
/// fractional offset estimate.
struct signature_result {
    double i1 = 0.0;              ///< in-phase signature (offset-corrected)
    double i2 = 0.0;              ///< quadrature signature (offset-corrected)
    long long raw_i1 = 0;         ///< raw counter contents
    long long raw_i2 = 0;
    std::size_t total_samples = 0;///< M*N
    std::size_t harmonic_k = 0;
    std::size_t n_per_period = 0;
    std::size_t periods = 0;
    double eps_bound = 4.0;       ///< |eps| bound on each of i1, i2
    double vref = 0.7;            ///< modulator full scale used
};

/// Per-sample demodulation program of one acquisition: the q_k square-wave
/// controls of both channels -- as the modulator bank's unsigned chars and
/// as the exact +/-1 doubles the lane-major kernels consume -- plus the
/// counter accumulation sign (negated in the chopped second half).  A pure
/// function of the settings, so the sweep engine builds each table once
/// (eval::demod_table_cache) and shares it across every work item.
struct demod_tables {
    std::vector<unsigned char> q1, q2;    ///< nonzero = positive modulation
    std::vector<double> q1_sign, q2_sign; ///< the same controls as exact +/-1
    std::vector<double> acc_sign;         ///< counter accumulation sign
    std::size_t harmonic_k = 0;
    std::size_t n_per_period = 0;
    std::size_t periods = 0;
    bool chopped = false;

    static demod_tables build(const acquisition_settings& settings);
    bool matches(const acquisition_settings& settings) const noexcept;
};

/// One lane's post-calibration state, transplantable into any extractor
/// constructed with the same modulator params whose RNG stream still sits
/// at the snapshot's origin: calibration consumes two spawns and produces
/// rates that are a pure function of (params, stream position, length), so
/// restoring is bit-identical to the lane running calibrate_offset itself.
struct calibration_snapshot {
    sd::modulator_params params;
    bistna::rng rng_before{0}; ///< stream position the calibration consumed from
    bistna::rng rng_after{0};  ///< stream position after its two spawns
    double offset_rate_1 = 0.0;
    double offset_rate_2 = 0.0;
    double calibration_samples = 0.0;
};

/// The acquisition engine: owns the matched modulator pair.
class signature_extractor {
public:
    signature_extractor(sd::modulator_params params, std::uint64_t seed);

    /// Grounded-input calibration run measuring each channel's offset count
    /// rate.  Longer runs make the residual calibration error negligible.
    void calibrate_offset(std::size_t periods = 4096, std::size_t n_per_period = 96);

    bool offset_calibrated() const noexcept { return calibrated_; }
    double offset_rate_ch1() const noexcept { return offset_rate_1_; }
    double offset_rate_ch2() const noexcept { return offset_rate_2_; }
    double calibration_samples() const noexcept { return calibration_samples_; }

    /// Current RNG stream position (calibration-snapshot bookkeeping).
    const bistna::rng& rng_state() const noexcept { return rng_; }

    /// Adopt a calibration snapshot captured on a lane with identical
    /// params and stream position -- bit-identical to running
    /// calibrate_offset here.  Returns false (and changes nothing) when
    /// this lane is already calibrated or its params/stream position do not
    /// match the snapshot's origin.
    bool try_restore_calibration(const calibration_snapshot& snapshot) noexcept;

    /// Acquire signatures for one measurement.
    signature_result acquire(const sample_source& source, const acquisition_settings& settings);

    /// Acquire once with the largest M and snapshot the counters at each
    /// checkpoint (ascending period counts).  Valid because the bounded-
    /// state property holds at every prefix.  Not available in chopped mode.
    std::vector<signature_result> acquire_with_checkpoints(
        const sample_source& source, acquisition_settings settings,
        const std::vector<std::size_t>& checkpoint_periods);

    const sd::modulator_params& modulator_params() const noexcept { return params_; }

    // --- Batched lockstep path (sd::modulator_bank) -----------------------
    //
    // Lane i consumes extractors[i]'s RNG stream in exactly the order the
    // scalar member functions would, so each lane's result is bit-identical
    // to the scalar call on that extractor alone -- at any lane count and
    // under any lane permutation (lanes never interact).  The scalar
    // members above remain the reference implementation.

    /// Batched acquire: lane i accumulates its signatures from records[i]
    /// (the rendered record on the master-clock grid, length >= M*N), all
    /// lanes stepped in lockstep through one modulator bank per channel.
    /// Bit-identical to extractors[i]->acquire(as_source(records[i]), s).
    static std::vector<signature_result> acquire_batch(
        std::span<signature_extractor* const> extractors,
        std::span<const std::span<const double>> records,
        const acquisition_settings& settings);

    /// Batched grounded-input offset calibration; bit-identical per lane to
    /// extractors[i]->calibrate_offset(periods, n_per_period).
    static void calibrate_offset_batch(std::span<signature_extractor* const> extractors,
                                       std::size_t periods = 4096,
                                       std::size_t n_per_period = 96);

    // --- Lane-major fast paths (the sweep workers' roofline pipeline) -----
    //
    // Same contract as acquire_batch -- per-lane bit-identity to the scalar
    // acquire at any lane count -- with the per-call table build and heap
    // churn removed: demodulation signs come from a prebuilt demod_tables
    // (eval::demod_table_cache) and transpose scratch from the worker's
    // arena.

    /// acquire_batch with prebuilt tables and arena transpose scratch.
    static std::vector<signature_result> acquire_batch(
        std::span<signature_extractor* const> extractors,
        std::span<const std::span<const double>> records,
        const acquisition_settings& settings, const demod_tables& tables,
        arena& scratch);

    /// Batched acquire over one lane-major record block: lane i's sample n
    /// lives at lane_major[n * extractors.size() + i] -- exactly the layout
    /// dut::state_space_bank emits, so render feeds measure with no
    /// transpose at all.
    static std::vector<signature_result> acquire_batch_lane_major(
        std::span<signature_extractor* const> extractors, const double* lane_major,
        const acquisition_settings& settings, const demod_tables& tables);

    /// Batched acquire over one record shared by every lane (the
    /// calibration path's cache-shared staircase tail): no per-lane copy of
    /// the broadcast input.
    static std::vector<signature_result> acquire_batch_shared(
        std::span<signature_extractor* const> extractors, std::span<const double> record,
        const acquisition_settings& settings, const demod_tables& tables);

private:
    void validate(const acquisition_settings& settings) const;
    double initial_state();

    /// Shared skeleton of the batched acquires: validate, build the two
    /// lockstep banks with the scalar RNG consumption order, run
    /// `accumulate(bank1, bank2, acc1, acc2)`, assemble per-lane results.
    template <typename Accumulate>
    static std::vector<signature_result> acquire_batch_impl(
        std::span<signature_extractor* const> extractors,
        const acquisition_settings& settings, const demod_tables& tables,
        Accumulate&& accumulate);

    sd::modulator_params params_;
    bistna::rng rng_;
    bool calibrated_ = false;
    double offset_rate_1_ = 0.0;
    double offset_rate_2_ = 0.0;
    double calibration_samples_ = 0.0;
};

} // namespace bistna::eval
