#include "eval/signature.hpp"

#include <algorithm>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "sd/modulator_bank.hpp"

namespace bistna::eval {

demod_tables demod_tables::build(const acquisition_settings& settings) {
    const demod_reference demod(settings.harmonic_k, settings.n_per_period);
    const std::size_t total = settings.periods * settings.n_per_period;
    const std::size_t half = total / 2;
    const bool chop = settings.offset == offset_mode::chopped;

    demod_tables tables;
    tables.harmonic_k = settings.harmonic_k;
    tables.n_per_period = settings.n_per_period;
    tables.periods = settings.periods;
    tables.chopped = chop;
    tables.q1.resize(total);
    tables.q2.resize(total);
    tables.q1_sign.resize(total);
    tables.q2_sign.resize(total);
    tables.acc_sign.resize(total);
    for (std::size_t n = 0; n < total; ++n) {
        const bool invert = chop && n >= half;
        const bool q1 = (demod.in_phase_sign(n) > 0) != invert;
        const bool q2 = (demod.quadrature_sign(n) > 0) != invert;
        tables.q1[n] = q1 ? 1 : 0;
        tables.q2[n] = q2 ? 1 : 0;
        tables.q1_sign[n] = q1 ? 1.0 : -1.0;
        tables.q2_sign[n] = q2 ? 1.0 : -1.0;
        tables.acc_sign[n] = invert ? -1.0 : 1.0;
    }
    return tables;
}

bool demod_tables::matches(const acquisition_settings& settings) const noexcept {
    return harmonic_k == settings.harmonic_k && n_per_period == settings.n_per_period &&
           periods == settings.periods &&
           chopped == (settings.offset == offset_mode::chopped);
}

signature_extractor::signature_extractor(sd::modulator_params params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

void signature_extractor::calibrate_offset(std::size_t periods, std::size_t n_per_period) {
    BISTNA_EXPECTS(periods > 0, "calibration needs at least one period");
    const std::size_t total = periods * n_per_period;
    sd::sd_modulator mod1(params_, rng_.spawn());
    sd::sd_modulator mod2(params_, rng_.spawn());
    long long acc1 = 0;
    long long acc2 = 0;
    for (std::size_t n = 0; n < total; ++n) {
        acc1 += mod1.step(0.0, true);
        acc2 += mod2.step(0.0, true);
    }
    offset_rate_1_ = static_cast<double>(acc1) / static_cast<double>(total);
    offset_rate_2_ = static_cast<double>(acc2) / static_cast<double>(total);
    calibration_samples_ = static_cast<double>(total);
    calibrated_ = true;
}

bool signature_extractor::try_restore_calibration(
    const calibration_snapshot& snapshot) noexcept {
    if (calibrated_ || !(params_ == snapshot.params) || !(rng_ == snapshot.rng_before)) {
        return false;
    }
    rng_ = snapshot.rng_after;
    offset_rate_1_ = snapshot.offset_rate_1;
    offset_rate_2_ = snapshot.offset_rate_2;
    calibration_samples_ = snapshot.calibration_samples;
    calibrated_ = true;
    return true;
}

void signature_extractor::validate(const acquisition_settings& settings) const {
    BISTNA_EXPECTS(settings.periods > 0, "evaluation needs at least one period");
    BISTNA_EXPECTS(demod_reference::alignment_ok(settings.harmonic_k, settings.n_per_period),
                   "harmonic k violates the N mod 4k == 0 alignment condition");
    if (settings.offset == offset_mode::chopped) {
        BISTNA_EXPECTS(settings.periods % 2 == 0,
                       "chopped offset cancellation requires an even number of periods "
                       "(the paper's 'M even' condition)");
    }
    if (settings.offset == offset_mode::calibrated) {
        BISTNA_EXPECTS(calibrated_, "offset_mode::calibrated requires calibrate_offset() first");
    }
}

double signature_extractor::initial_state() {
    // Residual integrator charge from whatever conversion ran before: the
    // silicon never starts from exactly zero.  Stay within the bounded band.
    return rng_.uniform(-0.5, 0.5) * params_.vref;
}

signature_result signature_extractor::acquire(const sample_source& source,
                                              const acquisition_settings& settings) {
    validate(settings);
    const demod_reference demod(settings.harmonic_k, settings.n_per_period);
    const std::size_t total = settings.periods * settings.n_per_period;
    const std::size_t half = total / 2;
    const bool chop = settings.offset == offset_mode::chopped;

    sd::sd_modulator mod1(params_, rng_.spawn());
    sd::sd_modulator mod2(params_, rng_.spawn());
    if (settings.randomize_initial_state) {
        mod1.reset(initial_state());
        mod2.reset(initial_state());
    }

    long long acc1 = 0;
    long long acc2 = 0;
    for (std::size_t n = 0; n < total; ++n) {
        const double x = source(n);
        const bool invert = chop && n >= half;
        const bool q1 = (demod.in_phase_sign(n) > 0) != invert;
        const bool q2 = (demod.quadrature_sign(n) > 0) != invert;
        const int bit1 = mod1.step(x, q1);
        const int bit2 = mod2.step(x, q2);
        acc1 += invert ? -bit1 : bit1;
        acc2 += invert ? -bit2 : bit2;
    }

    signature_result result;
    result.raw_i1 = acc1;
    result.raw_i2 = acc2;
    result.total_samples = total;
    result.harmonic_k = settings.harmonic_k;
    result.n_per_period = settings.n_per_period;
    result.periods = settings.periods;
    result.vref = params_.vref;
    result.i1 = static_cast<double>(acc1);
    result.i2 = static_cast<double>(acc2);

    switch (settings.offset) {
    case offset_mode::none:
        result.eps_bound = 4.0;
        break;
    case offset_mode::chopped:
        // Two independent half-segments contribute up to 4 each.
        result.eps_bound = 8.0;
        break;
    case offset_mode::calibrated: {
        result.i1 -= offset_rate_1_ * static_cast<double>(total);
        result.i2 -= offset_rate_2_ * static_cast<double>(total);
        // Residual calibration error: 4/MN_cal per sample, times MN samples.
        result.eps_bound = 4.0 + 4.0 * static_cast<double>(total) / calibration_samples_;
        break;
    }
    }
    return result;
}

template <typename Accumulate>
std::vector<signature_result> signature_extractor::acquire_batch_impl(
    std::span<signature_extractor* const> extractors, const acquisition_settings& settings,
    const demod_tables& tables, Accumulate&& accumulate) {
    BISTNA_EXPECTS(!extractors.empty(), "batch acquisition needs at least one lane");
    BISTNA_EXPECTS(tables.matches(settings),
                   "demod tables do not match the acquisition settings");
    for (signature_extractor* extractor : extractors) {
        BISTNA_EXPECTS(extractor != nullptr, "null extractor lane");
        extractor->validate(settings);
    }

    const std::size_t total = settings.periods * settings.n_per_period;
    const std::size_t n_lanes = extractors.size();

    // Build the matched modulator pair of every lane.  Per lane the RNG
    // consumption order is exactly the scalar acquire(): spawn ch1, spawn
    // ch2, then (optionally) draw the two initial states.
    sd::modulator_bank bank1;
    sd::modulator_bank bank2;
    for (std::size_t l = 0; l < n_lanes; ++l) {
        signature_extractor& ex = *extractors[l];
        bank1.add_lane(ex.params_, ex.rng_.spawn());
        bank2.add_lane(ex.params_, ex.rng_.spawn());
        if (settings.randomize_initial_state) {
            bank1.reset_lane(l, ex.initial_state());
            bank2.reset_lane(l, ex.initial_state());
        }
    }

    // The two channels are independent modulators, so running bank1 over
    // the whole record and then bank2 produces the same per-lane sequences
    // as the scalar per-sample interleaving.  The +/-1 counter sums are
    // exact in double (total << 2^53).
    std::vector<double> acc1(n_lanes, 0.0);
    std::vector<double> acc2(n_lanes, 0.0);
    accumulate(bank1, bank2, acc1.data(), acc2.data());

    std::vector<signature_result> results(n_lanes);
    for (std::size_t l = 0; l < n_lanes; ++l) {
        const signature_extractor& ex = *extractors[l];
        signature_result& result = results[l];
        result.raw_i1 = static_cast<long long>(acc1[l]);
        result.raw_i2 = static_cast<long long>(acc2[l]);
        result.total_samples = total;
        result.harmonic_k = settings.harmonic_k;
        result.n_per_period = settings.n_per_period;
        result.periods = settings.periods;
        result.vref = ex.params_.vref;
        result.i1 = static_cast<double>(result.raw_i1);
        result.i2 = static_cast<double>(result.raw_i2);

        switch (settings.offset) {
        case offset_mode::none:
            result.eps_bound = 4.0;
            break;
        case offset_mode::chopped:
            result.eps_bound = 8.0;
            break;
        case offset_mode::calibrated: {
            result.i1 -= ex.offset_rate_1_ * static_cast<double>(total);
            result.i2 -= ex.offset_rate_2_ * static_cast<double>(total);
            result.eps_bound =
                4.0 + 4.0 * static_cast<double>(total) / ex.calibration_samples_;
            break;
        }
        }
    }
    return results;
}

namespace {

/// Per-lane record pointers with the length precondition checked.
std::vector<const double*> lane_record_pointers(
    std::span<const std::span<const double>> records, std::size_t total) {
    std::vector<const double*> pointers(records.size());
    for (std::size_t l = 0; l < records.size(); ++l) {
        BISTNA_EXPECTS(records[l].size() >= total, "lane record shorter than M*N samples");
        pointers[l] = records[l].data();
    }
    return pointers;
}

} // namespace

std::vector<signature_result> signature_extractor::acquire_batch(
    std::span<signature_extractor* const> extractors,
    std::span<const std::span<const double>> records, const acquisition_settings& settings) {
    BISTNA_EXPECTS(extractors.size() == records.size(),
                   "batch acquisition needs one record per lane");
    const demod_tables tables = demod_tables::build(settings);
    const std::size_t total = settings.periods * settings.n_per_period;
    const auto lane_records = lane_record_pointers(records, total);
    return acquire_batch_impl(
        extractors, settings, tables,
        [&](sd::modulator_bank& bank1, sd::modulator_bank& bank2, double* acc1,
            double* acc2) {
            bank1.accumulate(lane_records.data(), tables.q1.data(), tables.acc_sign.data(),
                             total, acc1);
            bank2.accumulate(lane_records.data(), tables.q2.data(), tables.acc_sign.data(),
                             total, acc2);
        });
}

std::vector<signature_result> signature_extractor::acquire_batch(
    std::span<signature_extractor* const> extractors,
    std::span<const std::span<const double>> records, const acquisition_settings& settings,
    const demod_tables& tables, arena& scratch) {
    BISTNA_EXPECTS(extractors.size() == records.size(),
                   "batch acquisition needs one record per lane");
    const std::size_t total = settings.periods * settings.n_per_period;
    const auto lane_records = lane_record_pointers(records, total);
    return acquire_batch_impl(
        extractors, settings, tables,
        [&](sd::modulator_bank& bank1, sd::modulator_bank& bank2, double* acc1,
            double* acc2) {
            bank1.accumulate(lane_records.data(), tables.q1.data(), tables.acc_sign.data(),
                             total, acc1, scratch);
            bank2.accumulate(lane_records.data(), tables.q2.data(), tables.acc_sign.data(),
                             total, acc2, scratch);
        });
}

std::vector<signature_result> signature_extractor::acquire_batch_lane_major(
    std::span<signature_extractor* const> extractors, const double* lane_major,
    const acquisition_settings& settings, const demod_tables& tables) {
    const std::size_t total = settings.periods * settings.n_per_period;
    return acquire_batch_impl(
        extractors, settings, tables,
        [&](sd::modulator_bank& bank1, sd::modulator_bank& bank2, double* acc1,
            double* acc2) {
            bank1.accumulate_lane_major(lane_major, tables.q1_sign.data(),
                                        tables.acc_sign.data(), total, acc1);
            bank2.accumulate_lane_major(lane_major, tables.q2_sign.data(),
                                        tables.acc_sign.data(), total, acc2);
        });
}

std::vector<signature_result> signature_extractor::acquire_batch_shared(
    std::span<signature_extractor* const> extractors, std::span<const double> record,
    const acquisition_settings& settings, const demod_tables& tables) {
    const std::size_t total = settings.periods * settings.n_per_period;
    BISTNA_EXPECTS(record.size() >= total, "shared record shorter than M*N samples");
    return acquire_batch_impl(
        extractors, settings, tables,
        [&](sd::modulator_bank& bank1, sd::modulator_bank& bank2, double* acc1,
            double* acc2) {
            bank1.accumulate_shared(record.data(), tables.q1_sign.data(),
                                    tables.acc_sign.data(), total, acc1);
            bank2.accumulate_shared(record.data(), tables.q2_sign.data(),
                                    tables.acc_sign.data(), total, acc2);
        });
}

void signature_extractor::calibrate_offset_batch(
    std::span<signature_extractor* const> extractors, std::size_t periods,
    std::size_t n_per_period) {
    BISTNA_EXPECTS(!extractors.empty(), "batch calibration needs at least one lane");
    BISTNA_EXPECTS(periods > 0, "calibration needs at least one period");
    const std::size_t total = periods * n_per_period;
    const std::size_t n_lanes = extractors.size();

    sd::modulator_bank bank1;
    sd::modulator_bank bank2;
    for (signature_extractor* extractor : extractors) {
        BISTNA_EXPECTS(extractor != nullptr, "null extractor lane");
        bank1.add_lane(extractor->params_, extractor->rng_.spawn());
        bank2.add_lane(extractor->params_, extractor->rng_.spawn());
    }

    std::vector<double> acc1(n_lanes, 0.0);
    std::vector<double> acc2(n_lanes, 0.0);
    bank1.accumulate_grounded(total, acc1.data());
    bank2.accumulate_grounded(total, acc2.data());

    for (std::size_t l = 0; l < n_lanes; ++l) {
        signature_extractor& ex = *extractors[l];
        ex.offset_rate_1_ = acc1[l] / static_cast<double>(total);
        ex.offset_rate_2_ = acc2[l] / static_cast<double>(total);
        ex.calibration_samples_ = static_cast<double>(total);
        ex.calibrated_ = true;
    }
}

std::vector<signature_result> signature_extractor::acquire_with_checkpoints(
    const sample_source& source, acquisition_settings settings,
    const std::vector<std::size_t>& checkpoint_periods) {
    BISTNA_EXPECTS(!checkpoint_periods.empty(), "need at least one checkpoint");
    BISTNA_EXPECTS(std::is_sorted(checkpoint_periods.begin(), checkpoint_periods.end()),
                   "checkpoints must be ascending");
    BISTNA_EXPECTS(settings.offset != offset_mode::chopped,
                   "checkpoint acquisition is incompatible with chopped mode");
    settings.periods = checkpoint_periods.back();
    validate(settings);

    const demod_reference demod(settings.harmonic_k, settings.n_per_period);
    const std::size_t total = settings.periods * settings.n_per_period;

    sd::sd_modulator mod1(params_, rng_.spawn());
    sd::sd_modulator mod2(params_, rng_.spawn());
    if (settings.randomize_initial_state) {
        mod1.reset(initial_state());
        mod2.reset(initial_state());
    }

    std::vector<signature_result> results;
    results.reserve(checkpoint_periods.size());
    long long acc1 = 0;
    long long acc2 = 0;
    std::size_t next_checkpoint = 0;
    for (std::size_t n = 0; n < total; ++n) {
        const double x = source(n);
        const bool q1 = demod.in_phase_sign(n) > 0;
        const bool q2 = demod.quadrature_sign(n) > 0;
        acc1 += mod1.step(x, q1);
        acc2 += mod2.step(x, q2);

        const std::size_t samples_done = n + 1;
        while (next_checkpoint < checkpoint_periods.size() &&
               samples_done == checkpoint_periods[next_checkpoint] * settings.n_per_period) {
            signature_result r;
            r.raw_i1 = acc1;
            r.raw_i2 = acc2;
            r.total_samples = samples_done;
            r.harmonic_k = settings.harmonic_k;
            r.n_per_period = settings.n_per_period;
            r.periods = checkpoint_periods[next_checkpoint];
            r.vref = params_.vref;
            r.i1 = static_cast<double>(acc1);
            r.i2 = static_cast<double>(acc2);
            if (settings.offset == offset_mode::calibrated) {
                r.i1 -= offset_rate_1_ * static_cast<double>(samples_done);
                r.i2 -= offset_rate_2_ * static_cast<double>(samples_done);
                r.eps_bound =
                    4.0 + 4.0 * static_cast<double>(samples_done) / calibration_samples_;
            } else {
                r.eps_bound = 4.0;
            }
            results.push_back(r);
            ++next_checkpoint;
        }
    }
    BISTNA_EXPECTS(next_checkpoint == checkpoint_periods.size(),
                   "internal error: not all checkpoints were reached");
    return results;
}

} // namespace bistna::eval
