// Signature processing: the paper's eqs. (3), (4), (5).
//
// Every estimate is returned both as a point value and as a guaranteed
// interval obtained by propagating the quantization-error terms
// eps1, eps2 in [-eps_bound, +eps_bound] through the closed-form
// expressions:
//   (3)  B      =  vref *  I10 / (MN)
//   (4)  A_k    =  vref * hypot(I1k, I2k) / (MN |c1|)     (|c1| ~ 2/pi)
//   (5)  tan(phi_k) = I1k / I2k
// `constants_mode::paper` uses the continuous-time constant pi/2 exactly as
// printed in the paper; `constants_mode::exact` uses the discrete-time
// square-wave coefficient c1 (removes a small systematic, documented in
// square_wave.hpp).
#pragma once

#include <optional>
#include <vector>

#include "common/interval.hpp"
#include "eval/signature.hpp"

namespace bistna::eval {

enum class constants_mode {
    exact, ///< exact DT demodulation constants (default)
    paper  ///< continuous-time pi/2 as printed in eq. (4)
};

/// Full-scale reference for the dB axis of Fig. 9 (the modulator reference
/// amplitude; the paper's "dBm" axis is dB relative to this).
inline constexpr double full_scale_reference = 0.7;

struct dc_measurement {
    double volts = 0.0;
    interval bounds_volts; ///< eq. (3) interval
};

struct amplitude_measurement {
    double volts = 0.0;
    interval bounds_volts; ///< eq. (4) interval
    double dbfs = 0.0;     ///< dB relative to the modulator full scale
    interval bounds_dbfs;
    std::size_t harmonic_k = 0;
};

struct phase_measurement {
    double radians = 0.0;  ///< phase of the k-th harmonic w.r.t. SQ_kT
    interval bounds_radians; ///< eq. (5) interval (via sign-aware atan2 box)
    std::size_t harmonic_k = 0;
};

/// eq. (3): DC level from a k = 0 signature.
dc_measurement estimate_dc(const signature_result& sig);

/// eq. (4): k-th harmonic amplitude.
amplitude_measurement estimate_amplitude(const signature_result& sig,
                                         constants_mode mode = constants_mode::exact);

/// eq. (5): k-th harmonic phase w.r.t. the modulating square wave.  Returns
/// nullopt when the uncertainty box encloses the origin (amplitude below
/// the quantization floor -- increase M).
std::optional<phase_measurement> estimate_phase(const signature_result& sig,
                                                constants_mode mode = constants_mode::exact);

/// Combined amplitude+phase of one harmonic.  The raw signatures are kept
/// so callers can degrade gracefully when the phase box is undetermined
/// (e.g. report a point estimate with a full-circle interval, as the
/// paper's deep-stopband Bode points effectively do).
struct harmonic_measurement {
    amplitude_measurement amplitude;
    std::optional<phase_measurement> phase;
    signature_result signature;
};

harmonic_measurement estimate_harmonic(const signature_result& sig,
                                       constants_mode mode = constants_mode::exact);

/// THD from a set of harmonic amplitude measurements (fundamental first):
/// 20*log10( sqrt(sum_{k>=2} A_k^2) / A_1 ), with interval propagation.
struct thd_measurement {
    double db = 0.0;
    interval bounds_db;
};

thd_measurement compute_thd(const std::vector<amplitude_measurement>& harmonics);

/// compute_thd, degrading instead of throwing when the fundamental's
/// guaranteed interval reaches zero (a dead or saturated signal path on a
/// hard-faulted die): the ratio is unbounded, so the result is +inf dB
/// with a no-information interval.  The measurement layers use this so lot
/// screening and diagnosis record such dice as failing rather than abort.
thd_measurement compute_thd_lenient(const std::vector<amplitude_measurement>& harmonics);

} // namespace bistna::eval
