// Batched sinewave evaluation across a lot of rendered records (the
// lockstep companion of sinewave_evaluator).
//
// A production screening flow runs the *same* measurement program on every
// die: grounded-input offset calibration, then one acquisition per mask
// limit.  This layer holds one signature extractor per lane (die) and runs
// each stage across all lanes at once through the sd::modulator_bank, so
// the per-sample evaluator loop -- the sweep-cost hot path -- executes as
// one vectorizable pass instead of N scalar ones.
//
// Every lane is bit-identical to a scalar sinewave_evaluator constructed
// with the same config and driven through the same call sequence: lanes
// own independent RNG streams and never interact, so results are invariant
// under lane count and lane permutation.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "eval/estimator.hpp"
#include "eval/evaluator.hpp"
#include "eval/signature.hpp"

namespace bistna {
class arena;
} // namespace bistna

namespace bistna::eval {

class demod_table_cache;
class calibration_share;

class batch_evaluator {
public:
    /// One config per lane.  Seeds and modulator params may differ per
    /// lane; n_per_period, offset mode and calibration_periods must be
    /// uniform (the lockstep stages share one demodulation program).
    explicit batch_evaluator(std::vector<evaluator_config> configs);

    std::size_t lanes() const noexcept { return configs_.size(); }

    /// Attach the engine's shared fast-path resources, all optional and all
    /// bit-identical to the plain path: `tables` caches the per-stage
    /// demodulation sign tables across work items, `scratch` bump-allocates
    /// the transpose scratch of span-based acquisitions, and `calibration`
    /// transplants post-calibration state between lanes with identical
    /// (params, seed) instead of re-running the grounded calibration --
    /// the dominant per-die cost of a screening flow.
    void set_shared_resources(demod_table_cache* tables, arena* scratch,
                              calibration_share* calibration) noexcept;

    /// One-time batched offset calibration of every not-yet-calibrated
    /// lane (automatic on first use when the offset mode requires it).
    void calibrate();

    /// DC level (k = 0) of every lane's record, eq. (3).
    std::vector<dc_measurement> measure_dc(std::span<const std::span<const double>> records,
                                           std::size_t periods);

    /// Amplitude + phase of harmonic k for every lane, eqs. (4)-(5).
    std::vector<harmonic_measurement> measure_harmonic(
        std::span<const std::span<const double>> records, std::size_t k,
        std::size_t periods);

    /// Same, over a subset of lanes: records[i] belongs to lane
    /// lane_ids[i].  Lanes outside the subset consume nothing (exactly like
    /// dice a scalar flow stopped measuring), so screening can drop a lane
    /// that failed its self-test without perturbing its neighbours.
    std::vector<harmonic_measurement> measure_harmonic_lanes(
        std::span<const std::size_t> lane_ids,
        std::span<const std::span<const double>> records, std::size_t k,
        std::size_t periods);

    /// THD from harmonics 1..max_harmonic of every lane (skipping ks that
    /// violate the alignment condition, like the scalar evaluator).
    std::vector<thd_measurement> measure_thd(std::span<const std::span<const double>> records,
                                             std::size_t max_harmonic, std::size_t periods);

    /// Same, over a subset of lanes (records[i] belongs to lane
    /// lane_ids[i]); lanes outside the subset consume nothing, exactly like
    /// measure_harmonic_lanes.  Used by the diagnostic screening path so
    /// self-test dropouts don't perturb their neighbours' distortion
    /// measurements.
    std::vector<thd_measurement> measure_thd_lanes(
        std::span<const std::size_t> lane_ids,
        std::span<const std::span<const double>> records, std::size_t max_harmonic,
        std::size_t periods);

    // --- Lane-major fast paths (the roofline render->measure pipeline) ----
    //
    // Records arrive as one lane-major block -- row i of sample n at
    // lane_major[n * lane_ids.size() + i], exactly what
    // dut::state_space_bank emits -- or as a single record shared by every
    // requested lane (the cache-shared calibration staircase).  Per-lane
    // results are bit-identical to the span-based methods above at any lane
    // count.

    /// Harmonic k of the requested lanes over a lane-major record block.
    std::vector<harmonic_measurement> measure_harmonic_lanes_lane_major(
        std::span<const std::size_t> lane_ids, const double* lane_major, std::size_t k,
        std::size_t periods);

    /// THD of the requested lanes over a lane-major record block.
    std::vector<thd_measurement> measure_thd_lanes_lane_major(
        std::span<const std::size_t> lane_ids, const double* lane_major,
        std::size_t max_harmonic, std::size_t periods);

    /// Harmonic k of the requested lanes over one shared record.
    std::vector<harmonic_measurement> measure_harmonic_lanes_shared(
        std::span<const std::size_t> lane_ids, std::span<const double> record,
        std::size_t k, std::size_t periods);

    /// DC level of every lane over a lane-major record block.
    std::vector<dc_measurement> measure_dc_lane_major(const double* lane_major,
                                                      std::size_t periods);

    signature_extractor& extractor(std::size_t lane);
    const evaluator_config& config(std::size_t lane) const;

private:
    acquisition_settings settings_for(std::size_t k, std::size_t periods) const;
    void ensure_calibrated(std::span<const std::size_t> lane_ids);
    std::vector<signature_extractor*> lane_pointers(std::span<const std::size_t> lane_ids);
    /// Tables for `settings` from the shared cache, or built locally.
    std::shared_ptr<const demod_tables> tables_for(const acquisition_settings& settings);
    std::vector<harmonic_measurement> assemble_harmonics(
        std::span<const std::size_t> lane_ids, const std::vector<signature_result>& sigs);

    std::vector<evaluator_config> configs_;
    std::vector<signature_extractor> extractors_;
    std::vector<std::size_t> all_lanes_;
    demod_table_cache* shared_tables_ = nullptr;
    arena* scratch_ = nullptr;
    calibration_share* calibration_share_ = nullptr;
};

} // namespace bistna::eval
