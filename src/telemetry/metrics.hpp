// Process-wide metric registry: named counters and log-2 latency
// histograms, backed by per-thread shards so the hot path is a relaxed
// atomic bump on memory only this thread writes -- no locks, no false
// sharing with other threads' cells.
//
// Lifecycle: metric names are interned once (usually into a static) with
// counter_id()/histogram_id(); recording through an id is a no-op unless a
// metric_registry is attach()ed.  The attached/detached state is a single
// global epoch counter (even = detached, odd = attached); each thread
// caches {epoch, shard*} in a thread_local and revalidates with one
// acquire load per record, so the detached fast path is load + predictable
// branch.  aggregate happens only in snapshot(), which sums every thread's
// shard under the registry mutex.
//
// Spans: emit_span() appends a fixed-size event into the calling thread's
// ring (single writer, published with a release store of the count;
// snapshot reads it with an acquire load -- TSan-clean by construction).
// Span and arg names must be string literals (or otherwise outlive the
// registry); only pointers are stored on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "telemetry/snapshot.hpp"

namespace bistna::telemetry {

using metric_id = std::uint32_t;

/// Hard caps on distinct metric names per process.  Interning past the cap
/// throws; the taxonomy is meant to be small and static.
inline constexpr std::size_t max_counters = 192;
inline constexpr std::size_t max_histograms = 64;

/// Intern a counter name -> stable id.  `name` must outlive the process
/// (pass a literal).  Same name always returns the same id.
metric_id counter_id(const char* name);
metric_id histogram_id(const char* name);

const std::string& counter_name(metric_id id);
const std::string& histogram_name(metric_id id);

/// True when a registry is currently attached.  One relaxed-ish load;
/// callers may use it to skip clock reads entirely when detached.
bool attached() noexcept;

/// Bump a counter / record a histogram sample.  No-ops when detached.
/// Never throws into the caller (telemetry failure must not fail the
/// measurement).
void counter_add(metric_id id, std::uint64_t n = 1) noexcept;
void histogram_record(metric_id id, std::uint64_t value) noexcept;

/// Monotonic nanoseconds (steady_clock).  On Linux this is
/// CLOCK_MONOTONIC, which is per-boot and therefore comparable across
/// processes on one machine -- the property the cross-process trace
/// depends on.
std::uint64_t now_ns() noexcept;

/// Name the calling thread in snapshots and traces.  Takes effect
/// retroactively for the thread's current shard and for future bindings.
void set_thread_name(std::string name);

/// Record a completed span with up to two numeric args.  `name` and the
/// arg keys must be string literals.  No-op when detached.
void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t duration_ns,
               const char* key0 = nullptr, double val0 = 0.0,
               const char* key1 = nullptr, double val1 = 0.0) noexcept;

struct registry_options {
    /// Span events retained per thread; further spans are counted as
    /// dropped rather than wrapping (a truncated trace that says so beats
    /// a silently rewritten one).
    std::size_t span_ring_capacity = 16384;
};

/// Owner of all recorded telemetry.  At most one registry may be attached
/// at a time; attach/detach are heavyweight (mutex + epoch bump) and meant
/// for process start/end or test setup, not the hot path.
class metric_registry {
public:
    explicit metric_registry(registry_options options = {});
    ~metric_registry();

    metric_registry(const metric_registry&) = delete;
    metric_registry& operator=(const metric_registry&) = delete;

    /// Make this the process-wide sink.  Throws precondition_error if any
    /// registry (including this one) is already attached.
    void attach();
    /// Stop collecting into this registry.  Idempotent.  Recorded data
    /// stays readable via snapshot().
    void detach();
    bool is_attached() const noexcept;

    void set_process_name(std::string name);

    /// Aggregate every thread's shard into one frozen snapshot.  Safe to
    /// call while attached and while other threads record (counter sums
    /// are per-cell atomic reads; spans use the publish protocol above).
    telemetry_snapshot snapshot() const;

    /// Incomplete outside metrics.cpp; public only so the file-scope
    /// attach-state globals there can hold a shared_ptr to it.
    struct impl;

private:
    std::shared_ptr<impl> impl_;
};

/// RAII attach/detach.
class registry_scope {
public:
    explicit registry_scope(metric_registry& registry) : registry_(registry) {
        registry_.attach();
    }
    ~registry_scope() { registry_.detach(); }

    registry_scope(const registry_scope&) = delete;
    registry_scope& operator=(const registry_scope&) = delete;

private:
    metric_registry& registry_;
};

/// A counter that also keeps a process-local running value readable
/// without a registry -- the migration shim for the legacy ad-hoc stats
/// structs (`stimulus_cache_stats` and friends): the old accessors read
/// value(), while an attached registry sees every increment under the
/// interned name.
class counter_cell {
public:
    explicit counter_cell(const char* name) : id_(counter_id(name)) {}

    counter_cell(const counter_cell&) = delete;
    counter_cell& operator=(const counter_cell&) = delete;

    void add(std::uint64_t n = 1) noexcept {
        local_.fetch_add(n, std::memory_order_relaxed);
        counter_add(id_, n);
    }

    std::uint64_t value() const noexcept {
        return local_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { local_.store(0, std::memory_order_relaxed); }

    metric_id id() const noexcept { return id_; }

private:
    metric_id id_;
    std::atomic<std::uint64_t> local_{0};
};

} // namespace bistna::telemetry
