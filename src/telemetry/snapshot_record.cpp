#include "telemetry/snapshot_record.hpp"

#include "store/lot_store.hpp"
#include "store/records.hpp"

namespace bistna::telemetry {

store::record to_record(const telemetry_snapshot& snapshot) {
    store::byte_writer w;
    w.u64(snapshot.pid);
    w.str(snapshot.process_name);

    w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
    for (const counter_value& c : snapshot.counters) {
        w.str(c.name);
        w.u64(c.value);
    }

    w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
    for (const histogram_value& h : snapshot.histograms) {
        w.str(h.name);
        w.u64(h.count);
        w.u64(h.sum);
        w.u32(static_cast<std::uint32_t>(h.buckets.size()));
        for (std::uint64_t bucket : h.buckets) {
            w.u64(bucket);
        }
    }

    w.u32(static_cast<std::uint32_t>(snapshot.threads.size()));
    for (const thread_info& t : snapshot.threads) {
        w.u32(t.tid);
        w.str(t.name);
        w.u64(t.dropped_spans);
    }

    w.u32(static_cast<std::uint32_t>(snapshot.spans.size()));
    for (const span_value& s : snapshot.spans) {
        w.u32(s.tid);
        w.str(s.name);
        w.u64(s.start_ns);
        w.u64(s.duration_ns);
        w.u8(static_cast<std::uint8_t>(s.args.size()));
        for (const auto& [key, value] : s.args) {
            w.str(key);
            w.f64(value);
        }
    }

    return {store::record_type::telemetry_snapshot, w.take()};
}

telemetry_snapshot snapshot_from_record(const store::record& r,
                                        std::uint64_t payload_offset) {
    store::expect_type(r, store::record_type::telemetry_snapshot,
                       payload_offset);
    store::byte_reader reader(r.payload, payload_offset);

    telemetry_snapshot snap;
    snap.pid = reader.u64();
    snap.process_name = reader.str();

    const std::uint32_t n_counters = reader.u32();
    reader.require(std::size_t{n_counters} * (4 + 8), "counter list");
    snap.counters.resize(n_counters);
    for (counter_value& c : snap.counters) {
        c.name = reader.str();
        c.value = reader.u64();
    }

    const std::uint32_t n_histograms = reader.u32();
    reader.require(std::size_t{n_histograms} * (4 + 8 + 8 + 4),
                   "histogram list");
    snap.histograms.resize(n_histograms);
    for (histogram_value& h : snap.histograms) {
        h.name = reader.str();
        h.count = reader.u64();
        h.sum = reader.u64();
        const std::uint32_t n_buckets = reader.u32();
        if (n_buckets != histogram_buckets) {
            throw serialization_error("telemetry histogram bucket count " +
                                          std::to_string(n_buckets) +
                                          " != " +
                                          std::to_string(histogram_buckets),
                                      reader.offset());
        }
        reader.require(std::size_t{n_buckets} * 8, "histogram buckets");
        for (std::uint64_t& bucket : h.buckets) {
            bucket = reader.u64();
        }
    }

    const std::uint32_t n_threads = reader.u32();
    reader.require(std::size_t{n_threads} * (4 + 4 + 8), "thread list");
    snap.threads.resize(n_threads);
    for (thread_info& t : snap.threads) {
        t.tid = reader.u32();
        t.name = reader.str();
        t.dropped_spans = reader.u64();
    }

    const std::uint32_t n_spans = reader.u32();
    reader.require(std::size_t{n_spans} * (4 + 4 + 8 + 8 + 1), "span list");
    snap.spans.resize(n_spans);
    for (span_value& s : snap.spans) {
        s.tid = reader.u32();
        s.name = reader.str();
        s.start_ns = reader.u64();
        s.duration_ns = reader.u64();
        const std::uint8_t n_args = reader.u8();
        s.args.resize(n_args);
        for (auto& [key, value] : s.args) {
            key = reader.str();
            value = reader.f64();
        }
    }

    return snap;
}

void write_snapshot_store(const std::string& path,
                          const telemetry_snapshot& snapshot) {
    store::lot_store out = store::lot_store::create(path);
    out.append(to_record(snapshot));
    out.flush();
}

std::vector<telemetry_snapshot> read_snapshot_store(const std::string& path) {
    std::vector<telemetry_snapshot> snapshots;
    store::record_reader reader(path);
    std::uint64_t payload_offset = store::file_header_size +
                                   store::frame_header_size;
    while (auto r = reader.next()) {
        if (r->type == store::record_type::telemetry_snapshot) {
            snapshots.push_back(snapshot_from_record(*r, payload_offset));
        }
        payload_offset = reader.offset() + store::frame_header_size;
    }
    return snapshots;
}

} // namespace bistna::telemetry
