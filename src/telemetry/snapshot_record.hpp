// Telemetry snapshots as typed store records, so a shard worker can leave
// its metrics and spans behind in a sidecar store file
// (shard-<i>-attempt-<j>.telemetry) and the coordinator can read them back
// and merge one fleet-wide view -- same framing, CRCs, and torn-tail
// recovery as the result stores.
//
// Payload layout (record_type::telemetry_snapshot), all counts validated
// against the payload bounds before trusting:
//   u64 pid, str process_name
//   u32 n_counters   x { str name, u64 value }
//   u32 n_histograms x { str name, u64 count, u64 sum,
//                        u32 n_buckets, u64 buckets[n_buckets] }
//   u32 n_threads    x { u32 tid, str name, u64 dropped_spans }
//   u32 n_spans      x { u32 tid, str name, u64 start_ns, u64 duration_ns,
//                        u8 n_args x { str key, f64 value } }
#pragma once

#include <string>
#include <vector>

#include "store/format.hpp"
#include "telemetry/snapshot.hpp"

namespace bistna::telemetry {

store::record to_record(const telemetry_snapshot& snapshot);
telemetry_snapshot snapshot_from_record(const store::record& r,
                                        std::uint64_t payload_offset = 0);

/// Write `snapshot` as the sole record of a fresh store file at `path`.
void write_snapshot_store(const std::string& path,
                          const telemetry_snapshot& snapshot);

/// Read every telemetry_snapshot record from the store file at `path`
/// (normally exactly one).
std::vector<telemetry_snapshot> read_snapshot_store(const std::string& path);

} // namespace bistna::telemetry
