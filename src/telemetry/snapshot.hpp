// Passive telemetry data: what a metric_registry's snapshot() returns and
// what travels between processes (see snapshot_record.hpp).
//
// Everything here is plain copyable data -- no atomics, no registry
// machinery -- so a snapshot can be serialized into a store frame by a
// shard worker, read back by the coordinator, merged fleet-wide and
// exported as a Chrome trace without touching the live registry.
//
// Histograms are log-2 bucketed: bucket 0 holds the value 0, bucket k >= 1
// holds values in [2^(k-1), 2^k - 1] (bucket = std::bit_width(value)), so
// 65 buckets cover the whole u64 range.  Exact count and sum ride along,
// so the mean is exact and only the quantiles are bucket-resolution
// approximations.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace bistna::telemetry {

inline constexpr std::size_t histogram_buckets = 65;

/// Bucket of `value`: 0 -> 0, otherwise std::bit_width (1..64).
constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

/// Smallest value bucket `bucket` holds (0, then 2^(k-1)).
constexpr std::uint64_t bucket_lower_bound(std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

/// Largest value bucket `bucket` holds (0, then 2^k - 1).
constexpr std::uint64_t bucket_upper_bound(std::size_t bucket) noexcept {
    if (bucket == 0) {
        return 0;
    }
    if (bucket >= 64) {
        return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t{1} << bucket) - 1;
}

struct counter_value {
    std::string name;
    std::uint64_t value = 0;

    bool operator==(const counter_value&) const = default;
};

struct histogram_value {
    std::string name;
    std::uint64_t count = 0; ///< samples recorded
    std::uint64_t sum = 0;   ///< exact sum of all samples
    std::array<std::uint64_t, histogram_buckets> buckets{};

    double mean() const noexcept {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// q * count -- a bucket-resolution quantile (exact mean comes from
    /// sum/count instead).
    std::uint64_t quantile_upper_bound(double q) const noexcept;

    bool operator==(const histogram_value&) const = default;
};

/// One completed trace span (names interned from literals in the live
/// registry, copied out here).
struct span_value {
    std::string name;
    std::uint32_t tid = 0;
    std::uint64_t start_ns = 0;    ///< steady-clock ns since boot
    std::uint64_t duration_ns = 0;
    std::vector<std::pair<std::string, double>> args;

    bool operator==(const span_value&) const = default;
};

struct thread_info {
    std::uint32_t tid = 0;
    std::string name;
    std::uint64_t dropped_spans = 0; ///< span-ring overflow count

    bool operator==(const thread_info&) const = default;
};

/// Everything one process's registry knows, frozen at snapshot time.
struct telemetry_snapshot {
    std::string process_name;
    std::uint64_t pid = 0;
    std::vector<counter_value> counters;     ///< registration order
    std::vector<histogram_value> histograms; ///< registration order
    std::vector<thread_info> threads;
    std::vector<span_value> spans;

    const counter_value* find_counter(const std::string& name) const noexcept;
    const histogram_value* find_histogram(const std::string& name) const noexcept;
    /// Counter value by name; 0 when the counter was never registered.
    std::uint64_t counter(const std::string& name) const noexcept;

    bool operator==(const telemetry_snapshot&) const = default;
};

/// Fleet-wide metric rollup: counters summed and histograms merged by
/// name across every process snapshot (union of names, first-seen order).
/// Spans and threads are per-process by nature and stay empty -- the
/// cross-process view of those is the Chrome trace (trace_export.hpp).
telemetry_snapshot merge_metrics(std::span<const telemetry_snapshot> processes);

} // namespace bistna::telemetry
