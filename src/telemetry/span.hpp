// Scoped trace timer.  Construction samples the clock only when a
// registry is attached; destruction emits the completed span into the
// calling thread's ring.  Detached cost is one atomic load and a branch.
//
//     {
//         telemetry::trace_span span("engine.render");
//         span.arg("limits", static_cast<double>(limits));
//         ... work ...
//     } // span recorded here
//
// `name` and arg keys must be string literals (the ring stores pointers).
#pragma once

#include <array>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace bistna::telemetry {

class trace_span {
public:
    explicit trace_span(const char* name) noexcept
        : name_(name), armed_(attached()), start_ns_(armed_ ? now_ns() : 0) {}

    ~trace_span() {
        if (!armed_) {
            return;
        }
        const std::uint64_t end_ns = now_ns();
        emit_span(name_, start_ns_,
                  end_ns >= start_ns_ ? end_ns - start_ns_ : 0, keys_[0],
                  vals_[0], keys_[1], vals_[1]);
    }

    trace_span(const trace_span&) = delete;
    trace_span& operator=(const trace_span&) = delete;

    /// Attach a numeric arg (up to two; extras are dropped).  `key` must
    /// be a string literal.
    void arg(const char* key, double value) noexcept {
        if (!armed_) {
            return;
        }
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] == nullptr) {
                keys_[i] = key;
                vals_[i] = value;
                return;
            }
        }
    }

    bool armed() const noexcept { return armed_; }

private:
    const char* name_;
    bool armed_;
    std::uint64_t start_ns_;
    std::array<const char*, 2> keys_{};
    std::array<double, 2> vals_{};
};

} // namespace bistna::telemetry
