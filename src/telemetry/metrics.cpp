#include "telemetry/metrics.hpp"

#include <unistd.h>

#include <array>
#include <chrono>
#include <mutex>
#include <vector>

#include "common/error.hpp"

namespace bistna::telemetry {

namespace {

// ---- name interning -------------------------------------------------------
//
// Names live for the process; ids are indices into these tables.  Interning
// is rare (static initializers), so one mutex is fine.

struct intern_table {
    std::mutex mutex;
    std::vector<std::string> names;

    metric_id intern(const char* name, std::size_t cap, const char* kind) {
        BISTNA_EXPECTS(name != nullptr && *name != '\0',
                       "metric name must be non-empty");
        std::lock_guard<std::mutex> lock(mutex);
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name) {
                return static_cast<metric_id>(i);
            }
        }
        if (names.size() >= cap) {
            throw precondition_error(std::string("too many distinct ") + kind +
                                     " names (cap " + std::to_string(cap) +
                                     "): " + name);
        }
        names.emplace_back(name);
        return static_cast<metric_id>(names.size() - 1);
    }

    const std::string& name_of(metric_id id) {
        std::lock_guard<std::mutex> lock(mutex);
        BISTNA_EXPECTS(id < names.size(), "metric id out of range");
        return names[id];
    }

    std::size_t size() {
        std::lock_guard<std::mutex> lock(mutex);
        return names.size();
    }
};

intern_table& counters_table() {
    static intern_table table;
    return table;
}

intern_table& histograms_table() {
    static intern_table table;
    return table;
}

// ---- live cells -----------------------------------------------------------

struct hist_cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, histogram_buckets> buckets{};
};

// One span as stored in the ring: pointers only, no ownership.  Names and
// keys must be literals (enforced by the emit_span contract).
struct span_event {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::array<const char*, 2> keys{};
    std::array<double, 2> vals{};
};

// Everything one thread writes.  Counters/histogram cells are written with
// relaxed atomics (only sums matter); the span ring is single-writer and
// published via a release store of span_count, so snapshot() reading with
// acquire sees fully written events.
struct thread_shard {
    std::uint32_t tid = 0;
    std::string name;
    std::array<std::atomic<std::uint64_t>, max_counters> counters{};
    std::unique_ptr<hist_cell[]> histograms{new hist_cell[max_histograms]};
    std::vector<span_event> spans;
    std::atomic<std::uint64_t> span_count{0};
    std::atomic<std::uint64_t> dropped_spans{0};
};

} // namespace

struct metric_registry::impl {
    registry_options options;
    mutable std::mutex mutex;
    std::string process_name = "bistna";
    // Shards are created on first record per thread and never removed while
    // the registry lives -- a thread may exit before snapshot(), so the
    // registry (not the thread) owns them.
    std::vector<std::unique_ptr<thread_shard>> shards;
};

namespace {

// ---- global attach state --------------------------------------------------
//
// g_epoch is the only thing the hot path reads: even = detached, odd =
// attached.  Each attach/detach bumps it, invalidating every thread's
// cached binding.

std::atomic<std::uint64_t> g_epoch{0};
std::mutex g_registry_mutex;
std::shared_ptr<metric_registry::impl> g_active;
std::atomic<std::uint32_t> g_next_tid{1};

struct thread_binding {
    std::uint64_t epoch = 0;
    thread_shard* shard = nullptr;
    // Keeps the shard's owning impl alive while this thread might still
    // write through the raw pointer (detach drops g_active, but the epoch
    // check means no writes happen after this binding goes stale).
    std::shared_ptr<metric_registry::impl> owner;
    std::uint32_t tid = 0; ///< stable per OS thread across re-attaches
    std::string thread_name;
};

thread_binding& binding() {
    thread_local thread_binding b;
    return b;
}

// Slow path: (re)bind this thread to the currently attached registry, or
// cache "detached" for the current epoch.  Returns the shard or nullptr.
thread_shard* bind_thread(thread_binding& b) {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    b.epoch = epoch;
    b.owner.reset();
    b.shard = nullptr;
    if ((epoch & 1u) == 0 || g_active == nullptr) {
        return nullptr;
    }
    if (b.tid == 0) {
        b.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    auto shard = std::make_unique<thread_shard>();
    shard->tid = b.tid;
    shard->name = b.thread_name.empty() ? "thread-" + std::to_string(b.tid)
                                        : b.thread_name;
    shard->spans.resize(g_active->options.span_ring_capacity);
    thread_shard* raw = shard.get();
    {
        std::lock_guard<std::mutex> shard_lock(g_active->mutex);
        g_active->shards.push_back(std::move(shard));
    }
    b.owner = g_active;
    b.shard = raw;
    return raw;
}

// Hot path: one acquire load; even epoch means detached and we return
// immediately, matching epoch means the cached shard is still valid.
inline thread_shard* bound_shard() {
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if ((epoch & 1u) == 0) {
        return nullptr;
    }
    thread_binding& b = binding();
    if (b.epoch == epoch) {
        return b.shard;
    }
    return bind_thread(b);
}

} // namespace

metric_id counter_id(const char* name) {
    return counters_table().intern(name, max_counters, "counter");
}

metric_id histogram_id(const char* name) {
    return histograms_table().intern(name, max_histograms, "histogram");
}

const std::string& counter_name(metric_id id) {
    return counters_table().name_of(id);
}

const std::string& histogram_name(metric_id id) {
    return histograms_table().name_of(id);
}

bool attached() noexcept {
    return (g_epoch.load(std::memory_order_acquire) & 1u) != 0;
}

void counter_add(metric_id id, std::uint64_t n) noexcept {
    try {
        thread_shard* shard = bound_shard();
        if (shard == nullptr || id >= max_counters) {
            return;
        }
        shard->counters[id].fetch_add(n, std::memory_order_relaxed);
    } catch (...) {
        // Telemetry must never throw into the measurement.
    }
}

void histogram_record(metric_id id, std::uint64_t value) noexcept {
    try {
        thread_shard* shard = bound_shard();
        if (shard == nullptr || id >= max_histograms) {
            return;
        }
        hist_cell& cell = shard->histograms[id];
        cell.count.fetch_add(1, std::memory_order_relaxed);
        cell.sum.fetch_add(value, std::memory_order_relaxed);
        cell.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
    }
}

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void set_thread_name(std::string name) {
    thread_binding& b = binding();
    b.thread_name = std::move(name);
    if (b.shard != nullptr && b.owner != nullptr) {
        std::lock_guard<std::mutex> lock(b.owner->mutex);
        b.shard->name = b.thread_name;
    }
}

void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t duration_ns,
               const char* key0, double val0, const char* key1,
               double val1) noexcept {
    try {
        thread_shard* shard = bound_shard();
        if (shard == nullptr) {
            return;
        }
        const std::uint64_t n = shard->span_count.load(std::memory_order_relaxed);
        if (n >= shard->spans.size()) {
            shard->dropped_spans.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        span_event& ev = shard->spans[n];
        ev.name = name;
        ev.start_ns = start_ns;
        ev.duration_ns = duration_ns;
        ev.keys = {key0, key1};
        ev.vals = {val0, val1};
        // Publish: snapshot() acquire-loads span_count, so the event write
        // above happens-before any read of it.
        shard->span_count.store(n + 1, std::memory_order_release);
    } catch (...) {
    }
}

metric_registry::metric_registry(registry_options options)
    : impl_(std::make_shared<impl>()) {
    BISTNA_EXPECTS(options.span_ring_capacity > 0,
                   "span_ring_capacity must be positive");
    impl_->options = options;
}

metric_registry::~metric_registry() { detach(); }

void metric_registry::attach() {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    BISTNA_EXPECTS(g_active == nullptr,
                   "a metric_registry is already attached");
    g_active = impl_;
    // Even -> odd: threads re-bind to this registry on their next record.
    g_epoch.fetch_add(1, std::memory_order_release);
}

void metric_registry::detach() {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    if (g_active != impl_) {
        return;
    }
    g_active.reset();
    // Odd -> even: the hot path sees "detached" on its next epoch load.
    g_epoch.fetch_add(1, std::memory_order_release);
}

bool metric_registry::is_attached() const noexcept {
    std::lock_guard<std::mutex> lock(g_registry_mutex);
    return g_active == impl_;
}

void metric_registry::set_process_name(std::string name) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->process_name = std::move(name);
}

telemetry_snapshot metric_registry::snapshot() const {
    telemetry_snapshot snap;
    snap.pid = static_cast<std::uint64_t>(::getpid());

    const std::size_t n_counters = counters_table().size();
    const std::size_t n_histograms = histograms_table().size();
    snap.counters.resize(n_counters);
    for (std::size_t i = 0; i < n_counters; ++i) {
        snap.counters[i].name = counter_name(static_cast<metric_id>(i));
    }
    snap.histograms.resize(n_histograms);
    for (std::size_t i = 0; i < n_histograms; ++i) {
        snap.histograms[i].name = histogram_name(static_cast<metric_id>(i));
    }

    std::lock_guard<std::mutex> lock(impl_->mutex);
    snap.process_name = impl_->process_name;
    for (const auto& shard : impl_->shards) {
        for (std::size_t i = 0; i < n_counters; ++i) {
            snap.counters[i].value +=
                shard->counters[i].load(std::memory_order_relaxed);
        }
        for (std::size_t i = 0; i < n_histograms; ++i) {
            const hist_cell& cell = shard->histograms[i];
            histogram_value& out = snap.histograms[i];
            out.count += cell.count.load(std::memory_order_relaxed);
            out.sum += cell.sum.load(std::memory_order_relaxed);
            for (std::size_t k = 0; k < histogram_buckets; ++k) {
                out.buckets[k] += cell.buckets[k].load(std::memory_order_relaxed);
            }
        }

        // Re-attach creates a fresh shard per thread under the same tid;
        // merge thread rows so dropped counts accumulate.
        thread_info* info = nullptr;
        for (thread_info& t : snap.threads) {
            if (t.tid == shard->tid) {
                info = &t;
                break;
            }
        }
        if (info == nullptr) {
            snap.threads.push_back({shard->tid, shard->name, 0});
            info = &snap.threads.back();
        } else if (!shard->name.empty()) {
            info->name = shard->name;
        }
        info->dropped_spans +=
            shard->dropped_spans.load(std::memory_order_relaxed);

        const std::uint64_t published =
            shard->span_count.load(std::memory_order_acquire);
        for (std::uint64_t i = 0; i < published; ++i) {
            const span_event& ev = shard->spans[i];
            span_value out;
            out.name = ev.name;
            out.tid = shard->tid;
            out.start_ns = ev.start_ns;
            out.duration_ns = ev.duration_ns;
            for (std::size_t a = 0; a < ev.keys.size(); ++a) {
                if (ev.keys[a] != nullptr) {
                    out.args.emplace_back(ev.keys[a], ev.vals[a]);
                }
            }
            snap.spans.push_back(std::move(out));
        }
    }
    return snap;
}

} // namespace bistna::telemetry
