#include "telemetry/snapshot.hpp"

#include <algorithm>

namespace bistna::telemetry {

std::uint64_t histogram_value::quantile_upper_bound(double q) const noexcept {
    if (count == 0) {
        return 0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    std::uint64_t cumulative = 0;
    for (std::size_t k = 0; k < buckets.size(); ++k) {
        cumulative += buckets[k];
        if (static_cast<double>(cumulative) >= target && cumulative > 0) {
            return bucket_upper_bound(k);
        }
    }
    return bucket_upper_bound(buckets.size() - 1);
}

const counter_value*
telemetry_snapshot::find_counter(const std::string& name) const noexcept {
    for (const counter_value& c : counters) {
        if (c.name == name) {
            return &c;
        }
    }
    return nullptr;
}

const histogram_value*
telemetry_snapshot::find_histogram(const std::string& name) const noexcept {
    for (const histogram_value& h : histograms) {
        if (h.name == name) {
            return &h;
        }
    }
    return nullptr;
}

std::uint64_t telemetry_snapshot::counter(const std::string& name) const noexcept {
    const counter_value* c = find_counter(name);
    return c == nullptr ? 0 : c->value;
}

telemetry_snapshot merge_metrics(std::span<const telemetry_snapshot> processes) {
    telemetry_snapshot merged;
    merged.process_name = "fleet";
    for (const telemetry_snapshot& snap : processes) {
        for (const counter_value& c : snap.counters) {
            bool found = false;
            for (counter_value& out : merged.counters) {
                if (out.name == c.name) {
                    out.value += c.value;
                    found = true;
                    break;
                }
            }
            if (!found) {
                merged.counters.push_back(c);
            }
        }
        for (const histogram_value& h : snap.histograms) {
            bool found = false;
            for (histogram_value& out : merged.histograms) {
                if (out.name == h.name) {
                    out.count += h.count;
                    out.sum += h.sum;
                    for (std::size_t k = 0; k < out.buckets.size(); ++k) {
                        out.buckets[k] += h.buckets[k];
                    }
                    found = true;
                    break;
                }
            }
            if (!found) {
                merged.histograms.push_back(h);
            }
        }
    }
    return merged;
}

} // namespace bistna::telemetry
