#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace bistna::telemetry {

namespace {

// Locale-independent double formatting (std::ostream and snprintf honor
// the global locale's decimal separator, which would corrupt the JSON).
std::string format_double(double value) {
    std::array<char, 64> buf{};
    const auto [end, ec] =
        std::to_chars(buf.data(), buf.data() + buf.size(), value);
    BISTNA_EXPECTS(ec == std::errc(), "double formatting failed");
    return std::string(buf.data(), end);
}

std::string quoted(const std::string& s) {
    return "\"" + json_escape(s) + "\"";
}

// trace_event timestamps are microseconds; keep sub-microsecond precision
// as a fractional part.
double to_trace_us(std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
}

void write_metadata_event(std::ostream& out, const char* name,
                          std::uint64_t pid, std::uint32_t tid,
                          const char* arg_key, const std::string& arg_value,
                          bool& first) {
    if (!first) {
        out << ",\n";
    }
    first = false;
    out << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"" << arg_key
        << "\":" << quoted(arg_value) << "}}";
}

} // namespace

void write_chrome_trace(std::ostream& out,
                        std::span<const telemetry_snapshot> processes) {
    // Rebase on the earliest span start so the trace opens at t=0.
    std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
    for (const telemetry_snapshot& snap : processes) {
        for (const span_value& span : snap.spans) {
            t0 = std::min(t0, span.start_ns);
        }
    }
    if (t0 == std::numeric_limits<std::uint64_t>::max()) {
        t0 = 0;
    }

    out << "{\"traceEvents\":[\n";
    bool first = true;
    for (const telemetry_snapshot& snap : processes) {
        write_metadata_event(out, "process_name", snap.pid, 0, "name",
                             snap.process_name, first);
        for (const thread_info& thread : snap.threads) {
            write_metadata_event(out, "thread_name", snap.pid, thread.tid,
                                 "name", thread.name, first);
        }
        for (const span_value& span : snap.spans) {
            if (!first) {
                out << ",\n";
            }
            first = false;
            out << "{\"name\":" << quoted(span.name)
                << ",\"cat\":\"bistna\",\"ph\":\"X\",\"pid\":" << snap.pid
                << ",\"tid\":" << span.tid
                << ",\"ts\":" << format_double(to_trace_us(span.start_ns - t0))
                << ",\"dur\":" << format_double(to_trace_us(span.duration_ns));
            if (!span.args.empty()) {
                out << ",\"args\":{";
                bool first_arg = true;
                for (const auto& [key, value] : span.args) {
                    if (!first_arg) {
                        out << ",";
                    }
                    first_arg = false;
                    out << quoted(key) << ":" << format_double(value);
                }
                out << "}";
            }
            out << "}";
        }
    }
    out << "\n]}\n";
}

std::string chrome_trace_json(std::span<const telemetry_snapshot> processes) {
    std::ostringstream out;
    write_chrome_trace(out, processes);
    return out.str();
}

void write_chrome_trace_file(const std::string& path,
                             std::span<const telemetry_snapshot> processes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw configuration_error("cannot open trace file for writing: " + path);
    }
    write_chrome_trace(out, processes);
    out.flush();
    if (!out) {
        throw configuration_error("failed writing trace file: " + path);
    }
}

void print_metrics(std::ostream& out, const telemetry_snapshot& snapshot) {
    std::vector<const counter_value*> counters;
    for (const counter_value& c : snapshot.counters) {
        if (c.value != 0) {
            counters.push_back(&c);
        }
    }
    std::sort(counters.begin(), counters.end(),
              [](const counter_value* a, const counter_value* b) {
                  return a->name < b->name;
              });
    if (!counters.empty()) {
        out << "counters (" << snapshot.process_name << "):\n";
        for (const counter_value* c : counters) {
            out << "  " << c->name << " = " << c->value << "\n";
        }
    }

    std::vector<const histogram_value*> histograms;
    for (const histogram_value& h : snapshot.histograms) {
        if (h.count != 0) {
            histograms.push_back(&h);
        }
    }
    std::sort(histograms.begin(), histograms.end(),
              [](const histogram_value* a, const histogram_value* b) {
                  return a->name < b->name;
              });
    if (!histograms.empty()) {
        out << "histograms (" << snapshot.process_name << "):\n";
        for (const histogram_value* h : histograms) {
            out << "  " << h->name << ": count=" << h->count
                << " mean=" << format_double(h->mean())
                << " p50<=" << h->quantile_upper_bound(0.50)
                << " p95<=" << h->quantile_upper_bound(0.95)
                << " p99<=" << h->quantile_upper_bound(0.99) << "\n";
        }
    }
}

} // namespace bistna::telemetry
