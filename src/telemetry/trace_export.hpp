// Export telemetry snapshots as Chrome trace_event JSON (the format
// chrome://tracing and https://ui.perfetto.dev load), and render metric
// tables for terminals.
//
// One snapshot per process goes in; each becomes a process lane (pid +
// process_name metadata) with named thread rows and "X" complete events
// for every span.  Timestamps are rebased so the earliest span across all
// processes is t=0 -- valid because every process stamped spans from the
// same per-boot CLOCK_MONOTONIC.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "telemetry/snapshot.hpp"

namespace bistna::telemetry {

/// Write one merged Chrome trace covering every process snapshot.
void write_chrome_trace(std::ostream& out,
                        std::span<const telemetry_snapshot> processes);

std::string chrome_trace_json(std::span<const telemetry_snapshot> processes);

/// Write the trace to `path` (truncating).  Throws configuration_error on
/// I/O failure.
void write_chrome_trace_file(const std::string& path,
                             std::span<const telemetry_snapshot> processes);

/// Human-readable metric dump: non-zero counters, then histograms with
/// count / mean / approximate p50/p95/p99.
void print_metrics(std::ostream& out, const telemetry_snapshot& snapshot);

} // namespace bistna::telemetry
