#include "baseline/bandpass_analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace bistna::baseline {

bandpass_analyzer::bandpass_analyzer(bandpass_analyzer_params params)
    : params_(params), rng_(params.seed) {
    BISTNA_EXPECTS(params.filter_q > 0.5, "band-pass Q must exceed 0.5");
    BISTNA_EXPECTS(params.detector_bits >= 2 && params.detector_bits <= 24,
                   "unreasonable detector resolution");
}

bandpass_measurement bandpass_analyzer::measure(const eval::sample_source& source,
                                                std::size_t harmonic_k,
                                                std::size_t n_per_period) {
    BISTNA_EXPECTS(harmonic_k >= 1, "band-pass analyzer measures harmonics k >= 1");
    BISTNA_EXPECTS(2 * harmonic_k < n_per_period, "harmonic beyond the Nyquist limit");

    // Discrete-time resonator centered on the harmonic, peak gain
    // normalized to 1:  H(z) = g (1 - z^-2) / (1 - 2 r cos(theta) z^-1 + r^2 z^-2).
    const double theta =
        two_pi * static_cast<double>(harmonic_k) / static_cast<double>(n_per_period);
    const double r = 1.0 - theta / (2.0 * params_.filter_q);
    BISTNA_EXPECTS(r > 0.0 && r < 1.0, "band-pass pole radius out of range");
    const double a1 = -2.0 * r * std::cos(theta);
    const double a2 = r * r;
    // Peak gain of the resonator at theta (numeric normalization).
    const std::complex<double> z1(std::cos(theta), -std::sin(theta));
    const std::complex<double> den = 1.0 + a1 * z1 + a2 * z1 * z1;
    const std::complex<double> num = 1.0 - z1 * z1;
    const double g = std::abs(den) / std::abs(num);

    // Direct-form II transposed biquad: b = {g, 0, -g}, a = {1, a1, a2}.
    double s1 = 0.0;
    double s2 = 0.0;
    double peak = 0.0;
    const std::size_t settle = params_.settle_periods * n_per_period;
    const std::size_t detect = params_.detect_periods * n_per_period;
    for (std::size_t n = 0; n < settle + detect; ++n) {
        const double x = source(n);
        const double y = g * x + s1;
        s1 = -a1 * y + s2;
        s2 = -g * x - a2 * y;
        if (n >= settle) {
            peak = std::max(peak, std::abs(y));
        }
    }

    // Peak detector: droop/offset floor plus quantized readout.
    const double lsb = params_.detector_full_scale /
                       static_cast<double>(1ULL << params_.detector_bits);
    double reading = peak + params_.detector_offset * rng_.uniform(0.5, 1.0);
    reading = std::min(reading, params_.detector_full_scale);
    reading = std::round(reading / lsb) * lsb;

    bandpass_measurement m;
    m.amplitude = reading;
    m.dbfs = amplitude_to_dbfs(std::max(reading, lsb * 0.5), params_.detector_full_scale);
    return m;
}

} // namespace bistna::baseline
