#include "baseline/oscilloscope.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace bistna::baseline {

oscilloscope_params oscilloscope_params::ideal() {
    oscilloscope_params p;
    p.adc_bits = 24;
    p.noise_rms = 0.0;
    return p;
}

oscilloscope::oscilloscope(oscilloscope_params params)
    : params_(params), rng_(params.seed) {
    BISTNA_EXPECTS(params.full_scale > 0.0, "scope full scale must be positive");
    BISTNA_EXPECTS(params.adc_bits >= 2 && params.adc_bits <= 32, "unreasonable ADC width");
}

std::vector<double> oscilloscope::acquire(const eval::sample_source& source,
                                          double sample_rate_hz) {
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");
    const double lsb =
        2.0 * params_.full_scale / static_cast<double>(1ULL << params_.adc_bits);
    std::vector<double> record;
    record.reserve(params_.record_length);
    for (std::size_t n = 0; n < params_.record_length; ++n) {
        double v = source(n);
        if (params_.noise_rms > 0.0) {
            v += rng_.gaussian(0.0, params_.noise_rms);
        }
        v = std::clamp(v, -params_.full_scale, params_.full_scale);
        record.push_back(std::round(v / lsb) * lsb);
    }
    return record;
}

scope_harmonics oscilloscope::measure_harmonics(const std::vector<double>& record,
                                                double sample_rate_hz, double fundamental_hz,
                                                std::size_t harmonics) const {
    const auto metrics = dsp::analyze_tone(record, sample_rate_hz, fundamental_hz, harmonics,
                                           params_.window);
    scope_harmonics out;
    out.fundamental_hz = metrics.fundamental_hz;
    out.fundamental_amplitude = metrics.fundamental_amplitude;
    out.thd_db = metrics.thd_db;
    out.harmonic_dbc.reserve(metrics.harmonic_amplitudes.size());
    for (double amplitude : metrics.harmonic_amplitudes) {
        out.harmonic_dbc.push_back(
            amplitude_ratio_to_db(amplitude / metrics.fundamental_amplitude));
    }
    return out;
}

} // namespace bistna::baseline
