// Bandpass-filter + amplitude-detector analyzer (the paper's ref [8],
// "An On-Chip Spectrum Analyzer for Analog Built-In Testing").
//
// A programmable SC band-pass filter is centered on the harmonic of
// interest and a peak detector measures the filtered amplitude.  The paper
// positions its sigma-delta evaluator *against* this approach, whose
// dynamic range is limited to ~40 dB by (a) finite filter selectivity --
// the full-scale fundamental leaks into the harmonic measurement -- and
// (b) the amplitude detector's resolution/offset.  bench_dynamic_range
// reproduces that comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eval/signature.hpp"

namespace bistna::baseline {

struct bandpass_analyzer_params {
    double filter_q = 10.0;          ///< selectivity of the SC band-pass
    unsigned detector_bits = 8;      ///< amplitude-detector resolution
    double detector_full_scale = 1.0;///< volts
    double detector_offset = 2e-3;   ///< peak-detector droop/offset floor (volts)
    std::size_t settle_periods = 64; ///< filter settling before detection
    std::size_t detect_periods = 64; ///< detection window
    std::uint64_t seed = 5;
};

/// Amplitude of harmonic k measured by the swept band-pass method.
struct bandpass_measurement {
    double amplitude = 0.0; ///< detector reading (volts)
    double dbfs = 0.0;      ///< relative to detector full scale
};

class bandpass_analyzer {
public:
    explicit bandpass_analyzer(bandpass_analyzer_params params);

    /// Measure harmonic k of a coherent record (n_per_period samples per
    /// fundamental period).
    bandpass_measurement measure(const eval::sample_source& source, std::size_t harmonic_k,
                                 std::size_t n_per_period);

    const bandpass_analyzer_params& params() const noexcept { return params_; }

private:
    bandpass_analyzer_params params_;
    bistna::rng rng_;
};

} // namespace bistna::baseline
