// Digital-oscilloscope baseline (the LeCroy WaveSurfer 422 of Fig. 10c).
//
// A scope measures harmonics by FFT of an acquired record; this model adds
// the front-end limits that matter at the -60 dB level: vertical quantizer
// (8-bit typical), input-referred noise, and finite record length.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/spectrum.hpp"
#include "eval/signature.hpp"

namespace bistna::baseline {

struct oscilloscope_params {
    double full_scale = 1.0;   ///< +/- volts vertical range
    unsigned adc_bits = 8;     ///< vertical resolution
    double noise_rms = 300e-6; ///< front-end noise (volts)
    std::size_t record_length = 1 << 15;
    dsp::window_kind window = dsp::window_kind::blackman_harris;
    std::uint64_t seed = 99;

    /// Ideal acquisition (no quantizer, no noise) for ground-truth checks.
    static oscilloscope_params ideal();
};

/// Harmonic measurement produced by the scope's FFT math.
struct scope_harmonics {
    double fundamental_hz = 0.0;
    double fundamental_amplitude = 0.0;
    std::vector<double> harmonic_dbc; ///< H2.. relative to the fundamental (dB)
    double thd_db = 0.0;
};

class oscilloscope {
public:
    explicit oscilloscope(oscilloscope_params params);

    /// Digitize a record from a source sampled at sample_rate_hz.
    std::vector<double> acquire(const eval::sample_source& source, double sample_rate_hz);

    /// FFT harmonic readout of a (digitized) record.
    scope_harmonics measure_harmonics(const std::vector<double>& record,
                                      double sample_rate_hz, double fundamental_hz,
                                      std::size_t harmonics = 5) const;

    const oscilloscope_params& params() const noexcept { return params_; }

private:
    oscilloscope_params params_;
    bistna::rng rng_;
};

} // namespace bistna::baseline
