// Coherent-DFT baseline analyzer (the DSP approach of the paper's refs
// [4][5]): correlate a captured record against sin/cos at the tone
// frequency.  Needs full-resolution waveform acquisition -- exactly the
// high data-volume cost the BIST scheme avoids -- but serves as the
// accuracy reference for the network analyzer's gain/phase estimates.
#pragma once

#include <vector>

#include "common/interval.hpp"
#include "dsp/goertzel.hpp"
#include "eval/signature.hpp"

namespace bistna::baseline {

struct dft_point {
    double amplitude = 0.0;
    double phase_rad = 0.0;
};

class dft_analyzer {
public:
    /// Measure a harmonic of the coherent grid: harmonic k of a record with
    /// n_per_period samples per fundamental period.
    dft_point measure(const std::vector<double>& record, std::size_t harmonic_k,
                      std::size_t n_per_period) const;

    /// Gain/phase between two coherent records (input & output of a DUT).
    struct gain_phase {
        double gain = 0.0;
        double gain_db = 0.0;
        double phase_rad = 0.0;
    };
    gain_phase transfer(const std::vector<double>& input, const std::vector<double>& output,
                        std::size_t harmonic_k, std::size_t n_per_period) const;
};

} // namespace bistna::baseline
