#include "baseline/dft_analyzer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace bistna::baseline {

dft_point dft_analyzer::measure(const std::vector<double>& record, std::size_t harmonic_k,
                                std::size_t n_per_period) const {
    BISTNA_EXPECTS(n_per_period > 0, "n_per_period must be positive");
    BISTNA_EXPECTS(record.size() % n_per_period == 0,
                   "coherent DFT needs an integer number of periods");
    const double f_norm = static_cast<double>(harmonic_k) / static_cast<double>(n_per_period);
    const auto estimate = dsp::estimate_tone(record, f_norm, 1.0);
    return dft_point{estimate.amplitude, estimate.phase_rad};
}

dft_analyzer::gain_phase dft_analyzer::transfer(const std::vector<double>& input,
                                                const std::vector<double>& output,
                                                std::size_t harmonic_k,
                                                std::size_t n_per_period) const {
    const auto in = measure(input, harmonic_k, n_per_period);
    const auto out = measure(output, harmonic_k, n_per_period);
    BISTNA_EXPECTS(in.amplitude > 0.0, "input record has no tone at the requested harmonic");
    gain_phase gp;
    gp.gain = out.amplitude / in.amplitude;
    gp.gain_db = amplitude_ratio_to_db(gp.gain);
    gp.phase_rad = wrap_phase(out.phase_rad - in.phase_rad);
    return gp;
}

} // namespace bistna::baseline
