// Rate conversion helpers.
//
// The paper's Fig. 8b caveat — "these results correspond to the
// continuous-time analysis of a sampled signal" — is reproduced by
// zero-order-hold upsampling: holding each generator sample over `factor`
// fine-grid points exposes the ZOH images a scope would see, while the
// plain sample stream gives the discrete-time view.
#pragma once

#include <cstddef>
#include <vector>

namespace bistna::dsp {

/// Repeat each sample `factor` times (zero-order hold onto a finer grid).
std::vector<double> zoh_upsample(const std::vector<double>& samples, std::size_t factor);

/// Linear-interpolation upsampling onto a grid `factor` times finer.
std::vector<double> linear_upsample(const std::vector<double>& samples, std::size_t factor);

/// Keep every `factor`-th sample starting at `phase`.
std::vector<double> decimate(const std::vector<double>& samples, std::size_t factor,
                             std::size_t phase = 0);

} // namespace bistna::dsp
