#include "dsp/resample.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

std::vector<double> zoh_upsample(const std::vector<double>& samples, std::size_t factor) {
    BISTNA_EXPECTS(factor > 0, "upsampling factor must be positive");
    std::vector<double> out;
    out.reserve(samples.size() * factor);
    for (double x : samples) {
        for (std::size_t k = 0; k < factor; ++k) {
            out.push_back(x);
        }
    }
    return out;
}

std::vector<double> linear_upsample(const std::vector<double>& samples, std::size_t factor) {
    BISTNA_EXPECTS(factor > 0, "upsampling factor must be positive");
    if (samples.empty()) {
        return {};
    }
    std::vector<double> out;
    out.reserve(samples.size() * factor);
    for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
        for (std::size_t k = 0; k < factor; ++k) {
            const double t = static_cast<double>(k) / static_cast<double>(factor);
            out.push_back(lerp(samples[i], samples[i + 1], t));
        }
    }
    out.push_back(samples.back());
    return out;
}

std::vector<double> decimate(const std::vector<double>& samples, std::size_t factor,
                             std::size_t phase) {
    BISTNA_EXPECTS(factor > 0, "decimation factor must be positive");
    BISTNA_EXPECTS(phase < factor, "decimation phase must be < factor");
    std::vector<double> out;
    out.reserve(samples.size() / factor + 1);
    for (std::size_t i = phase; i < samples.size(); i += factor) {
        out.push_back(samples[i]);
    }
    return out;
}

} // namespace bistna::dsp
