#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

std::vector<double> make_window(window_kind kind, std::size_t length) {
    BISTNA_EXPECTS(length > 0, "window length must be positive");
    std::vector<double> w(length, 1.0);
    const double n = static_cast<double>(length);
    auto cosine_sum = [&](const std::vector<double>& a) {
        for (std::size_t i = 0; i < length; ++i) {
            const double x = two_pi * static_cast<double>(i) / n;
            double acc = 0.0;
            double sign = 1.0;
            for (std::size_t t = 0; t < a.size(); ++t) {
                acc += sign * a[t] * std::cos(static_cast<double>(t) * x);
                sign = -sign;
            }
            w[i] = acc;
        }
    };
    switch (kind) {
    case window_kind::rectangular:
        break;
    case window_kind::hann:
        cosine_sum({0.5, 0.5});
        break;
    case window_kind::hamming:
        cosine_sum({0.54, 0.46});
        break;
    case window_kind::blackman_harris:
        cosine_sum({0.35875, 0.48829, 0.14128, 0.01168});
        break;
    case window_kind::flattop:
        cosine_sum({0.21557895, 0.41663158, 0.277263158, 0.083578947, 0.006947368});
        break;
    }
    return w;
}

double coherent_gain(const std::vector<double>& window) {
    BISTNA_EXPECTS(!window.empty(), "coherent_gain of empty window");
    double sum = 0.0;
    for (double x : window) {
        sum += x;
    }
    return sum / static_cast<double>(window.size());
}

double enbw_bins(const std::vector<double>& window) {
    BISTNA_EXPECTS(!window.empty(), "enbw of empty window");
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : window) {
        sum += x;
        sum_sq += x * x;
    }
    return static_cast<double>(window.size()) * sum_sq / (sum * sum);
}

std::size_t leakage_halfwidth_bins(window_kind kind) {
    switch (kind) {
    case window_kind::rectangular:
        return 1;
    case window_kind::hann:
    case window_kind::hamming:
        return 3;
    case window_kind::blackman_harris:
        return 5;
    case window_kind::flattop:
        return 7;
    }
    return 3;
}

std::string to_string(window_kind kind) {
    switch (kind) {
    case window_kind::rectangular:
        return "rectangular";
    case window_kind::hann:
        return "hann";
    case window_kind::hamming:
        return "hamming";
    case window_kind::blackman_harris:
        return "blackman-harris";
    case window_kind::flattop:
        return "flattop";
    }
    return "unknown";
}

} // namespace bistna::dsp
