// Cascaded integrator-comb (CIC) decimation.
//
// The paper leaves the evaluator's digital block off-chip (a VHDL synthesis
// estimate is quoted); an integrated variant would decimate the sigma-delta
// bitstreams with a CIC filter before further processing.  This module
// provides that substrate: an order-R CIC decimator with exact integer
// arithmetic, plus its frequency response for compensation design.
#pragma once

#include <cstdint>
#include <vector>

namespace bistna::dsp {

class cic_decimator {
public:
    /// `order` integrator/comb pairs (sinc^order response), decimation by
    /// `factor`, differential delay 1.
    cic_decimator(std::size_t order, std::size_t factor);

    /// Push one input sample; returns true when an output sample is ready
    /// (every `factor` inputs), retrievable via output().
    bool push(double sample);

    /// The most recent decimated output, normalized by factor^order so a
    /// DC input of x yields x.
    double output() const noexcept { return output_; }

    /// Decimate a whole record.
    std::vector<double> process(const std::vector<double>& input);

    /// Magnitude response at a normalized input frequency f (cycles per
    /// input sample): |sin(pi f M)/ (M sin(pi f))|^order.
    double magnitude(double normalized_frequency) const;

    std::size_t order() const noexcept { return order_; }
    std::size_t factor() const noexcept { return factor_; }

    void reset();

private:
    std::size_t order_;
    std::size_t factor_;
    std::vector<double> integrators_;
    std::vector<double> combs_;
    std::size_t phase_ = 0;
    double output_ = 0.0;
    double normalization_;
};

} // namespace bistna::dsp
