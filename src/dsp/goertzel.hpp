// Generalized Goertzel single-frequency DFT.
//
// Serves as the "ideal DSP" baseline analyzer (refs [4][5] in the paper):
// a coherent correlation against sin/cos at one frequency, giving amplitude
// and phase without a full FFT.  The block API (goertzel_lanes) runs the
// recurrence over many lanes at once in lane-major layout -- the shape the
// banked render pipeline emits -- with the same per-lane arithmetic as the
// scalar path.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace bistna::dsp {

/// Complex correlation sum (2/N) * sum x[n] e^{-j 2 pi f n / fs}.
/// For a coherent record (integer periods), |result| is the tone amplitude
/// and arg(result) its phase (cosine reference).
std::complex<double> goertzel(std::span<const double> samples, double frequency_hz,
                              double sample_rate_hz);

/// goertzel() over `lanes` records at one frequency, lane-major: lane l's
/// sample n lives at xs[n * lanes + l] (exactly the layout
/// dut::state_space_bank emits) and its correlation lands in results[l].
/// Per-lane recurrence and finalization match goertzel() operation for
/// operation, so each lane is bit-identical to the scalar call on that
/// lane's record; the lane-inner loop merely lets the compiler vectorize
/// across lanes.
void goertzel_lanes(const double* lane_major_xs, std::size_t count, std::size_t lanes,
                    double frequency_hz, double sample_rate_hz,
                    std::complex<double>* results);

/// Amplitude and phase of a tone extracted by coherent correlation.
struct tone_estimate {
    double amplitude = 0.0;
    double phase_rad = 0.0; ///< phase of A*cos(wt + phase)
};

tone_estimate estimate_tone(std::span<const double> samples, double frequency_hz,
                            double sample_rate_hz);

} // namespace bistna::dsp
