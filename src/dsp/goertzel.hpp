// Generalized Goertzel single-frequency DFT.
//
// Serves as the "ideal DSP" baseline analyzer (refs [4][5] in the paper):
// a coherent correlation against sin/cos at one frequency, giving amplitude
// and phase without a full FFT.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace bistna::dsp {

/// Complex correlation sum (2/N) * sum x[n] e^{-j 2 pi f n / fs}.
/// For a coherent record (integer periods), |result| is the tone amplitude
/// and arg(result) its phase (cosine reference).
std::complex<double> goertzel(const std::vector<double>& samples, double frequency_hz,
                              double sample_rate_hz);

/// Amplitude and phase of a tone extracted by coherent correlation.
struct tone_estimate {
    double amplitude = 0.0;
    double phase_rad = 0.0; ///< phase of A*cos(wt + phase)
};

tone_estimate estimate_tone(const std::vector<double>& samples, double frequency_hz,
                            double sample_rate_hz);

} // namespace bistna::dsp
