#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"

namespace bistna::dsp {

std::size_t amplitude_spectrum::bin_of_frequency(double hz) const {
    BISTNA_EXPECTS(bin_hz > 0.0, "spectrum has no frequency axis");
    const double bin = std::round(hz / bin_hz);
    if (bin < 0.0) {
        return 0;
    }
    return std::min(static_cast<std::size_t>(bin), amplitude.size() - 1);
}

std::vector<double> amplitude_spectrum::in_db(double reference) const {
    std::vector<double> db(amplitude.size());
    for (std::size_t i = 0; i < amplitude.size(); ++i) {
        db[i] = amplitude_ratio_to_db(amplitude[i] / reference);
    }
    return db;
}

amplitude_spectrum compute_spectrum(const std::vector<double>& samples, double sample_rate_hz,
                                    window_kind kind) {
    BISTNA_EXPECTS(samples.size() >= 8, "spectrum needs at least 8 samples");
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");

    std::size_t n = std::size_t{1} << static_cast<std::size_t>(
                        std::floor(std::log2(static_cast<double>(samples.size()))));
    std::vector<double> windowed(n);
    const auto window = make_window(kind, n);
    for (std::size_t i = 0; i < n; ++i) {
        windowed[i] = samples[i] * window[i];
    }
    const auto bins = rfft(windowed);
    const double gain = coherent_gain(window);

    amplitude_spectrum result;
    result.amplitude.resize(bins.size());
    result.bin_hz = sample_rate_hz / static_cast<double>(n);
    result.sample_rate_hz = sample_rate_hz;
    result.window = kind;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        // Single-sided amplitude: double all bins except DC and Nyquist.
        const double sided = (i == 0 || i + 1 == bins.size()) ? 1.0 : 2.0;
        result.amplitude[i] = sided * std::abs(bins[i]) / (static_cast<double>(n) * gain);
    }
    return result;
}

spectral_peak find_peak(const amplitude_spectrum& spectrum, std::size_t min_bin,
                        std::size_t max_bin) {
    BISTNA_EXPECTS(min_bin <= max_bin && max_bin < spectrum.bins(), "peak search out of range");
    spectral_peak best;
    for (std::size_t b = min_bin; b <= max_bin; ++b) {
        if (spectrum.amplitude[b] > best.amplitude) {
            best.amplitude = spectrum.amplitude[b];
            best.bin = b;
        }
    }
    best.frequency_hz = spectrum.frequency_of_bin(best.bin);
    return best;
}

spectral_peak measure_tone(const amplitude_spectrum& spectrum, double frequency_hz,
                           std::size_t search_bins) {
    const std::size_t center = spectrum.bin_of_frequency(frequency_hz);
    const std::size_t lo = center > search_bins ? center - search_bins : 0;
    const std::size_t hi = std::min(center + search_bins, spectrum.bins() - 1);
    spectral_peak peak = find_peak(spectrum, lo, hi);

    // Integrate the leakage skirt (root-sum-square over the main lobe) for
    // an amplitude estimate that is robust to non-coherent sampling.
    const std::size_t halfwidth = leakage_halfwidth_bins(spectrum.window);
    const std::size_t skirt_lo = peak.bin > halfwidth ? peak.bin - halfwidth : 0;
    const std::size_t skirt_hi = std::min(peak.bin + halfwidth, spectrum.bins() - 1);
    double energy = 0.0;
    for (std::size_t b = skirt_lo; b <= skirt_hi; ++b) {
        energy += square(spectrum.amplitude[b]);
    }
    const auto window = make_window(spectrum.window, 1 << 12);
    // RSS overestimates a single windowed tone by sqrt(ENBW); correct it.
    peak.amplitude = std::sqrt(energy / enbw_bins(window));
    return peak;
}

tone_metrics analyze_tone(const std::vector<double>& samples, double sample_rate_hz,
                          double fundamental_hz, std::size_t harmonics, window_kind kind) {
    const auto spectrum = compute_spectrum(samples, sample_rate_hz, kind);
    const std::size_t halfwidth = leakage_halfwidth_bins(kind);

    spectral_peak fundamental;
    if (fundamental_hz > 0.0) {
        fundamental = measure_tone(spectrum, fundamental_hz, halfwidth);
    } else {
        fundamental = find_peak(spectrum, halfwidth + 1, spectrum.bins() - 1);
        fundamental = measure_tone(spectrum, fundamental.frequency_hz, 1);
    }
    BISTNA_EXPECTS(fundamental.amplitude > 0.0, "no fundamental tone found");

    tone_metrics metrics;
    metrics.fundamental_hz = fundamental.frequency_hz;
    metrics.fundamental_amplitude = fundamental.amplitude;

    // Harmonics H2..Hn (folded against Nyquist when aliased).
    double harmonic_energy = 0.0;
    const double nyquist = sample_rate_hz / 2.0;
    for (std::size_t h = 2; h <= harmonics; ++h) {
        double hz = static_cast<double>(h) * fundamental.frequency_hz;
        // Fold aliased harmonics back into [0, nyquist].
        hz = std::fmod(hz, sample_rate_hz);
        if (hz > nyquist) {
            hz = sample_rate_hz - hz;
        }
        const auto tone = measure_tone(spectrum, hz, 2);
        metrics.harmonic_amplitudes.push_back(tone.amplitude);
        harmonic_energy += square(tone.amplitude);
    }
    metrics.thd_db =
        amplitude_ratio_to_db(std::sqrt(harmonic_energy) / fundamental.amplitude);

    // SFDR: strongest spur excluding DC and the fundamental's leakage skirt.
    double worst_spur = 0.0;
    const std::size_t fund_bin = fundamental.bin;
    for (std::size_t b = halfwidth + 1; b < spectrum.bins(); ++b) {
        const std::size_t distance =
            b > fund_bin ? b - fund_bin : fund_bin - b;
        if (distance <= halfwidth) {
            continue;
        }
        worst_spur = std::max(worst_spur, spectrum.amplitude[b]);
    }
    metrics.sfdr_db = worst_spur > 0.0
                          ? amplitude_ratio_to_db(fundamental.amplitude / worst_spur)
                          : 200.0;

    // Noise: total energy minus DC, fundamental skirt and harmonic skirts.
    double noise_energy = 0.0;
    for (std::size_t b = halfwidth + 1; b < spectrum.bins(); ++b) {
        const std::size_t distance_fund = b > fund_bin ? b - fund_bin : fund_bin - b;
        if (distance_fund <= halfwidth) {
            continue;
        }
        bool in_harmonic = false;
        for (std::size_t h = 2; h <= harmonics; ++h) {
            double hz = std::fmod(static_cast<double>(h) * fundamental.frequency_hz,
                                  sample_rate_hz);
            if (hz > nyquist) {
                hz = sample_rate_hz - hz;
            }
            const std::size_t hb = spectrum.bin_of_frequency(hz);
            const std::size_t distance = b > hb ? b - hb : hb - b;
            if (distance <= halfwidth) {
                in_harmonic = true;
                break;
            }
        }
        if (!in_harmonic) {
            noise_energy += square(spectrum.amplitude[b]);
        }
    }
    // Amplitude-corrected bins overestimate broadband noise power by the
    // window's equivalent noise bandwidth; undo it for SNR.
    noise_energy /= enbw_bins(make_window(kind, 1 << 12));
    const double signal_energy = square(fundamental.amplitude);
    metrics.snr_db = noise_energy > 0.0
                         ? power_ratio_to_db(signal_energy / noise_energy)
                         : 200.0;
    const double nad = noise_energy + harmonic_energy;
    metrics.sinad_db = nad > 0.0 ? power_ratio_to_db(signal_energy / nad) : 200.0;
    metrics.enob_bits = (metrics.sinad_db - 1.76) / 6.02;
    return metrics;
}

} // namespace bistna::dsp
