// FFT window functions and their correction factors.
#pragma once

#include <string>
#include <vector>

namespace bistna::dsp {

enum class window_kind {
    rectangular,
    hann,
    hamming,
    blackman_harris, ///< 4-term, -92 dB sidelobes
    flattop          ///< amplitude-accurate 5-term flat-top
};

/// Window samples of the given length (periodic form, suited to FFT use).
std::vector<double> make_window(window_kind kind, std::size_t length);

/// Sum(w)/N: scale to recover the amplitude of a coherent tone.
double coherent_gain(const std::vector<double>& window);

/// Equivalent noise bandwidth in bins: N*Sum(w^2)/Sum(w)^2.
double enbw_bins(const std::vector<double>& window);

/// Half-width (in bins) over which a windowed tone's energy spreads; used
/// when excluding the fundamental's leakage from spur searches.
std::size_t leakage_halfwidth_bins(window_kind kind);

std::string to_string(window_kind kind);

} // namespace bistna::dsp
