// Radix-2 fast Fourier transform.
//
// Self-contained (no external dependency); used by the spectrum analyzer,
// the oscilloscope baseline (the paper's LeCroy WaveSurfer stand-in) and
// the Fig. 8b generator-spectrum bench.
#pragma once

#include <complex>
#include <vector>

namespace bistna::dsp {

using cplx = std::complex<double>;

/// In-place iterative radix-2 decimation-in-time FFT.
/// data.size() must be a power of two.
void fft_inplace(std::vector<cplx>& data);

/// In-place inverse FFT (scaled by 1/N).
void ifft_inplace(std::vector<cplx>& data);

/// FFT of a real signal; returns the N/2+1 non-negative-frequency bins.
/// input.size() must be a power of two.
std::vector<cplx> rfft(const std::vector<double>& input);

/// Direct O(N^2) DFT (reference implementation for testing the FFT).
std::vector<cplx> dft_reference(const std::vector<cplx>& input);

} // namespace bistna::dsp
