#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

void fft_inplace(std::vector<cplx>& data) {
    const std::size_t n = data.size();
    BISTNA_EXPECTS(is_power_of_two(n), "FFT length must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(data[i], data[j]);
        }
    }

    // Danielson-Lanczos butterflies.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -two_pi / static_cast<double>(len);
        const cplx w_len(std::cos(angle), std::sin(angle));
        for (std::size_t block = 0; block < n; block += len) {
            cplx w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const cplx even = data[block + k];
                const cplx odd = data[block + k + len / 2] * w;
                data[block + k] = even + odd;
                data[block + k + len / 2] = even - odd;
                w *= w_len;
            }
        }
    }
}

void ifft_inplace(std::vector<cplx>& data) {
    for (auto& x : data) {
        x = std::conj(x);
    }
    fft_inplace(data);
    const double scale = 1.0 / static_cast<double>(data.size());
    for (auto& x : data) {
        x = std::conj(x) * scale;
    }
}

std::vector<cplx> rfft(const std::vector<double>& input) {
    std::vector<cplx> buffer(input.begin(), input.end());
    fft_inplace(buffer);
    buffer.resize(input.size() / 2 + 1);
    return buffer;
}

std::vector<cplx> dft_reference(const std::vector<cplx>& input) {
    const std::size_t n = input.size();
    std::vector<cplx> output(n);
    for (std::size_t k = 0; k < n; ++k) {
        cplx acc(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -two_pi * static_cast<double>(k) * static_cast<double>(t) /
                                 static_cast<double>(n);
            acc += input[t] * cplx(std::cos(angle), std::sin(angle));
        }
        output[k] = acc;
    }
    return output;
}

} // namespace bistna::dsp
