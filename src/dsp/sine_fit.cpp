#include "dsp/sine_fit.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "linalg/matrix.hpp"

namespace bistna::dsp {

namespace {

sine_fit_result fit_at_frequency(const std::vector<double>& samples, double frequency_hz,
                                 double sample_rate_hz) {
    const std::size_t n = samples.size();
    const double omega = two_pi * frequency_hz / sample_rate_hz;

    // Normal equations for [cos, sin, 1] basis.
    double scc = 0.0, sss = 0.0, scs = 0.0, sc = 0.0, ss = 0.0;
    double xc = 0.0, xs = 0.0, x1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = omega * static_cast<double>(i);
        const double c = std::cos(t);
        const double s = std::sin(t);
        const double x = samples[i];
        scc += c * c;
        sss += s * s;
        scs += c * s;
        sc += c;
        ss += s;
        xc += x * c;
        xs += x * s;
        x1 += x;
    }
    auto gram = linalg::matrix::from_rows({{scc, scs, sc},
                                           {scs, sss, ss},
                                           {sc, ss, static_cast<double>(n)}});
    const auto coeffs = linalg::solve(std::move(gram), {xc, xs, x1});
    const double a = coeffs[0];
    const double b = coeffs[1];

    sine_fit_result result;
    result.amplitude = std::hypot(a, b);
    // x ~ a cos + b sin = amplitude * cos(wt - atan2(b, a)).
    result.phase_rad = wrap_phase(std::atan2(-b, a));
    result.offset = coeffs[2];
    result.frequency_hz = frequency_hz;

    double residual_energy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = omega * static_cast<double>(i);
        const double model = a * std::cos(t) + b * std::sin(t) + coeffs[2];
        residual_energy += square(samples[i] - model);
    }
    result.rms_residual = std::sqrt(residual_energy / static_cast<double>(n));
    return result;
}

} // namespace

sine_fit_result sine_fit_3param(const std::vector<double>& samples, double frequency_hz,
                                double sample_rate_hz) {
    BISTNA_EXPECTS(samples.size() >= 4, "sine fit needs at least 4 samples");
    BISTNA_EXPECTS(frequency_hz > 0.0 && sample_rate_hz > 0.0,
                   "frequencies must be positive");
    return fit_at_frequency(samples, frequency_hz, sample_rate_hz);
}

sine_fit_result sine_fit_4param(const std::vector<double>& samples,
                                double initial_frequency_hz, double sample_rate_hz,
                                std::size_t max_iterations) {
    BISTNA_EXPECTS(samples.size() >= 8, "4-parameter sine fit needs at least 8 samples");
    BISTNA_EXPECTS(initial_frequency_hz > 0.0 && sample_rate_hz > 0.0,
                   "frequencies must be positive");

    // Robust frequency search: the 3-parameter residual is smooth in
    // frequency, so bracket the minimum on a +/-10 % grid around the guess
    // and shrink the bracket by golden-section.  (A Gauss-Newton step on
    // the linearized model is faster but diverges for guesses more than a
    // fraction of a bin away; robustness matters more here.)
    auto residual_at = [&](double f) {
        return fit_at_frequency(samples, f, sample_rate_hz).rms_residual;
    };

    const double nyquist = sample_rate_hz / 2.0;
    double lo = std::max(initial_frequency_hz * 0.9, 1e-12);
    double hi = std::min(initial_frequency_hz * 1.1, nyquist * 0.999);
    BISTNA_EXPECTS(lo < hi, "initial frequency guess too close to Nyquist");

    // Coarse grid to localize the basin.
    const std::size_t grid = 41;
    double best_f = initial_frequency_hz;
    double best_r = residual_at(best_f);
    for (std::size_t i = 0; i < grid; ++i) {
        const double f = lo + (hi - lo) * static_cast<double>(i) / (grid - 1);
        const double r = residual_at(f);
        if (r < best_r) {
            best_r = r;
            best_f = f;
        }
    }
    const double step = (hi - lo) / static_cast<double>(grid - 1);
    lo = std::max(best_f - step, 1e-12);
    hi = std::min(best_f + step, nyquist * 0.999);

    // Golden-section refinement; ~60 shrinks reach machine precision.
    const double golden = 0.5 * (std::sqrt(5.0) - 1.0);
    double x1 = hi - golden * (hi - lo);
    double x2 = lo + golden * (hi - lo);
    double r1 = residual_at(x1);
    double r2 = residual_at(x2);
    const std::size_t shrinks = std::max<std::size_t>(max_iterations * 5, 60);
    for (std::size_t i = 0; i < shrinks && (hi - lo) > 1e-13 * best_f; ++i) {
        if (r1 < r2) {
            hi = x2;
            x2 = x1;
            r2 = r1;
            x1 = hi - golden * (hi - lo);
            r1 = residual_at(x1);
        } else {
            lo = x1;
            x1 = x2;
            r1 = r2;
            x2 = lo + golden * (hi - lo);
            r2 = residual_at(x2);
        }
    }
    return fit_at_frequency(samples, 0.5 * (lo + hi), sample_rate_hz);
}

} // namespace bistna::dsp
