#include "dsp/goertzel.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/kernel.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

namespace {

/// Finalize one lane's recurrence state into the scaled correlation: the
/// generalized Goertzel closing formula, shared verbatim by the scalar and
/// lane-major paths so both produce the same bits.
std::complex<double> finalize(double s_prev, double s_prev2, double omega, std::size_t n) {
    const std::complex<double> w(std::cos(omega), std::sin(omega));
    std::complex<double> y = s_prev - s_prev2 * std::conj(w);
    // Phase reference at sample 0.
    const double back_angle = -omega * static_cast<double>(n - 1);
    y *= std::complex<double>(std::cos(back_angle), std::sin(back_angle));
    return y * (2.0 / static_cast<double>(n));
}

/// Lane-major recurrence rows: s = x + coeff * s1 - s2 per lane, the same
/// left-to-right expression as the scalar loop.
BISTNA_KERNEL_CLONES void goertzel_rows(const double* __restrict xs, std::size_t count,
                                        std::size_t n_lanes, double coeff,
                                        double* __restrict s1, double* __restrict s2) {
    for (std::size_t n = 0; n < count; ++n) {
        const double* row = xs + n * n_lanes;
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double s = row[l] + coeff * s1[l] - s2[l];
            s2[l] = s1[l];
            s1[l] = s;
        }
    }
}

} // namespace

std::complex<double> goertzel(std::span<const double> samples, double frequency_hz,
                              double sample_rate_hz) {
    BISTNA_EXPECTS(!samples.empty(), "goertzel of empty record");
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");

    // Goertzel recurrence: s[n] = x[n] + 2 cos(w) s[n-1] - s[n-2].
    const double omega = two_pi * frequency_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);
    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (double x : samples) {
        const double s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Generalized finalization handles non-integer bin frequencies.
    return finalize(s_prev, s_prev2, omega, samples.size());
}

void goertzel_lanes(const double* lane_major_xs, std::size_t count, std::size_t lanes,
                    double frequency_hz, double sample_rate_hz,
                    std::complex<double>* results) {
    BISTNA_EXPECTS(count > 0, "goertzel of empty record");
    BISTNA_EXPECTS(lanes > 0, "goertzel_lanes of zero lanes");
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");

    const double omega = two_pi * frequency_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);
    std::vector<double> s1(lanes, 0.0);
    std::vector<double> s2(lanes, 0.0);
    goertzel_rows(lane_major_xs, count, lanes, coeff, s1.data(), s2.data());
    for (std::size_t l = 0; l < lanes; ++l) {
        results[l] = finalize(s1[l], s2[l], omega, count);
    }
}

tone_estimate estimate_tone(std::span<const double> samples, double frequency_hz,
                            double sample_rate_hz) {
    const auto y = goertzel(samples, frequency_hz, sample_rate_hz);
    tone_estimate estimate;
    estimate.amplitude = std::abs(y);
    // goertzel computes sum x e^{-jwn}; for x = A cos(wn + p) the sum is
    // (N/2) A e^{jp}, already scaled by 2/N above.
    estimate.phase_rad = std::arg(y);
    return estimate;
}

} // namespace bistna::dsp
