#include "dsp/goertzel.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

std::complex<double> goertzel(const std::vector<double>& samples, double frequency_hz,
                              double sample_rate_hz) {
    BISTNA_EXPECTS(!samples.empty(), "goertzel of empty record");
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");

    // Goertzel recurrence: s[n] = x[n] + 2 cos(w) s[n-1] - s[n-2].
    const double omega = two_pi * frequency_hz / sample_rate_hz;
    const double coeff = 2.0 * std::cos(omega);
    double s_prev = 0.0;
    double s_prev2 = 0.0;
    for (double x : samples) {
        const double s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Generalized finalization handles non-integer bin frequencies.
    const std::complex<double> w(std::cos(omega), std::sin(omega));
    const std::size_t n = samples.size();
    std::complex<double> y = s_prev - s_prev2 * std::conj(w);
    // Phase reference at sample 0.
    const double back_angle = -omega * static_cast<double>(n - 1);
    y *= std::complex<double>(std::cos(back_angle), std::sin(back_angle));
    return y * (2.0 / static_cast<double>(n));
}

tone_estimate estimate_tone(const std::vector<double>& samples, double frequency_hz,
                            double sample_rate_hz) {
    const auto y = goertzel(samples, frequency_hz, sample_rate_hz);
    tone_estimate estimate;
    estimate.amplitude = std::abs(y);
    // goertzel computes sum x e^{-jwn}; for x = A cos(wn + p) the sum is
    // (N/2) A e^{jp}, already scaled by 2/N above.
    estimate.phase_rad = std::arg(y);
    return estimate;
}

} // namespace bistna::dsp
