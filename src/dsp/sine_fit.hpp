// IEEE-1057 style sine-wave fitting.
//
// The three-parameter fit (known frequency) is the reference amplitude
// extractor for the Fig. 8a bench; the four-parameter fit refines an
// uncertain frequency and is used to verify f_wave = f_gen/16.
#pragma once

#include <cstddef>
#include <vector>

namespace bistna::dsp {

struct sine_fit_result {
    double amplitude = 0.0;
    double phase_rad = 0.0;  ///< x[n] ~ amplitude * cos(2 pi f n / fs + phase) + offset
    double offset = 0.0;
    double frequency_hz = 0.0;
    double rms_residual = 0.0;
};

/// Least-squares fit of A cos + B sin + C at a known frequency (IEEE-1057
/// three-parameter fit, closed form).
sine_fit_result sine_fit_3param(const std::vector<double>& samples, double frequency_hz,
                                double sample_rate_hz);

/// Four-parameter fit: iterative Gauss-Newton refinement of the frequency
/// starting from an initial guess.  max_iterations bounds the refinement.
sine_fit_result sine_fit_4param(const std::vector<double>& samples,
                                double initial_frequency_hz, double sample_rate_hz,
                                std::size_t max_iterations = 12);

} // namespace bistna::dsp
