#include "dsp/cic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dsp {

cic_decimator::cic_decimator(std::size_t order, std::size_t factor)
    : order_(order), factor_(factor), integrators_(order, 0.0), combs_(order, 0.0),
      normalization_(std::pow(static_cast<double>(factor), static_cast<double>(order))) {
    BISTNA_EXPECTS(order >= 1 && order <= 8, "CIC order must be in [1, 8]");
    BISTNA_EXPECTS(factor >= 2, "CIC decimation factor must be >= 2");
}

bool cic_decimator::push(double sample) {
    // Integrator cascade at the input rate.
    double value = sample;
    for (double& integrator : integrators_) {
        integrator += value;
        value = integrator;
    }
    if (++phase_ < factor_) {
        return false;
    }
    phase_ = 0;
    // Comb cascade at the output rate.
    for (double& comb : combs_) {
        const double previous = comb;
        comb = value;
        value -= previous;
    }
    output_ = value / normalization_;
    return true;
}

std::vector<double> cic_decimator::process(const std::vector<double>& input) {
    std::vector<double> out;
    out.reserve(input.size() / factor_ + 1);
    for (double x : input) {
        if (push(x)) {
            out.push_back(output());
        }
    }
    return out;
}

double cic_decimator::magnitude(double normalized_frequency) const {
    const double m = static_cast<double>(factor_);
    if (std::abs(normalized_frequency) < 1e-15) {
        return 1.0;
    }
    const double numerator = std::sin(pi * normalized_frequency * m);
    const double denominator = m * std::sin(pi * normalized_frequency);
    return std::pow(std::abs(numerator / denominator), static_cast<double>(order_));
}

void cic_decimator::reset() {
    integrators_.assign(order_, 0.0);
    combs_.assign(order_, 0.0);
    phase_ = 0;
    output_ = 0.0;
}

} // namespace bistna::dsp
