// Amplitude spectra and single-tone quality metrics.
//
// Implements the measurements the paper reports for Fig. 8b (SFDR, THD of
// the generator output) and the oscilloscope cross-check of Fig. 10c.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/window.hpp"

namespace bistna::dsp {

/// Single-sided amplitude spectrum of a real record.
struct amplitude_spectrum {
    std::vector<double> amplitude; ///< per-bin amplitude (volts), window-corrected
    double bin_hz = 0.0;           ///< frequency resolution
    double sample_rate_hz = 0.0;
    window_kind window = window_kind::rectangular;

    std::size_t bins() const noexcept { return amplitude.size(); }
    double frequency_of_bin(std::size_t bin) const noexcept {
        return static_cast<double>(bin) * bin_hz;
    }
    /// Nearest bin for a frequency.
    std::size_t bin_of_frequency(double hz) const;
    /// Amplitude in dB relative to `reference` (default 1.0).
    std::vector<double> in_db(double reference = 1.0) const;
};

/// Windowed, amplitude-corrected spectrum.  If the record length is not a
/// power of two it is truncated to the largest power of two.
amplitude_spectrum compute_spectrum(const std::vector<double>& samples, double sample_rate_hz,
                                    window_kind kind = window_kind::blackman_harris);

/// One spectral peak.
struct spectral_peak {
    std::size_t bin = 0;
    double frequency_hz = 0.0;
    double amplitude = 0.0;
};

/// Largest peak in [min_bin, max_bin]; searches local maxima.
spectral_peak find_peak(const amplitude_spectrum& spectrum, std::size_t min_bin,
                        std::size_t max_bin);

/// Peak near an expected frequency, searching +/- search_bins around it and
/// integrating the leakage skirt for an amplitude estimate.
spectral_peak measure_tone(const amplitude_spectrum& spectrum, double frequency_hz,
                           std::size_t search_bins = 3);

/// Full single-tone analysis of a record.
struct tone_metrics {
    double fundamental_hz = 0.0;
    double fundamental_amplitude = 0.0;
    double thd_db = 0.0;       ///< total harmonic distortion, dB below carrier (negative)
    double sfdr_db = 0.0;      ///< spurious-free dynamic range, dB (positive)
    double snr_db = 0.0;       ///< signal vs non-harmonic noise
    double sinad_db = 0.0;     ///< signal vs noise+distortion
    double enob_bits = 0.0;    ///< effective number of bits from SINAD
    std::vector<double> harmonic_amplitudes; ///< H2..Hn amplitudes (volts)
};

/// Analyze a single-tone record.  `fundamental_hz` <= 0 means auto-detect
/// (largest non-DC peak).  `harmonics` counts H2..H(harmonics).
tone_metrics analyze_tone(const std::vector<double>& samples, double sample_rate_hz,
                          double fundamental_hz = 0.0, std::size_t harmonics = 5,
                          window_kind kind = window_kind::blackman_harris);

} // namespace bistna::dsp
