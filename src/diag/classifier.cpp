#include "diag/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::diag {

classifier::classifier(fault_dictionary dictionary, classifier_options options)
    : dictionary_(std::move(dictionary)), options_(options) {
    const std::size_t dims = dictionary_.space.dimensions();
    BISTNA_EXPECTS(dims > 0, "classifier needs a non-empty signature space");

    scales_ = dictionary_.space.component_floors();
    std::vector<double> lo(dims, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    bool any = false;
    const auto feed = [&](const std::vector<double>& signature) {
        BISTNA_EXPECTS(signature.size() == dims,
                       "dictionary signature does not match its space");
        for (std::size_t c = 0; c < dims; ++c) {
            lo[c] = std::min(lo[c], signature[c]);
            hi[c] = std::max(hi[c], signature[c]);
        }
        any = true;
    };
    if (!dictionary_.healthy.empty()) {
        feed(dictionary_.healthy);
    }
    for (const auto& trajectory : dictionary_.trajectories) {
        for (const auto& point : trajectory.points) {
            feed(point.signature);
        }
    }
    if (any) {
        for (std::size_t c = 0; c < dims; ++c) {
            scales_[c] = std::max(scales_[c], 0.5 * (hi[c] - lo[c]));
        }
    }
}

double classifier::distance(std::span<const double> a, std::span<const double> b) const {
    double sum = 0.0;
    for (std::size_t c = 0; c < scales_.size(); ++c) {
        sum += square((a[c] - b[c]) / scales_[c]);
    }
    return std::sqrt(sum / static_cast<double>(scales_.size()));
}

diagnosis classifier::classify(std::span<const double> signature) const {
    const std::size_t dims = dictionary_.space.dimensions();
    BISTNA_EXPECTS(signature.size() == dims,
                   "signature dimension does not match the dictionary space");

    diagnosis result;
    if (!dictionary_.healthy.empty()) {
        result.healthy_distance = distance(signature, dictionary_.healthy);
    }

    for (std::size_t j = 0; j < dictionary_.trajectories.size(); ++j) {
        const auto& trajectory = dictionary_.trajectories[j];
        if (trajectory.points.empty()) {
            continue;
        }
        fault_hypothesis best;
        best.kind = trajectory.kind;
        best.trajectory_index = j;
        best.severity = trajectory.points.front().severity;
        best.distance = distance(signature, trajectory.points.front().signature);
        // Point-to-polyline: project onto every segment in normalized
        // space; the parameter t along the closest segment interpolates
        // the severity estimate.
        for (std::size_t s = 0; s + 1 < trajectory.points.size(); ++s) {
            const auto& p0 = trajectory.points[s];
            const auto& p1 = trajectory.points[s + 1];
            double dot = 0.0;
            double len2 = 0.0;
            for (std::size_t c = 0; c < dims; ++c) {
                const double d = (p1.signature[c] - p0.signature[c]) / scales_[c];
                dot += d * (signature[c] - p0.signature[c]) / scales_[c];
                len2 += d * d;
            }
            const double t = len2 > 0.0 ? std::clamp(dot / len2, 0.0, 1.0) : 0.0;
            double sum = 0.0;
            for (std::size_t c = 0; c < dims; ++c) {
                const double closest =
                    lerp(p0.signature[c], p1.signature[c], t);
                sum += square((signature[c] - closest) / scales_[c]);
            }
            const double d = std::sqrt(sum / static_cast<double>(dims));
            if (d < best.distance) {
                best.distance = d;
                best.severity = lerp(p0.severity, p1.severity, t);
            }
        }
        result.ranked.push_back(best);
    }

    // Ties break on the unique trajectory index, which equals the insertion
    // order here -- the same result a stable sort by distance would give,
    // without the temporary buffer.
    std::sort(result.ranked.begin(), result.ranked.end(),
              [](const fault_hypothesis& a, const fault_hypothesis& b) {
                  if (a.distance != b.distance) {
                      return a.distance < b.distance;
                  }
                  return a.trajectory_index < b.trajectory_index;
              });

    if (!result.ranked.empty()) {
        const double cutoff = result.ranked.front().distance * options_.ambiguity_ratio +
                              options_.ambiguity_margin;
        for (const auto& hypothesis : result.ranked) {
            if (hypothesis.distance <= cutoff) {
                result.ambiguity.push_back(hypothesis);
            }
        }
    }

    result.fault_detected =
        !result.ranked.empty() && (dictionary_.healthy.empty() ||
                                   result.healthy_distance > options_.healthy_threshold);
    return result;
}

diagnosis classifier::classify_report(const core::screening_report& report) const {
    return classify(dictionary_.space.from_report(report));
}

} // namespace bistna::diag
