// Nearest-trajectory fault classification.
//
// A failing die's signature is matched against every dictionary trajectory
// by point-to-polyline distance in *normalized* signature space (each
// component scaled by its dictionary-wide spread, floored at its
// measurement resolution so flat components can't amplify noise).  The
// result is a ranked hypothesis list -- fault kind, interpolated severity
// estimate, distance -- plus an ambiguity set: every hypothesis whose
// distance is within a margin of the best, which is how two faults with
// overlapping trajectories are reported honestly instead of guessed
// between.  A die closer to the healthy reference than a threshold is
// reported as "no fault" (a spec marginality, not a parametric defect).
#pragma once

#include <span>
#include <vector>

#include "diag/fault_dictionary.hpp"

namespace bistna::diag {

struct classifier_options {
    /// Normalized distance to the healthy reference below which a die is
    /// reported fault-free (units: per-component spreads, RMS-averaged).
    /// Sized to sit above process-variation + measurement noise but below
    /// the catalog trajectories' failing-severity extents.
    double healthy_threshold = 0.25;
    /// A hypothesis joins the ambiguity set when its distance is within
    /// best * ambiguity_ratio + ambiguity_margin.
    double ambiguity_ratio = 1.25;
    double ambiguity_margin = 0.1;
};

struct fault_hypothesis {
    fault_kind kind = fault_kind::cap_unit_mismatch;
    double severity = 0.0;         ///< interpolated along the trajectory
    double distance = 0.0;         ///< normalized point-to-polyline distance
    std::size_t trajectory_index = 0;
};

struct diagnosis {
    /// False when the signature sits within healthy_threshold of the
    /// dictionary's healthy reference (or the dictionary is empty).
    bool fault_detected = false;
    double healthy_distance = 0.0; ///< 0 when no healthy reference exists
    std::vector<fault_hypothesis> ranked; ///< ascending distance, all trajectories
    std::vector<fault_hypothesis> ambiguity; ///< ranked prefix within the margin
};

class classifier {
public:
    explicit classifier(fault_dictionary dictionary, classifier_options options = {});

    /// Classify a signature in the dictionary's space (size must equal
    /// space.dimensions()).
    diagnosis classify(std::span<const double> signature) const;

    /// Classify a diagnostic screening report (signature extracted via the
    /// dictionary's space).
    diagnosis classify_report(const core::screening_report& report) const;

    const fault_dictionary& dictionary() const noexcept { return dictionary_; }
    const classifier_options& options() const noexcept { return options_; }
    /// Per-component normalization scales (dictionary spread, floored).
    const std::vector<double>& component_scales() const noexcept { return scales_; }

private:
    double distance(std::span<const double> a, std::span<const double> b) const;

    fault_dictionary dictionary_;
    classifier_options options_;
    std::vector<double> scales_;
};

} // namespace bistna::diag
