// Fault dictionary: the trajectory set a classifier matches failing dice
// against, serializable to/from CSV so a dictionary is built once per
// process corner and shipped across machines (the first step of sharding
// diagnosis across a test floor).
//
// A *signature* is the vector of measurements screening already produces
// for every die: the calibrated stimulus amplitude and phase, the
// evaluator's offset count rate, gain/phase at the mask frequencies and
// (optionally) THD at one frequency.  All of it comes out of a diagnostic
// screening_report -- no re-measuring -- and the same components are what
// trajectory_builder acquires per severity grid point.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "diag/fault_model.hpp"

namespace bistna::diag {

/// Which measurements form the signature vector, in component order:
/// stimulus_volts, stimulus_phase_deg, offset_rate, gain_db@f...,
/// phase_deg@f..., thd_db.  The space is part of the dictionary and
/// round-trips through the CSV header (component names encode it), so a
/// shipped dictionary can never be matched against mismatched signatures.
struct signature_space {
    bool include_stimulus = true;
    bool include_stimulus_phase = true;
    bool include_offset = true;
    bool include_gain = true;
    bool include_phase = true;
    std::vector<double> frequencies_hz; ///< gain/phase measurement points
    std::size_t thd_max_harmonic = 0;   ///< 0 disables the THD component
    double thd_f_hz = 0.0;

    /// THD readings below this are clamped when extracting signatures: a
    /// fault that crushes the harmonics below the quantization floor (e.g.
    /// a heavy integrator leak) measures -inf dB, and anything below this
    /// floor is measurement noise anyway.
    static constexpr double thd_clamp_db = -70.0;
    /// Same guard for gain components: a hard fault can push a measured
    /// amplitude to exactly zero (-inf dB), which must stay finite for the
    /// classifier's distance arithmetic.
    static constexpr double gain_clamp_db = -80.0;

    bool operator==(const signature_space&) const = default;

    std::size_t dimensions() const;

    /// One name per component, e.g. "gain_db@1000", "thd3_db@200".
    std::vector<std::string> component_names() const;

    /// Inverse of component_names (throws configuration_error on malformed
    /// or inconsistent names).
    static signature_space parse(std::span<const std::string> names);

    /// Per-component measurement-resolution floors for distance
    /// normalization: a component whose dictionary spread is below its
    /// floor carries no fault information and must not amplify noise.
    std::vector<double> component_floors() const;

    /// The natural space over a spec mask: gain/phase at every mask limit
    /// plus the three BIST-health components; thd_max_harmonic >= 2 adds a
    /// THD component at thd_f_hz (0 picks the first limit's frequency).
    static signature_space from_mask(const core::spec_mask& mask,
                                     std::size_t thd_max_harmonic = 0,
                                     double thd_f_hz = 0.0);

    /// The THD measurement frequency with the 0-means-first-frequency
    /// default resolved -- the same resolution screening and the
    /// trajectory builder apply, so extraction and acquisition can never
    /// disagree about where the THD came from.
    double resolved_thd_f_hz() const;

    /// The screening options a report must have been produced with for
    /// from_report to find every component (diagnostic continue + THD).
    core::screening_options screening_options() const;

    /// Extract the signature from a (diagnostic) screening report.  Throws
    /// configuration_error when the report lacks a component the space
    /// needs (e.g. non-diagnostic early return, missing frequency).
    std::vector<double> from_report(const core::screening_report& report) const;

    /// Extract the signature from a trajectory-builder acquisition (the
    /// program's frequencies must be this space's frequencies, in order).
    std::vector<double>
    from_acquisition(const core::sweep_engine::acquisition_result& result) const;
};

/// One severity grid point of a fault trajectory.
struct trajectory_point {
    double severity = 0.0;
    std::vector<double> signature;

    bool operator==(const trajectory_point&) const = default;
};

/// The measured signature curve of one fault over its severity grid
/// (ascending severity; a single point is a degenerate but valid
/// trajectory).
struct fault_trajectory {
    fault_kind kind = fault_kind::cap_unit_mismatch;
    std::vector<trajectory_point> points;

    bool operator==(const fault_trajectory&) const = default;
};

struct fault_dictionary {
    signature_space space;
    /// Signature of the fault-free nominal die (empty when not recorded).
    std::vector<double> healthy;
    std::vector<fault_trajectory> trajectories;

    bool operator==(const fault_dictionary&) const = default;

    /// CSV schema: header "fault_kind,trajectory,severity,<component
    /// names>"; one row per trajectory point with the points of each
    /// trajectory consecutive, grouped on read by the (fault_kind,
    /// trajectory) pair -- so two trajectories of the same kind (e.g. the
    /// two branches of a signed severity axis) survive the round trip
    /// unmerged.  The healthy signature is the row with fault_kind = -1.
    /// Doubles are written with to_chars (locale-independent shortest
    /// form), so to_csv/from_csv round-trip bit-exactly.
    csv_document to_csv() const;
    static fault_dictionary from_csv(const csv_document& doc);

    void write_csv(const std::string& path) const;
    static fault_dictionary read_csv(const std::string& path);

    /// Binary siblings of write_csv/read_csv: the framed checksummed
    /// store format (store/dictionary_io.hpp), with the trajectory matrix
    /// stored as one contiguous 8-aligned f64 block so
    /// store::mapped_dictionary can serve it zero-copy via mmap.  Doubles
    /// travel as bit patterns -- unlike the CSV form, NaN payloads and
    /// signed zeros survive exactly, and any torn/corrupt file is
    /// rejected with a bistna::serialization_error naming the byte
    /// offset.
    void write_binary(const std::string& path) const;
    static fault_dictionary read_binary(const std::string& path);
};

} // namespace bistna::diag
