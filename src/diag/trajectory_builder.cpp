#include "diag/trajectory_builder.hpp"

#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/math_util.hpp"
#include "core/sweep_engine.hpp"

namespace bistna::diag {

namespace {

/// Identity of an item's *board* (generator design, DUT draw, amplitude)
/// -- everything that shapes its rendered records.  Evaluator-side faults
/// leave it unchanged, so every grid point of e.g. the integrator-leak
/// trajectory renders the exact same records as the healthy item.
std::uint64_t board_design_hash(const die_design& design, std::uint64_t nominal_seed) {
    std::uint64_t hash = fnv1a_offset_basis;
    fnv1a_mix(hash, design.generator.fingerprint());
    fnv1a_mix(hash, design.dut_tolerance_sigma);
    fnv1a_mix(hash, design.amplitude_volts);
    fnv1a_mix(hash, nominal_seed);
    return hash;
}

/// The severity grid of one fault: grid_points values spanning
/// [severity_min, severity_max] (a single point degenerates to the min).
std::vector<double> severity_grid(const fault_spec& spec, std::size_t grid_points) {
    std::vector<double> severities;
    severities.reserve(grid_points);
    for (std::size_t g = 0; g < grid_points; ++g) {
        const double t = grid_points == 1 ? 0.0
                                          : static_cast<double>(g) /
                                                static_cast<double>(grid_points - 1);
        severities.push_back(lerp(spec.severity_min, spec.severity_max, t));
    }
    return severities;
}

} // namespace

dictionary_plan make_dictionary_plan(const die_design& design,
                                     const core::analyzer_settings& settings,
                                     const signature_space& space,
                                     const std::vector<fault_spec>& faults,
                                     const trajectory_build_options& options) {
    BISTNA_EXPECTS(options.grid_points >= 1, "severity grid needs at least one point");
    BISTNA_EXPECTS(!space.frequencies_hz.empty(),
                   "signature space must measure at least one frequency");

    // One item per (fault, grid point), plus the healthy reference as item
    // 0.  Every item owns its evaluator seed (derived from its index), so
    // the batch is bit-identical at any thread/lane count.
    std::vector<core::sweep_engine::acquisition_item> items;
    items.reserve(1 + faults.size() * options.grid_points);
    std::vector<std::uint64_t> design_hashes;
    design_hashes.reserve(items.capacity());
    const auto add_item = [&](const die_design& item_design,
                              const core::analyzer_settings& item_settings) {
        core::sweep_engine::acquisition_item item;
        const std::uint64_t board_seed = options.nominal_seed;
        item.make_board = [factory = item_design.factory(), board_seed] {
            return factory(board_seed);
        };
        item.evaluator = item_settings.evaluator;
        item.evaluator.seed = core::sweep_item_seed(options.eval_seed_base, items.size());
        design_hashes.push_back(board_design_hash(item_design, board_seed));
        items.push_back(std::move(item));
    };

    add_item(design, settings); // healthy reference
    for (const auto& spec : faults) {
        for (double severity : severity_grid(spec, options.grid_points)) {
            die_design faulty = design;
            core::analyzer_settings faulty_settings = settings;
            apply_fault(spec.kind, severity, faulty, faulty_settings);
            add_item(faulty, faulty_settings);
        }
    }

    // Evaluator-side fault grid points (and the healthy item) share one
    // physical board: tag those duplicates so the engine renders their
    // records once and shares them (bit-identical, renders are pure).
    std::unordered_map<std::uint64_t, std::size_t> design_counts;
    for (std::uint64_t hash : design_hashes) {
        ++design_counts[hash];
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (design_counts[design_hashes[i]] > 1) {
            items[i].render_key = design_hashes[i];
        }
    }

    dictionary_plan plan;
    plan.items = std::move(items);
    plan.program.frequencies.reserve(space.frequencies_hz.size());
    for (double f : space.frequencies_hz) {
        plan.program.frequencies.push_back(hertz{f});
    }
    if (space.thd_max_harmonic >= 2) {
        plan.program.distortion_max_harmonic = space.thd_max_harmonic;
        plan.program.distortion_f = hertz{space.resolved_thd_f_hz()};
    }
    return plan;
}

fault_dictionary
assemble_dictionary(const signature_space& space,
                    const std::vector<fault_spec>& faults,
                    std::size_t grid_points,
                    const std::vector<core::sweep_engine::acquisition_result>& results) {
    BISTNA_EXPECTS(grid_points >= 1, "severity grid needs at least one point");
    BISTNA_EXPECTS(results.size() == 1 + faults.size() * grid_points,
                   "dictionary assembly needs every plan item's result");

    fault_dictionary dictionary;
    dictionary.space = space;
    dictionary.healthy = space.from_acquisition(results[0]);
    std::size_t next = 1;
    for (const auto& spec : faults) {
        fault_trajectory trajectory;
        trajectory.kind = spec.kind;
        trajectory.points.reserve(grid_points);
        for (double severity : severity_grid(spec, grid_points)) {
            trajectory.points.push_back(
                trajectory_point{severity, space.from_acquisition(results[next++])});
        }
        dictionary.trajectories.push_back(std::move(trajectory));
    }
    return dictionary;
}

fault_dictionary build_dictionary(const die_design& design,
                                  const core::analyzer_settings& settings,
                                  const signature_space& space,
                                  const std::vector<fault_spec>& faults,
                                  const trajectory_build_options& options) {
    dictionary_plan plan =
        make_dictionary_plan(design, settings, space, faults, options);

    core::sweep_engine_options engine_options;
    engine_options.threads = options.threads;
    engine_options.batch_lanes = options.batch_lanes;
    engine_options.queue = options.queue;
    core::sweep_engine engine(design.factory(), settings, engine_options);

    // Streamed build: grid points complete in scheduling order and report
    // progress as they land; the dictionary below is assembled from the
    // index-addressed slots, so it is bit-identical to the blocking build.
    core::job_handle<core::sweep_engine::acquisition_result>::item_callback on_item;
    if (options.on_progress) {
        auto completed = std::make_shared<std::atomic<std::size_t>>(0);
        on_item = [completed, total = plan.items.size(),
                   progress = options.on_progress](
                      std::size_t, const core::sweep_engine::acquisition_result&) {
            progress(completed->fetch_add(1, std::memory_order_relaxed) + 1, total);
        };
    }
    const auto results = engine
                             .submit_acquisition(std::move(plan.items),
                                                 std::move(plan.program),
                                                 std::move(on_item))
                             .results();
    return assemble_dictionary(space, faults, options.grid_points, results);
}

} // namespace bistna::diag
