#include "diag/fault_dictionary.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <system_error>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::diag {

namespace {

/// to_chars, not an ostringstream: component names are part of the
/// on-disk dictionary schema, and a stream would consult the global
/// locale (a grouping locale turns "gain_db@1000" into "gain_db@1.000",
/// which parse() then rejects on every other machine).
std::string format_frequency(double f_hz) {
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, f_hz);
    if (ec != std::errc{}) {
        throw configuration_error("signature_space: cannot format frequency");
    }
    return std::string(buf, end);
}

double parse_double(const std::string& text, const std::string& what) {
    double value = 0.0;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, value);
    if (ec != std::errc{} || ptr != end) {
        throw configuration_error("signature_space: malformed " + what + " '" + text + "'");
    }
    return value;
}

bool same_frequency(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

/// Hard-faulted dice can measure +/-inf dB (zero or unbounded amplitude
/// ratios) or even NaN (0/0); the classifier's distance arithmetic needs
/// every component finite.
double sanitize_db(double db, double floor_db) {
    if (std::isnan(db)) {
        return floor_db;
    }
    return std::clamp(db, floor_db, -floor_db);
}

} // namespace

std::size_t signature_space::dimensions() const {
    std::size_t d = 0;
    d += include_stimulus ? 1 : 0;
    d += include_stimulus_phase ? 1 : 0;
    d += include_offset ? 1 : 0;
    d += include_gain ? frequencies_hz.size() : 0;
    d += include_phase ? frequencies_hz.size() : 0;
    d += thd_max_harmonic >= 2 ? 1 : 0;
    return d;
}

std::vector<std::string> signature_space::component_names() const {
    std::vector<std::string> names;
    names.reserve(dimensions());
    if (include_stimulus) {
        names.push_back("stimulus_volts");
    }
    if (include_stimulus_phase) {
        names.push_back("stimulus_phase_deg");
    }
    if (include_offset) {
        names.push_back("offset_rate");
    }
    if (include_gain) {
        for (double f : frequencies_hz) {
            names.push_back("gain_db@" + format_frequency(f));
        }
    }
    if (include_phase) {
        for (double f : frequencies_hz) {
            names.push_back("phase_deg@" + format_frequency(f));
        }
    }
    if (thd_max_harmonic >= 2) {
        names.push_back("thd" + std::to_string(thd_max_harmonic) + "_db@" +
                        format_frequency(thd_f_hz));
    }
    return names;
}

signature_space signature_space::parse(std::span<const std::string> names) {
    signature_space space;
    space.include_stimulus = false;
    space.include_stimulus_phase = false;
    space.include_offset = false;
    space.include_gain = false;
    space.include_phase = false;

    std::vector<double> gain_frequencies;
    std::vector<double> phase_frequencies;
    for (const std::string& name : names) {
        if (name == "stimulus_volts") {
            space.include_stimulus = true;
        } else if (name == "stimulus_phase_deg") {
            space.include_stimulus_phase = true;
        } else if (name == "offset_rate") {
            space.include_offset = true;
        } else if (name.starts_with("gain_db@")) {
            space.include_gain = true;
            gain_frequencies.push_back(parse_double(name.substr(8), "gain frequency"));
        } else if (name.starts_with("phase_deg@")) {
            space.include_phase = true;
            phase_frequencies.push_back(parse_double(name.substr(10), "phase frequency"));
        } else if (name.starts_with("thd")) {
            const auto at = name.find("_db@");
            if (at == std::string::npos) {
                throw configuration_error("signature_space: malformed THD component '" +
                                          name + "'");
            }
            // Validate before the size_t cast: shipped headers are
            // cross-machine input, and a negative or huge count must fail
            // cleanly, not hit cast UB.
            const double harmonics = parse_double(name.substr(3, at - 3),
                                                  "THD harmonic count");
            if (!(harmonics >= 2.0) || harmonics != std::floor(harmonics) ||
                harmonics > 1024.0) {
                throw configuration_error("signature_space: THD harmonic count out of "
                                          "range in '" + name + "'");
            }
            space.thd_max_harmonic = static_cast<std::size_t>(harmonics);
            space.thd_f_hz = parse_double(name.substr(at + 4), "THD frequency");
        } else {
            throw configuration_error("signature_space: unknown component '" + name + "'");
        }
    }
    if (space.include_gain && space.include_phase &&
        gain_frequencies != phase_frequencies) {
        throw configuration_error(
            "signature_space: gain and phase component frequencies disagree");
    }
    space.frequencies_hz =
        space.include_gain ? std::move(gain_frequencies) : std::move(phase_frequencies);
    return space;
}

std::vector<double> signature_space::component_floors() const {
    // Rough single-acquisition measurement resolutions: components whose
    // dictionary spread is below these carry no usable fault information.
    std::vector<double> floors;
    floors.reserve(dimensions());
    if (include_stimulus) {
        floors.push_back(2.0e-3); // volts
    }
    if (include_stimulus_phase) {
        floors.push_back(0.05); // degrees
    }
    if (include_offset) {
        floors.push_back(5.0e-4); // count rate
    }
    // Gain/phase floors cover ordinary DUT process variation on top of
    // measurement noise: die-to-die component tolerances move the Bode
    // points by a few tenths of a dB / a degree without any fault present,
    // and that spread must not read as fault distance.
    if (include_gain) {
        floors.insert(floors.end(), frequencies_hz.size(), 0.5); // dB
    }
    if (include_phase) {
        floors.insert(floors.end(), frequencies_hz.size(), 1.0); // degrees
    }
    if (thd_max_harmonic >= 2) {
        floors.push_back(2.0); // dB (single-acquisition THD jitter is large)
    }
    return floors;
}

signature_space signature_space::from_mask(const core::spec_mask& mask,
                                           std::size_t thd_max_harmonic, double thd_f_hz) {
    BISTNA_EXPECTS(!mask.limits.empty(), "spec mask has no limits");
    signature_space space;
    space.frequencies_hz.reserve(mask.limits.size());
    for (const auto& limit : mask.limits) {
        space.frequencies_hz.push_back(limit.f_hz);
    }
    space.thd_max_harmonic = thd_max_harmonic;
    if (thd_max_harmonic >= 2) {
        space.thd_f_hz = thd_f_hz > 0.0 ? thd_f_hz : mask.limits.front().f_hz;
    }
    return space;
}

double signature_space::resolved_thd_f_hz() const {
    if (thd_f_hz > 0.0) {
        return thd_f_hz;
    }
    BISTNA_EXPECTS(!frequencies_hz.empty(),
                   "signature space has no frequency to default the THD point to");
    return frequencies_hz.front();
}

core::screening_options signature_space::screening_options() const {
    core::screening_options options;
    options.continue_after_self_test_failure = true;
    options.measure_distortion = thd_max_harmonic >= 2;
    if (options.measure_distortion) {
        options.distortion_f_hz = resolved_thd_f_hz();
    }
    options.distortion_max_harmonic = thd_max_harmonic;
    return options;
}

std::vector<double> signature_space::from_report(const core::screening_report& report) const {
    std::vector<double> signature;
    signature.reserve(dimensions());
    if (include_stimulus) {
        signature.push_back(report.stimulus_volts);
    }
    if (include_stimulus_phase) {
        signature.push_back(report.stimulus_phase_deg);
    }
    if (include_offset) {
        signature.push_back(report.offset_rate);
    }
    const auto find_limit = [&](double f_hz) -> const core::limit_result& {
        for (const auto& result : report.limits) {
            if (same_frequency(result.limit.f_hz, f_hz)) {
                return result;
            }
        }
        throw configuration_error(
            "signature_space: report has no limit at " + format_frequency(f_hz) +
            " Hz (screen with the space's diagnostic options)");
    };
    if (include_gain) {
        for (double f : frequencies_hz) {
            signature.push_back(sanitize_db(find_limit(f).measured_db, gain_clamp_db));
        }
    }
    if (include_phase) {
        for (double f : frequencies_hz) {
            signature.push_back(find_limit(f).phase_deg);
        }
    }
    if (thd_max_harmonic >= 2) {
        const double f_hz = resolved_thd_f_hz();
        if (!report.distortion_measured || !same_frequency(report.thd_f_hz, f_hz)) {
            throw configuration_error(
                "signature_space: report has no THD measurement at " +
                format_frequency(f_hz) + " Hz");
        }
        signature.push_back(sanitize_db(report.thd_db, thd_clamp_db));
    }
    return signature;
}

std::vector<double> signature_space::from_acquisition(
    const core::sweep_engine::acquisition_result& result) const {
    BISTNA_EXPECTS(result.points.size() == frequencies_hz.size(),
                   "acquisition frequency count does not match the signature space");
    std::vector<double> signature;
    signature.reserve(dimensions());
    if (include_stimulus) {
        signature.push_back(result.calibration.amplitude.volts);
    }
    if (include_stimulus_phase) {
        signature.push_back(rad_to_deg(result.calibration.phase.radians));
    }
    if (include_offset) {
        signature.push_back(result.offset_rate);
    }
    if (include_gain) {
        for (const auto& point : result.points) {
            signature.push_back(sanitize_db(point.gain_db, gain_clamp_db));
        }
    }
    if (include_phase) {
        for (const auto& point : result.points) {
            signature.push_back(point.phase_deg);
        }
    }
    if (thd_max_harmonic >= 2) {
        if (!result.has_thd) {
            throw configuration_error(
                "signature_space: acquisition measured no THD (program must set "
                "distortion_max_harmonic >= 2)");
        }
        signature.push_back(sanitize_db(result.thd_db, thd_clamp_db));
    }
    return signature;
}

csv_document fault_dictionary::to_csv() const {
    csv_document doc;
    doc.header = {"fault_kind", "trajectory", "severity"};
    for (auto& name : space.component_names()) {
        doc.header.push_back(std::move(name));
    }

    const auto push_row = [&](double kind, double trajectory_id, double severity,
                              const std::vector<double>& signature) {
        BISTNA_EXPECTS(signature.size() == space.dimensions(),
                       "dictionary signature does not match its space");
        std::vector<double> row;
        row.reserve(3 + signature.size());
        row.push_back(kind);
        row.push_back(trajectory_id);
        row.push_back(severity);
        row.insert(row.end(), signature.begin(), signature.end());
        doc.rows.push_back(std::move(row));
    };

    if (!healthy.empty()) {
        push_row(-1.0, 0.0, 0.0, healthy);
    }
    for (std::size_t j = 0; j < trajectories.size(); ++j) {
        for (const auto& point : trajectories[j].points) {
            push_row(static_cast<double>(static_cast<int>(trajectories[j].kind)),
                     static_cast<double>(j), point.severity, point.signature);
        }
    }
    return doc;
}

fault_dictionary fault_dictionary::from_csv(const csv_document& doc) {
    if (doc.header.size() < 3 || doc.header[0] != "fault_kind" ||
        doc.header[1] != "trajectory" || doc.header[2] != "severity") {
        throw configuration_error(
            "fault_dictionary: header must start with fault_kind,trajectory,severity");
    }
    fault_dictionary dictionary;
    const auto component_header = std::span<const std::string>(doc.header).subspan(3);
    dictionary.space = signature_space::parse(component_header);
    const std::size_t dims = dictionary.space.dimensions();
    if (doc.header.size() != 3 + dims) {
        throw configuration_error("fault_dictionary: header/space dimension mismatch");
    }
    // Signatures are stored positionally, so the header must list the
    // components in the space's canonical order -- a reordered (but
    // otherwise valid) header would silently scramble every signature.
    const auto canonical = dictionary.space.component_names();
    for (std::size_t c = 0; c < dims; ++c) {
        if (component_header[c] != canonical[c]) {
            throw configuration_error(
                "fault_dictionary: component columns out of canonical order ('" +
                component_header[c] + "' where '" + canonical[c] + "' belongs)");
        }
    }

    bool have_open_trajectory = false;
    int open_kind = 0;
    double open_id = 0.0;
    for (const auto& row : doc.rows) {
        if (row.size() != 3 + dims) {
            throw configuration_error("fault_dictionary: row width mismatch");
        }
        // Validate before the int cast (dictionaries ship across machines,
        // so a corrupt cell must fail cleanly, not hit cast UB).
        if (!(row[0] >= -1.0) || row[0] != std::floor(row[0]) ||
            row[0] >= static_cast<double>(fault_kind_count)) {
            throw configuration_error("fault_dictionary: fault kind cell out of range");
        }
        const int kind = static_cast<int>(row[0]);
        std::vector<double> signature(row.begin() + 3, row.end());
        if (kind < 0) {
            if (!dictionary.healthy.empty()) {
                throw configuration_error("fault_dictionary: duplicate healthy row");
            }
            dictionary.healthy = std::move(signature);
            have_open_trajectory = false;
            continue;
        }
        // A new trajectory starts whenever the (kind, trajectory) pair
        // changes, so two adjacent trajectories of the same kind are never
        // merged.
        if (!have_open_trajectory || kind != open_kind || row[1] != open_id) {
            dictionary.trajectories.push_back(
                fault_trajectory{static_cast<fault_kind>(kind), {}});
            have_open_trajectory = true;
            open_kind = kind;
            open_id = row[1];
        }
        dictionary.trajectories.back().points.push_back(
            trajectory_point{row[2], std::move(signature)});
    }
    return dictionary;
}

void fault_dictionary::write_csv(const std::string& path) const { csv_write(to_csv(), path); }

fault_dictionary fault_dictionary::read_csv(const std::string& path) {
    return from_csv(csv_read(path));
}

} // namespace bistna::diag
