// Dictionary construction: sweep every catalog fault's severity over a
// grid and acquire the full signature at each grid point, fanned out
// through core::sweep_engine -- with batch_lanes > 1 one SoA modulator-bank
// pass renders many severities in lockstep, bit-identical to the scalar
// build (gated by bench_fault_diagnosis).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/job_queue.hpp"
#include "core/network_analyzer.hpp"
#include "diag/fault_dictionary.hpp"
#include "diag/fault_model.hpp"

namespace bistna::diag {

struct trajectory_build_options {
    /// Severity grid points per fault (>= 1; 1 degenerates to the fault's
    /// severity_min -- a single-point trajectory).
    std::size_t grid_points = 9;
    /// Thread count / lockstep lane count of the underlying sweep engine
    /// (same semantics as sweep_engine_options; lanes > 1 is the batched
    /// build, bit-identical to lanes = 1).
    std::size_t threads = 0;
    std::size_t batch_lanes = 1;
    /// DUT process-draw seed of the die the dictionary is built on (the
    /// design's nominal die when dut_tolerance_sigma is 0).
    std::uint64_t nominal_seed = 1;
    /// Root of the per-grid-point evaluator seed stream (item seeds are
    /// derived per index, so the build is scheduling-independent).
    std::uint64_t eval_seed_base = 0xD1A65EEDULL;
    /// Optional progress observer of the streamed build: invoked as each
    /// grid-point acquisition completes with (completed, total).  Runs on
    /// the engine's worker threads, so it must be thread-safe; progress
    /// never changes the built dictionary.
    std::function<void(std::size_t completed, std::size_t total)> on_progress;
    /// Run the build on this shared pool instead of a private one (e.g.
    /// one pool serving a dictionary build and a screening lot at once);
    /// null gives the build its own pool sized by `threads`.
    std::shared_ptr<core::job_queue> queue = nullptr;
};

/// The deterministic item list + measurement program of a dictionary
/// build: item 0 is the healthy reference, then grid_points items per
/// catalog fault in catalog order.  Every item owns its evaluator seed
/// (derived from its global index) and its render-sharing key, so any
/// contiguous subrange of `items` can be acquired by a separate engine --
/// or a separate *process* (the shard worker) -- and the combined results
/// are bit-identical to one acquisition of the whole list.
struct dictionary_plan {
    std::vector<core::sweep_engine::acquisition_item> items;
    core::sweep_engine::acquisition_program program;
};

/// Construct the plan.  Uses options.grid_points / nominal_seed /
/// eval_seed_base only; engine-side options are the submitter's business.
dictionary_plan make_dictionary_plan(const die_design& design,
                                     const core::analyzer_settings& settings,
                                     const signature_space& space,
                                     const std::vector<fault_spec>& faults,
                                     const trajectory_build_options& options = {});

/// Fold the plan's acquisition results (all of them, in item order) into a
/// dictionary.  `results.size()` must be 1 + faults.size() * grid_points.
fault_dictionary
assemble_dictionary(const signature_space& space,
                    const std::vector<fault_spec>& faults,
                    std::size_t grid_points,
                    const std::vector<core::sweep_engine::acquisition_result>& results);

/// Build the dictionary: one healthy acquisition plus grid_points
/// acquisitions per catalog fault, signatures extracted into `space`.
/// Deterministic and bit-identical at any thread or lane count.
/// Equivalent to make_dictionary_plan -> submit_acquisition ->
/// assemble_dictionary in one call.
fault_dictionary build_dictionary(const die_design& design,
                                  const core::analyzer_settings& settings,
                                  const signature_space& space,
                                  const std::vector<fault_spec>& faults,
                                  const trajectory_build_options& options = {});

} // namespace bistna::diag
