// Parameterized single-fault catalog for the BIST measurement chain
// (extension; PAPERS.md "Fault-Trajectory Approach for Fault Diagnosis on
// Analog Circuits").
//
// A fault here is a *deterministic parametric deviation* with a severity
// axis, injected on top of the ordinary process draw: a damaged unit
// capacitor in the generator's input array, drifted biquad capacitors, a
// dying generator op-amp, a leaky evaluator integrator, or a comparator
// offset.  Sweeping the severity and recording the measured signature at
// every grid point yields the fault's *trajectory* -- a curve in signature
// space that a classifier can match failing dice against (see
// trajectory_builder / classifier).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/screening.hpp"
#include "gen/generator.hpp"

namespace bistna::diag {

enum class fault_kind : int {
    cap_unit_mismatch = 0, ///< one input-array unit capacitor deviates
    biquad_cap_drift = 1,  ///< generator biquad integrating cap drifts
    opamp_degradation = 2, ///< both generator op-amps degrade together
    integrator_leak = 3,   ///< evaluator modulator integrator leaks
    comparator_offset = 4, ///< evaluator modulator comparator offset
};

inline constexpr std::size_t fault_kind_count = 5;

/// Human-readable fault name (stable; used in reports and tables).
const char* fault_name(fault_kind kind);

/// One catalog entry: a fault plus the severity range its dictionary
/// trajectory covers.  Severity units are physical per fault (relative cap
/// deviation, relative cap drift, degradation fraction, per-sample leak,
/// volts of comparator offset).
struct fault_spec {
    fault_kind kind = fault_kind::cap_unit_mismatch;
    double severity_min = 0.0;
    double severity_max = 0.0;
    std::string unit;
};

/// The default five-fault catalog with severity ranges wide enough that
/// the upper grid points produce failing dice under the paper's spec mask.
std::vector<fault_spec> default_catalog();

/// Everything that defines one die design before the per-die process draw:
/// the generator instance parameters, the DUT tolerance band and the
/// programmed stimulus amplitude.  factory() turns it into the
/// seed-indexed board factory the screening/sweep layers consume
/// (the seed draws the DUT components; the generator instance is fixed,
/// like one board design populated with different filter components).
struct die_design {
    gen::generator_params generator;       ///< realistic 0.35 um defaults
    double dut_tolerance_sigma = 0.0;      ///< 0 = nominal (dictionary) DUT
    double amplitude_volts = 0.15;         ///< V_A+ - V_A- (output ~ 0.3 V)

    core::board_factory factory() const;
};

/// Inject `kind` at `severity` into a die design and its analyzer
/// settings.  Generator-side faults land in design.generator (and thus in
/// the stimulus-cache fingerprint); evaluator-side faults land in
/// settings.evaluator.modulator.  severity = 0 is a no-op for every kind.
void apply_fault(fault_kind kind, double severity, die_design& design,
                 core::analyzer_settings& settings);

} // namespace bistna::diag
