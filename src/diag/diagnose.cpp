#include "diag/diagnose.hpp"

namespace bistna::diag {

diagnosed_lot screen_and_diagnose_lot(const core::board_factory& factory,
                                      const core::analyzer_settings& settings,
                                      const core::spec_mask& mask, const classifier& clf,
                                      std::size_t dice, std::uint64_t first_seed,
                                      std::size_t threads, std::size_t batch_lanes) {
    const core::screening_options options = clf.dictionary().space.screening_options();
    diagnosed_lot result;
    result.lot = core::screen_lot_parallel(
        factory, settings, mask, dice, first_seed, threads, batch_lanes, options,
        [&](std::size_t die, const core::screening_report& report) {
            if (report.passed) {
                return;
            }
            result.failing.push_back(
                diagnosed_die{die, report, clf.classify_report(report)});
        });
    return result;
}

} // namespace bistna::diag
