#include "diag/diagnose.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/sweep_engine.hpp"

namespace bistna::diag {

diagnosed_lot screen_and_diagnose_lot(const core::board_factory& factory,
                                      const core::analyzer_settings& settings,
                                      const core::spec_mask& mask, const classifier& clf,
                                      std::size_t dice, std::uint64_t first_seed,
                                      std::size_t threads, std::size_t batch_lanes,
                                      const diagnose_progress& on_progress,
                                      std::shared_ptr<core::job_queue> queue,
                                      const core::die_report_hook& on_report) {
    const core::screening_options options = clf.dictionary().space.screening_options();

    core::sweep_engine_options engine_options;
    engine_options.threads = threads;
    engine_options.batch_lanes = batch_lanes;
    engine_options.queue = std::move(queue);
    core::sweep_engine engine(factory, settings, engine_options);
    auto handle = engine.submit_screening(mask, dice, first_seed, options);
    // If the classifier or the observer below throws, the engine must not
    // unwind while workers on a shared queue still run its job.
    core::job_scope<core::screening_report> guard(handle);

    // Consume the report stream: each failing die is classified here, on
    // the calling thread, as soon as its report completes -- diagnosis of
    // early dice overlaps measurement of late ones, and a progress
    // observer sees the lot fill in mid-flight.  The aggregation below
    // uses index-addressed slots, so the outcome is independent of
    // completion order.
    diagnosed_lot result;
    std::vector<core::screening_report> reports(dice);
    std::size_t completed = 0;
    while (auto item = handle.next_completed()) {
        if (on_report) {
            on_report(item->index, item->value);
        }
        if (!item->value.passed) {
            result.failing.push_back(
                diagnosed_die{item->index, item->value, clf.classify_report(item->value)});
        }
        reports[item->index] = std::move(item->value);
        ++completed;
        if (on_progress) {
            on_progress(completed, dice, result.failing.size());
        }
    }
    if (auto error = handle.error()) {
        std::rethrow_exception(error);
    }
    // A cancelled lot (e.g. a shared queue torn down mid-flight) must not
    // aggregate never-measured dice as real failures.
    BISTNA_EXPECTS(handle.state() == core::job_state::succeeded,
                   "diagnosed lot was cancelled before every die completed");

    // Failing dice were collected in completion order; the contract (and
    // every downstream table) wants die order.
    std::sort(result.failing.begin(), result.failing.end(),
              [](const diagnosed_die& a, const diagnosed_die& b) { return a.die < b.die; });
    result.lot = core::aggregate_lot(reports);
    return result;
}

} // namespace bistna::diag
