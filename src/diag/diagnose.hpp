// Screening with diagnosis attached: the production entry point that runs
// core::screen_lot_parallel in diagnostic mode and hands every failing
// die's report to the classifier through the per-die report hook -- the
// classifier's input comes straight out of the screening reports, no
// re-measuring.
#pragma once

#include <cstdint>
#include <vector>

#include "core/screening.hpp"
#include "diag/classifier.hpp"

namespace bistna::diag {

struct diagnosed_die {
    std::size_t die = 0;
    core::screening_report report;
    diagnosis result;
};

struct diagnosed_lot {
    core::lot_result lot;
    std::vector<diagnosed_die> failing; ///< every failing die, in die order
};

/// Screen `dice` process draws with the diagnostic options the
/// classifier's dictionary space requires, attach a diagnosis to every
/// failing die.  Same seeding / determinism guarantees as
/// core::screen_lot_parallel.
diagnosed_lot screen_and_diagnose_lot(const core::board_factory& factory,
                                      const core::analyzer_settings& settings,
                                      const core::spec_mask& mask, const classifier& clf,
                                      std::size_t dice, std::uint64_t first_seed = 1,
                                      std::size_t threads = 0, std::size_t batch_lanes = 1);

} // namespace bistna::diag
