// Screening with diagnosis attached: the production entry point that
// submits a diagnostic screening job to the sweep engine and consumes the
// report stream -- every failing die is classified the moment its report
// lands, while the rest of the lot is still measuring.  The classifier's
// input comes straight out of the screening reports, no re-measuring.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "diag/classifier.hpp"

namespace bistna::diag {

struct diagnosed_die {
    std::size_t die = 0;
    core::screening_report report;
    diagnosis result;
};

struct diagnosed_lot {
    core::lot_result lot;
    std::vector<diagnosed_die> failing; ///< every failing die, in die order
};

/// Mid-lot observer: invoked on the calling thread, in completion order,
/// after each die's report (and, for a failing die, its diagnosis) is in.
/// `failing` counts failing dice seen so far.
using diagnose_progress = std::function<void(std::size_t completed, std::size_t total,
                                             std::size_t failing)>;

/// Screen `dice` process draws with the diagnostic options the
/// classifier's dictionary space requires, attach a diagnosis to every
/// failing die.  Same seeding / determinism guarantees as
/// core::screen_lot_parallel: the diagnosed lot is bit-identical at any
/// thread/lane count and any completion order.  `queue` optionally runs
/// the lot on a shared pool (e.g. alongside a dictionary build).
/// `on_report` sees every die's report on the calling thread as it
/// streams in -- in completion order, not die order -- which is how a
/// result store appends records while the lot is still measuring.
diagnosed_lot screen_and_diagnose_lot(const core::board_factory& factory,
                                      const core::analyzer_settings& settings,
                                      const core::spec_mask& mask, const classifier& clf,
                                      std::size_t dice, std::uint64_t first_seed = 1,
                                      std::size_t threads = 0, std::size_t batch_lanes = 1,
                                      const diagnose_progress& on_progress = nullptr,
                                      std::shared_ptr<core::job_queue> queue = nullptr,
                                      const core::die_report_hook& on_report = nullptr);

} // namespace bistna::diag
