#include "diag/fault_model.hpp"

#include "common/error.hpp"
#include "common/units.hpp"
#include "dut/filters.hpp"

namespace bistna::diag {

const char* fault_name(fault_kind kind) {
    switch (kind) {
    case fault_kind::cap_unit_mismatch:
        return "cap-array unit mismatch";
    case fault_kind::biquad_cap_drift:
        return "biquad cap drift";
    case fault_kind::opamp_degradation:
        return "op-amp degradation";
    case fault_kind::integrator_leak:
        return "integrator leak";
    case fault_kind::comparator_offset:
        return "comparator offset";
    }
    return "unknown fault";
}

std::vector<fault_spec> default_catalog() {
    // Ranges are chosen so severities in the upper half of each trajectory
    // push the die out of the paper_lowpass() mask (mostly via the 5 %
    // stimulus self-test window) while the lower half stays inside it --
    // the dictionary then covers both marginal and hard failures.
    return {
        {fault_kind::cap_unit_mismatch, -0.5, 0.5, "relative unit-cap deviation"},
        {fault_kind::biquad_cap_drift, -0.3, 0.3, "relative drift of cap B"},
        {fault_kind::opamp_degradation, 0.0, 1.0, "degradation fraction"},
        {fault_kind::integrator_leak, 0.0, 0.05, "per-sample leak 1-p"},
        {fault_kind::comparator_offset, 0.0, 0.9, "volts"},
    };
}

core::board_factory die_design::factory() const {
    const die_design design = *this;
    return [design](std::uint64_t seed) {
        core::demonstrator_board board(
            design.generator, dut::make_paper_dut(design.dut_tolerance_sigma, seed));
        board.set_amplitude(volt{design.amplitude_volts});
        return board;
    };
}

void apply_fault(fault_kind kind, double severity, die_design& design,
                 core::analyzer_settings& settings) {
    switch (kind) {
    case fault_kind::cap_unit_mismatch:
        // The mid-slope unit CI_2 (selected 4 of 16 steps per period):
        // deviating it shifts the fundamental a little and pumps odd
        // harmonics a lot -- the THD axis is this fault's fingerprint.
        design.generator.cap_fault_index = 2;
        design.generator.cap_fault_delta = severity;
        return;
    case fault_kind::biquad_cap_drift:
        // Drifting the damped integrator's feedback cap B moves the biquad
        // pole (amplitude *and* phase of the stimulus move together).
        design.generator.caps.b *= 1.0 + severity;
        return;
    case fault_kind::opamp_degradation:
        design.generator.opamp1 = design.generator.opamp1.degraded(severity);
        design.generator.opamp2 = design.generator.opamp2.degraded(severity);
        return;
    case fault_kind::integrator_leak:
        if (severity > 0.0) {
            settings.evaluator.modulator.dc_gain_db = sd::modulator_params::dc_gain_db_for_leak(
                severity, settings.evaluator.modulator.ci_over_cf);
        }
        return;
    case fault_kind::comparator_offset:
        // The threshold component alone is noise-shaped by the sigma-delta
        // loop (the feedback servo re-centres the duty cycle), so a broken
        // comparator is modeled with its input-referred companion too --
        // that is the part the grounded offset calibration actually reads,
        // and past ~Vref - A it overloads the modulator and fails the die.
        settings.evaluator.modulator.comparator_offset += severity;
        settings.evaluator.modulator.input_offset += severity;
        return;
    }
    throw configuration_error("apply_fault: unknown fault kind");
}

} // namespace bistna::diag
