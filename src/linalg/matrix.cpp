#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"

namespace bistna::linalg {

matrix::matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    BISTNA_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

matrix matrix::from_rows(const std::vector<std::vector<double>>& rows) {
    BISTNA_EXPECTS(!rows.empty() && !rows.front().empty(), "matrix rows must be non-empty");
    matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        BISTNA_EXPECTS(rows[r].size() == m.cols_, "all matrix rows must have equal width");
        for (std::size_t c = 0; c < m.cols_; ++c) {
            m(r, c) = rows[r][c];
        }
    }
    return m;
}

matrix matrix::identity(std::size_t n) {
    matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

matrix matrix::operator+(const matrix& other) const {
    BISTNA_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in +");
    matrix result = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        result.data_[i] += other.data_[i];
    }
    return result;
}

matrix matrix::operator-(const matrix& other) const {
    BISTNA_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in -");
    matrix result = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        result.data_[i] -= other.data_[i];
    }
    return result;
}

matrix matrix::operator*(const matrix& other) const {
    BISTNA_EXPECTS(cols_ == other.rows_, "matrix shape mismatch in *");
    matrix result(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) {
                continue;
            }
            for (std::size_t c = 0; c < other.cols_; ++c) {
                result(r, c) += a * other(k, c);
            }
        }
    }
    return result;
}

matrix matrix::operator*(double k) const {
    matrix result = *this;
    result *= k;
    return result;
}

matrix& matrix::operator+=(const matrix& other) {
    BISTNA_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += other.data_[i];
    }
    return *this;
}

matrix& matrix::operator*=(double k) {
    for (double& x : data_) {
        x *= k;
    }
    return *this;
}

std::vector<double> matrix::apply(const std::vector<double>& x) const {
    BISTNA_EXPECTS(x.size() == cols_, "vector length mismatch in matrix apply");
    std::vector<double> y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            acc += (*this)(r, c) * x[c];
        }
        y[r] = acc;
    }
    return y;
}

matrix matrix::transposed() const {
    matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

double matrix::norm_inf() const noexcept {
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        double row_sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            row_sum += std::abs((*this)(r, c));
        }
        best = std::max(best, row_sum);
    }
    return best;
}

matrix matrix::block(std::size_t r0, std::size_t c0, std::size_t block_rows,
                     std::size_t block_cols) const {
    BISTNA_EXPECTS(r0 + block_rows <= rows_ && c0 + block_cols <= cols_,
                   "matrix block out of range");
    matrix b(block_rows, block_cols);
    for (std::size_t r = 0; r < block_rows; ++r) {
        for (std::size_t c = 0; c < block_cols; ++c) {
            b(r, c) = (*this)(r0 + r, c0 + c);
        }
    }
    return b;
}

void matrix::set_block(std::size_t r0, std::size_t c0, const matrix& source) {
    BISTNA_EXPECTS(r0 + source.rows() <= rows_ && c0 + source.cols() <= cols_,
                   "matrix set_block out of range");
    for (std::size_t r = 0; r < source.rows(); ++r) {
        for (std::size_t c = 0; c < source.cols(); ++c) {
            (*this)(r0 + r, c0 + c) = source(r, c);
        }
    }
}

matrix operator*(double k, const matrix& m) { return m * k; }

namespace {

/// In-place LU decomposition with partial pivoting; returns the permutation.
std::vector<std::size_t> lu_decompose(matrix& a) {
    BISTNA_EXPECTS(a.is_square(), "LU requires a square matrix");
    const std::size_t n = a.rows();
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t pivot = k;
        double best = std::abs(a(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            if (std::abs(a(r, k)) > best) {
                best = std::abs(a(r, k));
                pivot = r;
            }
        }
        if (best < 1e-300) {
            throw bistna::configuration_error("solve: matrix is singular to working precision");
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(a(k, c), a(pivot, c));
            }
            std::swap(perm[k], perm[pivot]);
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            a(r, k) /= a(k, k);
            const double factor = a(r, k);
            for (std::size_t c = k + 1; c < n; ++c) {
                a(r, c) -= factor * a(k, c);
            }
        }
    }
    return perm;
}

std::vector<double> lu_solve(const matrix& lu, const std::vector<std::size_t>& perm,
                             const std::vector<double>& b) {
    const std::size_t n = lu.rows();
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = b[perm[i]];
    }
    for (std::size_t i = 1; i < n; ++i) {
        double acc = x[i];
        for (std::size_t j = 0; j < i; ++j) {
            acc -= lu(i, j) * x[j];
        }
        x[i] = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        for (std::size_t j = ii + 1; j < n; ++j) {
            acc -= lu(ii, j) * x[j];
        }
        x[ii] = acc / lu(ii, ii);
    }
    return x;
}

} // namespace

std::vector<double> solve(matrix a, std::vector<double> b) {
    BISTNA_EXPECTS(a.rows() == b.size(), "solve: rhs length mismatch");
    const auto perm = lu_decompose(a);
    return lu_solve(a, perm, b);
}

matrix solve(matrix a, matrix b) {
    BISTNA_EXPECTS(a.rows() == b.rows(), "solve: rhs shape mismatch");
    const auto perm = lu_decompose(a);
    matrix x(b.rows(), b.cols());
    std::vector<double> column(b.rows());
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t r = 0; r < b.rows(); ++r) {
            column[r] = b(r, c);
        }
        const auto solution = lu_solve(a, perm, column);
        for (std::size_t r = 0; r < b.rows(); ++r) {
            x(r, c) = solution[r];
        }
    }
    return x;
}

std::ostream& operator<<(std::ostream& os, const matrix& m) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
        os << (r == 0 ? "[" : " ");
        for (std::size_t c = 0; c < m.cols(); ++c) {
            os << m(r, c) << (c + 1 == m.cols() ? "" : ", ");
        }
        os << (r + 1 == m.rows() ? "]" : ";\n");
    }
    return os;
}

} // namespace bistna::linalg
