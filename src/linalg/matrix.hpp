// Small dense real matrices.
//
// The DUT models are low-order continuous-time state spaces (order 2..6),
// so a simple row-major dynamic matrix with LU solve is all we need; no
// external linear-algebra dependency.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace bistna::linalg {

class matrix {
public:
    matrix() = default;

    /// rows x cols zero matrix.
    matrix(std::size_t rows, std::size_t cols);

    /// Build from nested initializer-like data; all rows must have equal width.
    static matrix from_rows(const std::vector<std::vector<double>>& rows);

    /// n x n identity.
    static matrix identity(std::size_t n);

    /// n x n zero matrix.
    static matrix zero(std::size_t n) { return matrix(n, n); }

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool is_square() const noexcept { return rows_ == cols_; }

    double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    matrix operator+(const matrix& other) const;
    matrix operator-(const matrix& other) const;
    matrix operator*(const matrix& other) const;
    matrix operator*(double k) const;
    matrix& operator+=(const matrix& other);
    matrix& operator*=(double k);

    /// Multiply by a vector; x.size() must equal cols().
    std::vector<double> apply(const std::vector<double>& x) const;

    matrix transposed() const;

    /// Maximum absolute row sum (induced infinity norm).
    double norm_inf() const noexcept;

    /// Extract the block [r0, r0+rows) x [c0, c0+cols).
    matrix block(std::size_t r0, std::size_t c0, std::size_t block_rows,
                 std::size_t block_cols) const;

    /// Paste `source` with its top-left corner at (r0, c0).
    void set_block(std::size_t r0, std::size_t c0, const matrix& source);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

matrix operator*(double k, const matrix& m);

/// Solve A x = b via partial-pivot LU; throws configuration_error if A is
/// singular to working precision.
std::vector<double> solve(matrix a, std::vector<double> b);

/// Solve A X = B for a matrix right-hand side.
matrix solve(matrix a, matrix b);

std::ostream& operator<<(std::ostream& os, const matrix& m);

} // namespace bistna::linalg
