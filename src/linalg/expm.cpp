#include "linalg/expm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bistna::linalg {

namespace {

// Pade-13 coefficients (Higham, "The scaling and squaring method for the
// matrix exponential revisited", 2005).
constexpr double pade13[] = {64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
                             1187353796428800.0,  129060195264000.0,   10559470521600.0,
                             670442572800.0,      33522128640.0,       1323241920.0,
                             40840800.0,          960960.0,            16380.0,
                             182.0,               1.0};

} // namespace

matrix expm(const matrix& a) {
    BISTNA_EXPECTS(a.is_square(), "expm requires a square matrix");
    const std::size_t n = a.rows();

    // Scale so the norm is below the Pade-13 threshold (theta_13 ~ 5.37).
    const double norm = a.norm_inf();
    int squarings = 0;
    if (norm > 5.37) {
        squarings = static_cast<int>(std::ceil(std::log2(norm / 5.37)));
    }
    matrix scaled = a * std::pow(2.0, -squarings);

    const matrix eye = matrix::identity(n);
    const matrix a2 = scaled * scaled;
    const matrix a4 = a2 * a2;
    const matrix a6 = a4 * a2;

    // U = A * (A6*(b13*A6 + b11*A4 + b9*A2) + b7*A6 + b5*A4 + b3*A2 + b1*I)
    matrix u_inner = a6 * pade13[13] + a4 * pade13[11] + a2 * pade13[9];
    u_inner = a6 * u_inner;
    u_inner += a6 * pade13[7] + a4 * pade13[5] + a2 * pade13[3] + eye * pade13[1];
    const matrix u = scaled * u_inner;

    // V = A6*(b12*A6 + b10*A4 + b8*A2) + b6*A6 + b4*A4 + b2*A2 + b0*I
    matrix v = a6 * pade13[12] + a4 * pade13[10] + a2 * pade13[8];
    v = a6 * v;
    v += a6 * pade13[6] + a4 * pade13[4] + a2 * pade13[2] + eye * pade13[0];

    // expm(scaled) = (V - U)^-1 (V + U), then square back.
    matrix result = solve(v - u, v + u);
    for (int s = 0; s < squarings; ++s) {
        result = result * result;
    }
    return result;
}

zoh_pair discretize_zoh(const matrix& a, const matrix& b, double ts) {
    BISTNA_EXPECTS(a.is_square(), "discretize_zoh: A must be square");
    BISTNA_EXPECTS(a.rows() == b.rows(), "discretize_zoh: B row count must match A");
    BISTNA_EXPECTS(ts > 0.0, "discretize_zoh: sample time must be positive");

    const std::size_t n = a.rows();
    const std::size_t m = b.cols();
    // Augmented matrix [A B; 0 0] * ts; its exponential's top blocks are
    // [Ad Bd] (Van Loan's method).
    matrix augmented(n + m, n + m);
    augmented.set_block(0, 0, a * ts);
    augmented.set_block(0, n, b * ts);
    const matrix phi = expm(augmented);
    return zoh_pair{phi.block(0, 0, n, n), phi.block(0, n, n, m)};
}

} // namespace bistna::linalg
