// Matrix exponential via scaling-and-squaring with Pade approximation.
//
// Used for *exact* zero-order-hold discretization of continuous-time DUT
// models: because the generator output is piecewise constant on the f_eva
// sample grid, [Ad Bd; 0 I] = expm([A B; 0 0] * Ts) reproduces the analog
// filter response sample-exactly (see DESIGN.md section 2).
#pragma once

#include "linalg/matrix.hpp"

namespace bistna::linalg {

/// e^A for a square matrix (Pade-13 scaling and squaring, Higham 2005 style
/// with a fixed degree and norm-based scaling).
matrix expm(const matrix& a);

/// Zero-order-hold discretization of x' = A x + B u at sample time ts:
/// returns (Ad, Bd) with Ad = e^{A ts}, Bd = integral_0^ts e^{A s} ds * B.
struct zoh_pair {
    matrix ad;
    matrix bd;
};
zoh_pair discretize_zoh(const matrix& a, const matrix& b, double ts);

} // namespace bistna::linalg
