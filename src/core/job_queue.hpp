// Asynchronous job queue: one thread pool shared by many concurrent
// measurement jobs, each consumed as a stream (extension).
//
// The sweep engine's batch entrypoints historically blocked until the whole
// batch finished, which is the wrong shape for the workloads the paper
// motivates -- a BIST cheap enough to run continuously should serve a host
// that wants results *as they complete*: a lot monitor updating yield
// mid-lot, a dictionary build reporting progress, a process-shard runner
// forwarding finished dice over the wire.  This module supplies the
// primitive those callers share:
//
//   * `job_queue` owns the worker threads.  Any number of jobs can be
//     submitted concurrently (from any thread); workers drain jobs in
//     submission order, so one pool serves many engines without
//     oversubscribing the machine.
//   * `job_handle<R>` is the caller's view of one submitted job: a
//     pull-based stream of completed items (`next_completed`), an optional
//     per-item completion callback, progress counters, cooperative
//     cancellation and worker-exception capture.
//
// The determinism contract of the synchronous paths is preserved exactly:
// a job's items are index-addressed slots whose values depend only on the
// item index (seeds are derived per index, never from scheduling), so the
// *set* of results is bit-identical at any thread count and any completion
// order -- streaming changes when a caller sees an item, never its value.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace bistna::core {

/// Mid-group progress reporter.  A group function that accepts a trailing
/// `const job_progress&` parameter can tick items as it computes them, so
/// `job_handle::completed_items()` moves *within* a group instead of
/// jumping by group_size when the group publishes -- a monitor polling a
/// 10k-die lot screened in one group no longer reads 0 until the very end.
/// Ticks are advisory (they never gate publication); group functions that
/// ignore the parameter keep the old group-granularity progress.
class job_progress {
public:
    job_progress() = default;
    explicit job_progress(std::atomic<std::uint64_t>* computed)
        : computed_(computed) {}

    /// Record `n` more items' worth of finished computation.
    void items_done(std::size_t n = 1) const noexcept;

private:
    std::atomic<std::uint64_t>* computed_ = nullptr;
};

/// Lifecycle of a job.  `running` covers the whole span from submission to
/// the last item being accounted for; the other three are terminal.
enum class job_state {
    running,
    succeeded, ///< every item completed
    cancelled, ///< cancel() (or queue destruction) skipped at least one item
    failed,    ///< a worker threw; the first exception is captured
};

/// Stable name for reports and logs.
const char* job_state_name(job_state state) noexcept;

namespace detail {

/// Typed state shared between a job's handle(s) and the worker closures:
/// the result slots, the completion stream and the terminal bookkeeping.
/// The queue itself never sees this type -- workers reach it only through
/// the type-erased task closure.
template <typename R>
struct job_channel {
    explicit job_channel(std::size_t item_count)
        : results(item_count), item_completed(item_count, 0) {}

    mutable std::mutex mutex;
    std::condition_variable cv;

    std::vector<R> results;             ///< slot per item, written once
    std::vector<char> item_completed;   ///< slot flags (avoids vector<bool> races)
    std::deque<std::size_t> stream;     ///< completed indices not yet pulled
    std::size_t completed_count = 0;    ///< items finished with a value
    std::size_t accounted = 0;          ///< completed + skipped + failed items
    job_state state = job_state::running;
    std::exception_ptr error;

    /// Checked by tasks before running (claimed-but-unstarted work is
    /// skipped); in-flight groups finish normally and still stream.
    std::atomic<bool> cancel_requested{false};

    /// Items ticked via job_progress, ahead of group publication.  Only
    /// ever incremented, so completed_items() -- the max of this and
    /// completed_count -- is monotonic whether or not the group function
    /// ticks.  On a failed/cancelled job the ticks of an unpublished group
    /// may overcount relative to completed(); exact per-item truth stays
    /// with the slots.
    std::atomic<std::uint64_t> computed{0};

    /// Optional per-item completion callback (runs on the completing
    /// worker thread, without locks, *before* the item becomes visible to
    /// the pull stream -- so on the success path a consumer never observes
    /// an item whose callback has not run).  Must be thread-safe across
    /// items.  A throwing callback fails the job (first exception
    /// captured, rest of the work drained, later callbacks of the group
    /// skipped) but never discards measured results: the group's items are
    /// still published to the stream and completed().
    std::function<void(std::size_t, const R&)> on_item;

    /// Optional post-publish notifier (see
    /// job_handle::set_published_callback).  Runs on the accounting worker
    /// thread AFTER the channel lock is released, so everything the event
    /// that triggered it made visible (new stream items, a terminal state
    /// flip) is observable from the callback or from any thread it wakes.
    /// Guarded by `mutex` for registration; copied out before invocation.
    std::function<void()> on_published;

    /// Publish items [first, first + group.size()): callback first, then
    /// slots + stream under the lock, finalizing the job if this accounts
    /// for the last item.
    void complete_items(std::size_t first, std::vector<R>&& group) {
        std::exception_ptr callback_error;
        if (on_item) {
            for (std::size_t l = 0; l < group.size(); ++l) {
                try {
                    on_item(first + l, group[l]);
                } catch (...) {
                    callback_error = std::current_exception();
                    cancel_requested.store(true, std::memory_order_relaxed);
                    break;
                }
            }
        }
        std::function<void()> published;
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (std::size_t l = 0; l < group.size(); ++l) {
                results[first + l] = std::move(group[l]);
                item_completed[first + l] = 1;
                stream.push_back(first + l);
            }
            completed_count += group.size();
            if (callback_error && !error) {
                error = std::move(callback_error);
            }
            account(group.size());
            published = on_published;
        }
        if (published) {
            published();
        }
    }

    /// Account `count` items that will never complete (cancel skip).
    void skip_items(std::size_t count) {
        std::function<void()> published;
        {
            std::lock_guard<std::mutex> lock(mutex);
            account(count);
            published = on_published;
        }
        if (published) {
            published();
        }
    }

    /// Account `count` items lost to a worker exception; the first
    /// exception wins, and the rest of the job is drained via the cancel
    /// flag (matching the synchronous engine's first-error semantics).
    void fail_items(std::size_t count, std::exception_ptr exception) {
        cancel_requested.store(true, std::memory_order_relaxed);
        std::function<void()> published;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (!error) {
                error = std::move(exception);
            }
            account(count);
            published = on_published;
        }
        if (published) {
            published();
        }
    }

private:
    /// Callers hold `mutex`.  Finalizes the terminal state once every item
    /// is accounted for and wakes every waiter (pullers see the stream
    /// drain; wait() sees the state flip).
    void account(std::size_t count) {
        accounted += count;
        if (accounted == results.size() && state == job_state::running) {
            state = error                             ? job_state::failed
                    : completed_count < results.size() ? job_state::cancelled
                                                       : job_state::succeeded;
        }
        cv.notify_all();
    }
};

/// Type-erased job record the queue's workers schedule from.  Tasks are
/// claimed in index order under the queue lock; the typed closure owns all
/// result bookkeeping.
struct job_record {
    std::size_t task_count = 0;
    std::size_t next_task = 0;                  ///< guarded by the queue mutex
    std::function<void(std::size_t)> run_task;  ///< must not throw
    std::function<void()> request_cancel;       ///< flips the channel's flag
    std::uint64_t enqueued_ns = 0;              ///< telemetry wait-time anchor
};

} // namespace detail

/// Caller's view of one submitted job.  Thin shared handle: copies refer
/// to the same job; all members are safe to call from any thread.  The
/// handle never blocks the job -- dropping every copy simply detaches the
/// caller (the queue still drains the work).
template <typename R>
class job_handle {
public:
    /// One item of the completion stream.
    struct streamed_item {
        std::size_t index = 0; ///< the item's slot in submission order
        R value{};
    };

    /// Per-item completion callback (see job_channel::on_item).
    using item_callback = std::function<void(std::size_t index, const R& value)>;

    job_handle() = default;

    explicit job_handle(std::shared_ptr<detail::job_channel<R>> channel)
        : channel_(std::move(channel)) {}

    bool valid() const noexcept { return channel_ != nullptr; }

    /// Items in the job (fixed at submission).
    std::size_t total_items() const {
        return channel().results.size();
    }

    /// Items finished so far: the max of published slots and mid-group
    /// job_progress ticks, so the value is monotonic and -- when the group
    /// function ticks -- moves while a group is still computing.
    std::size_t completed_items() const {
        auto& ch = channel();
        const std::uint64_t ticked =
            ch.computed.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(ch.mutex);
        return std::max(static_cast<std::size_t>(ticked), ch.completed_count);
    }

    job_state state() const {
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        return ch.state;
    }

    bool finished() const { return state() != job_state::running; }

    /// The first worker exception, if any (null while running or on a
    /// clean finish).
    std::exception_ptr error() const {
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        return ch.error;
    }

    /// Register a notifier that fires AFTER a publication becomes
    /// visible: new items reached the stream, or the job flipped to a
    /// terminal state (including cancel-skip and worker-failure
    /// accounting).  This is the signal an event-driven consumer sleeps
    /// on -- unlike the per-item on_item callback, which by contract runs
    /// BEFORE its item is pullable, a wake delivered from here never
    /// races ahead of the state it advertises.  Fires at least once per
    /// publication event; spurious extra calls are allowed.  Runs on
    /// worker threads without the channel lock, so it may probe this
    /// handle freely but must be cheap and must not throw.
    ///
    /// Fire-and-probe contract: only publications AFTER registration are
    /// covered -- register, then probe once for anything that landed
    /// earlier.
    void set_published_callback(std::function<void()> callback) {
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        ch.on_published = std::move(callback);
    }

    /// Request cooperative cancellation: tasks not yet started are
    /// skipped; items already in flight finish normally and still reach
    /// the stream.  Idempotent, safe from any thread (including an
    /// on_item callback).
    void cancel() noexcept {
        if (channel_) {
            channel_->cancel_requested.store(true, std::memory_order_relaxed);
        }
    }

    /// Block until the job reaches a terminal state (all items accounted
    /// for).  Does not consume the stream.
    void wait() const {
        auto& ch = channel();
        std::unique_lock<std::mutex> lock(ch.mutex);
        ch.cv.wait(lock, [&] { return ch.state != job_state::running; });
    }

    /// Pull the next completed item, blocking while the job is running and
    /// the stream is empty.  Returns nullopt once the job is terminal and
    /// every completed item has been pulled -- the stream of a cancelled
    /// or failed job simply ends early, after delivering exactly the items
    /// that did complete.  Items arrive in completion order; each is
    /// delivered to exactly one puller.
    std::optional<streamed_item> next_completed() const {
        auto& ch = channel();
        std::unique_lock<std::mutex> lock(ch.mutex);
        ch.cv.wait(lock, [&] { return !ch.stream.empty() || ch.state != job_state::running; });
        if (ch.stream.empty()) {
            return std::nullopt;
        }
        const std::size_t index = ch.stream.front();
        ch.stream.pop_front();
        return streamed_item{index, ch.results[index]};
    }

    /// Pull the next item in SUBMISSION-INDEX order, blocking until that
    /// item completes: call k delivers item k, however the scheduler
    /// interleaved the work.  This is what a consumer that must emit a
    /// deterministic sequence (a shard worker streaming frames to disk, a
    /// store-appending example) uses instead of next_completed -- the
    /// stream's byte order then no longer depends on completion order.
    /// Returns nullopt once every item was delivered, or -- on a cancelled
    /// or failed job -- at the first item that will never complete (an
    /// in-order consumer cannot skip a hole).  The cursor is local to this
    /// handle copy and independent of the next_completed stream; do not
    /// mix with the consuming results() && overload.
    std::optional<streamed_item> next_in_order() {
        auto& ch = channel();
        std::unique_lock<std::mutex> lock(ch.mutex);
        if (ordered_next_ >= ch.results.size()) {
            return std::nullopt;
        }
        ch.cv.wait(lock, [&] {
            return ch.item_completed[ordered_next_] || ch.state != job_state::running;
        });
        if (!ch.item_completed[ordered_next_]) {
            return std::nullopt;
        }
        const std::size_t index = ordered_next_++;
        return streamed_item{index, ch.results[index]};
    }

    /// Non-blocking next_in_order(): the cursor's item when it has already
    /// completed, nullopt otherwise.  A nullopt alone does not distinguish
    /// "not computed yet" from "will never complete" -- an event-driven
    /// consumer (the service daemon's session loop, which must never block
    /// on one client's job) combines it with finished(): once the job is
    /// terminal and try_next_in_order() still returns nullopt, the cursor
    /// sits on a hole and no further in-order item will ever arrive.
    std::optional<streamed_item> try_next_in_order() {
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        if (ordered_next_ >= ch.results.size() || !ch.item_completed[ordered_next_]) {
            return std::nullopt;
        }
        const std::size_t index = ordered_next_++;
        return streamed_item{index, ch.results[index]};
    }

    /// Items this handle's in-order cursor has already delivered.
    std::size_t in_order_delivered() const noexcept { return ordered_next_; }

    /// Wait, then return the full result vector in item order.  Rethrows
    /// the first worker exception of a failed job; throws
    /// configuration_error on a cancelled job (its slots have holes -- use
    /// completed() for the partial outcome).  This is what the synchronous
    /// engine wrappers are built on.
    std::vector<R> results() const& {
        wait();
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        throw_unless_succeeded(ch);
        return ch.results;
    }

    /// Consuming overload for a handle that dies with the call (the
    /// blocking wrappers' `submit(...).results()` shape): the result store
    /// is moved out instead of copied.  Any surviving copy of the handle
    /// sees a drained job afterwards (empty stream, empty completed()).
    std::vector<R> results() && {
        wait();
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        throw_unless_succeeded(ch);
        // The stream must drain with the store: a leftover index into the
        // moved-from vector would read out of bounds on a surviving copy.
        ch.stream.clear();
        return std::move(ch.results);
    }

    /// Wait, then return every item that completed, sorted by index --
    /// the whole job when it succeeded, the completed subset when it was
    /// cancelled or failed.  Never throws on cancellation; each returned
    /// item is bit-identical to the synchronous path's slot.
    std::vector<streamed_item> completed() const {
        wait();
        auto& ch = channel();
        std::lock_guard<std::mutex> lock(ch.mutex);
        std::vector<streamed_item> items;
        items.reserve(ch.completed_count);
        for (std::size_t i = 0; i < ch.results.size(); ++i) {
            if (ch.item_completed[i]) {
                items.push_back(streamed_item{i, ch.results[i]});
            }
        }
        return items;
    }

private:
    detail::job_channel<R>& channel() const {
        BISTNA_EXPECTS(channel_ != nullptr, "empty job_handle");
        return *channel_;
    }

    /// Callers hold the channel mutex.
    static void throw_unless_succeeded(detail::job_channel<R>& ch) {
        if (ch.state == job_state::failed) {
            std::rethrow_exception(ch.error);
        }
        if (ch.state == job_state::cancelled) {
            throw configuration_error(
                "job_queue: results() on a cancelled job (use completed())");
        }
    }

    std::shared_ptr<detail::job_channel<R>> channel_;
    /// next_in_order() cursor (handle-local: each copy walks its own).
    std::size_t ordered_next_ = 0;
};

/// RAII companion for a streaming consumer: cancels the job and waits for
/// its terminal state on scope exit.  A job's task closures reference
/// whatever the submitting engine owns, so a consumer whose loop can throw
/// (classifiers, observers) must pin this guard above the engine-using
/// scope -- otherwise stack unwinding destroys the engine while workers on
/// a *shared* queue are still running its closures.  No-op overhead when
/// the job already finished.
template <typename R>
class job_scope {
public:
    explicit job_scope(const job_handle<R>& handle) : handle_(handle) {}
    ~job_scope() {
        if (handle_.valid()) {
            handle_.cancel();
            handle_.wait();
        }
    }
    job_scope(const job_scope&) = delete;
    job_scope& operator=(const job_scope&) = delete;

private:
    job_handle<R> handle_;
};

/// How a pool's workers pick the next task when several jobs have
/// unclaimed work.  Scheduling only reorders *when* an item is computed,
/// never what it computes (seeds derive from item indices), so every
/// schedule yields bit-identical results.
enum class job_schedule {
    /// Drain jobs in submission order: all of job 0's tasks are claimed
    /// before job 1's first.  Lowest single-job latency -- the right shape
    /// for a batch tool that submits one lot and waits.
    fifo,
    /// Rotate one task at a time across every job with unclaimed work:
    /// N concurrent jobs each make continuous progress instead of queueing
    /// behind the earliest submission.  This is the fairness the screening
    /// service needs -- a million-die lot must not starve the two-die
    /// probe job submitted after it.
    round_robin,
};

/// One thread pool, many concurrent jobs.  Workers are spawned lazily on
/// the first submission and joined by the destructor; destroying the queue
/// cancels jobs still pending (their handles finish in state `cancelled`),
/// so no threads or work items ever leak.
class job_queue {
public:
    /// `threads` = 0 picks std::thread::hardware_concurrency().  Note that
    /// unlike the old inline batch loop, threads = 1 still runs work on
    /// one pool worker (the caller's thread must stay free to consume the
    /// stream) -- results are bit-identical either way.
    explicit job_queue(std::size_t threads = 0,
                       job_schedule schedule = job_schedule::fifo);
    ~job_queue();

    job_queue(const job_queue&) = delete;
    job_queue& operator=(const job_queue&) = delete;

    /// Worker count (the resolved value, never 0).
    std::size_t threads() const noexcept { return threads_; }

    /// The task-claim policy this pool was built with.
    job_schedule schedule() const noexcept { return schedule_; }

    /// Jobs submitted over the queue's lifetime.
    std::size_t jobs_submitted() const;
    /// Jobs with tasks not yet claimed by a worker (a job whose last task
    /// was claimed no longer counts, even while that task is running --
    /// track terminal state through its handle).
    std::size_t jobs_pending() const;

    /// Submit a job of `item_count` items evaluated `group_size` at a time:
    /// each task calls group_fn(first, count, out) to compute items
    /// [first, first + count) into out[0..count) (count <= group_size;
    /// only the final group is short).  group_fn runs concurrently on the
    /// pool's workers, so it must be safe to invoke for disjoint groups in
    /// parallel and must depend only on the item indices (that is what
    /// makes the job's results completion-order independent).  Everything
    /// the job needs must be owned by (or outlive) the closure.
    ///
    /// `on_published` -- if set -- is the post-publish notifier (see
    /// job_handle::set_published_callback); registering it here closes the
    /// fire-and-probe gap entirely, since it is installed before any task
    /// can run.
    template <typename R, typename GroupFn>
    job_handle<R> submit(std::size_t item_count, std::size_t group_size, GroupFn group_fn,
                         typename job_handle<R>::item_callback on_item = nullptr,
                         std::function<void()> on_published = nullptr) {
        BISTNA_EXPECTS(item_count > 0, "job must contain at least one item");
        const std::size_t group = std::max<std::size_t>(1, group_size);

        auto channel = std::make_shared<detail::job_channel<R>>(item_count);
        channel->on_item = std::move(on_item);
        channel->on_published = std::move(on_published);

        auto record = std::make_shared<detail::job_record>();
        record->task_count = (item_count + group - 1) / group;
        record->request_cancel = [channel] {
            channel->cancel_requested.store(true, std::memory_order_relaxed);
        };
        record->run_task = [channel, group_fn = std::move(group_fn), item_count,
                            group](std::size_t task) {
            const std::size_t first = task * group;
            const std::size_t count = std::min(group, item_count - first);
            if (channel->cancel_requested.load(std::memory_order_relaxed)) {
                channel->skip_items(count);
                return;
            }
            try {
                std::vector<R> out(count);
                if constexpr (std::is_invocable_v<GroupFn&, std::size_t,
                                                  std::size_t, R*,
                                                  const job_progress&>) {
                    group_fn(first, count, out.data(),
                             job_progress(&channel->computed));
                } else {
                    group_fn(first, count, out.data());
                }
                channel->complete_items(first, std::move(out));
            } catch (...) {
                channel->fail_items(count, std::current_exception());
            }
        };

        enqueue(std::move(record));
        return job_handle<R>(std::move(channel));
    }

private:
    void enqueue(std::shared_ptr<detail::job_record> record);
    void worker_loop(std::size_t worker_index);

    const std::size_t threads_;
    const job_schedule schedule_;
    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::deque<std::shared_ptr<detail::job_record>> jobs_; ///< with unclaimed tasks
    std::vector<std::thread> workers_;                     ///< spawned lazily
    std::size_t submitted_ = 0;
    std::size_t rr_cursor_ = 0; ///< round_robin: next job index to claim from
    bool stopping_ = false;
};

} // namespace bistna::core
