#include "core/stimulus_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace bistna::core {

std::size_t stimulus_key_hash::operator()(const stimulus_key& key) const noexcept {
    std::uint64_t hash = fnv1a_offset_basis;
    for (std::uint64_t word :
         {key.design_fingerprint, key.amplitude_bits, key.periods, key.settle_periods}) {
        fnv1a_mix(hash, word);
    }
    return static_cast<std::size_t>(hash);
}

stimulus_cache::stimulus_cache(std::size_t max_entries) : max_entries_(max_entries) {
    BISTNA_EXPECTS(max_entries > 0, "stimulus cache needs room for at least one record");
}

void stimulus_cache::evict_for_insert_locked() {
    while (entries_.size() >= max_entries_ && !insertion_order_.empty()) {
        // Oldest-first: sweep and screening access patterns reuse a key
        // heavily right after inserting it, so the oldest entry is the one
        // least likely to be touched again.  Callers already waiting on the
        // evicted future keep their own reference; only the cache forgets.
        entries_.erase(insertion_order_.front());
        insertion_order_.pop_front();
        evictions_.add();
    }
}

stimulus_cache::record_ptr stimulus_cache::get_or_render(const stimulus_key& key,
                                                         const render_fn& render) {
    BISTNA_EXPECTS(render != nullptr, "stimulus cache requires a render function");

    std::promise<record_ptr> promise;
    std::shared_future<record_ptr> pending;
    std::uint64_t own_id = 0;
    bool is_renderer = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.add();
            pending = it->second.future;
        } else {
            misses_.add();
            evict_for_insert_locked();
            own_id = next_entry_id_++;
            entries_.emplace(key, entry{promise.get_future().share(), own_id});
            insertion_order_.push_back(key);
            is_renderer = true;
        }
    }

    if (!is_renderer) {
        // Waits (outside the lock) for an in-flight render of the same key;
        // rethrows if that render failed -- its owner forgot the entry, so a
        // later call can retry.
        return pending.get();
    }

    try {
        record_ptr rendered = std::make_shared<const record>(render());
        promise.set_value(rendered);
        return rendered;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        // Erase only our own entry: it may already have been evicted and the
        // key re-inserted by a newer render.
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second.id == own_id) {
            entries_.erase(it);
            const auto pos =
                std::find(insertion_order_.begin(), insertion_order_.end(), key);
            if (pos != insertion_order_.end()) {
                insertion_order_.erase(pos);
            }
        }
        throw;
    }
}

stimulus_cache_stats stimulus_cache::stats() const {
    stimulus_cache_stats snapshot;
    snapshot.hits = hits_.value();
    snapshot.misses = misses_.value();
    snapshot.evictions = evictions_.value();
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.entries = entries_.size();
    return snapshot;
}

void stimulus_cache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertion_order_.clear();
}

} // namespace bistna::core
