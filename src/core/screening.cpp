#include "core/screening.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "core/sweep_engine.hpp"

namespace bistna::core {

spec_mask spec_mask::paper_lowpass() {
    spec_mask mask;
    mask.limits = {
        {200.0, -0.6, 0.4, "passband flatness"},
        {1000.0, -4.0, -2.2, "cutoff depth"},
        {4000.0, -26.5, -21.5, "stopband slope"},
    };
    return mask;
}

bool stimulus_self_test(const spec_mask& mask, double stimulus_volts) {
    return std::abs(stimulus_volts - mask.stimulus_volts_nominal) <=
           mask.stimulus_tolerance * mask.stimulus_volts_nominal;
}

limit_result evaluate_limit(const gain_limit& limit, const frequency_point& point,
                            std::size_t limit_index) {
    limit_result result;
    result.limit = limit;
    result.limit_index = limit_index;
    result.measured_db = point.gain_db;
    result.measured_bounds_db = point.gain_db_bounds;
    result.phase_deg = point.phase_deg;
    result.phase_deg_bounds = point.phase_deg_bounds;
    result.margin_db = std::min(point.gain_db_bounds.lo() - limit.gain_db_min,
                                limit.gain_db_max - point.gain_db_bounds.hi());
    result.passed = result.margin_db >= 0.0;
    return result;
}

screening_report screen(network_analyzer& analyzer, const spec_mask& mask,
                        const screening_options& options) {
    BISTNA_EXPECTS(!mask.limits.empty(), "spec mask has no limits");
    screening_report report;

    // Self-test: the calibration path must read the programmed stimulus.
    const auto& calibration = analyzer.calibrate();
    report.stimulus_volts = calibration.amplitude.volts;
    report.stimulus_phase_deg = rad_to_deg(calibration.phase.radians);
    report.offset_rate = analyzer.evaluator().extractor().offset_rate_ch1();
    report.self_test_passed = stimulus_self_test(mask, calibration.amplitude.volts);
    if (!report.self_test_passed && !options.continue_after_self_test_failure) {
        report.passed = false;
        return report; // BIST circuitry itself is broken; don't trust the DUT data
    }

    report.passed = report.self_test_passed;
    for (std::size_t i = 0; i < mask.limits.size(); ++i) {
        const auto& limit = mask.limits[i];
        const auto result =
            evaluate_limit(limit, analyzer.measure_point(hertz{limit.f_hz}), i);
        report.passed = report.passed && result.passed;
        report.limits.push_back(result);
    }

    if (options.measure_distortion) {
        const double f_hz =
            options.distortion_f_hz > 0.0 ? options.distortion_f_hz : mask.limits.front().f_hz;
        const auto distortion =
            analyzer.measure_distortion(hertz{f_hz}, options.distortion_max_harmonic);
        report.distortion_measured = true;
        report.thd_db = distortion.thd_db;
        report.thd_f_hz = f_hz;
    }
    return report;
}

lot_result aggregate_lot(const std::vector<screening_report>& reports) {
    lot_result lot;
    lot.dice = reports.size();

    std::size_t limit_count = 0;
    for (const auto& report : reports) {
        limit_count = std::max(limit_count, report.limits.size());
    }
    std::vector<std::vector<double>> gains(limit_count);
    for (const auto& report : reports) {
        lot.passed += report.passed ? 1 : 0;
        for (std::size_t i = 0; i < report.limits.size(); ++i) {
            gains[i].push_back(report.limits[i].measured_db);
        }
    }
    for (auto& samples : gains) {
        if (!samples.empty()) {
            lot.gain_distributions.push_back(summarize(std::move(samples)));
        }
    }
    return lot;
}

lot_result screen_lot(const board_factory& factory, const analyzer_settings& settings,
                      const spec_mask& mask, std::size_t dice, std::uint64_t first_seed,
                      const screening_options& options) {
    BISTNA_EXPECTS(dice > 0, "lot must contain at least one die");
    std::vector<screening_report> reports;
    reports.reserve(dice);
    for (std::size_t die = 0; die < dice; ++die) {
        demonstrator_board board = factory(first_seed + die);
        network_analyzer analyzer(board, settings);
        reports.push_back(screen(analyzer, mask, options));
    }
    return aggregate_lot(reports);
}

lot_result screen_lot_parallel(const board_factory& factory,
                               const analyzer_settings& settings, const spec_mask& mask,
                               std::size_t dice, std::uint64_t first_seed,
                               std::size_t threads, std::size_t batch_lanes,
                               const screening_options& options,
                               const die_report_hook& on_report) {
    sweep_engine_options engine_options;
    engine_options.threads = threads;
    engine_options.batch_lanes = batch_lanes;
    sweep_engine engine(factory, settings, engine_options);
    if (!on_report) {
        return aggregate_lot(engine.screen_batch(mask, dice, first_seed, options));
    }

    // Streaming consumption: pull reports as workers complete them and
    // emit the hook for the in-order prefix, so the observer sees dice in
    // die order *while the lot is still running* (a die is held back only
    // as long as a lower-numbered one is in flight).
    auto handle = engine.submit_screening(mask, dice, first_seed, options);
    // A throwing hook must not unwind the engine out from under the job.
    job_scope<screening_report> guard(handle);
    std::vector<screening_report> reports(dice);
    std::vector<char> completed(dice, 0);
    std::size_t next_to_emit = 0;
    while (auto item = handle.next_completed()) {
        reports[item->index] = std::move(item->value);
        completed[item->index] = 1;
        while (next_to_emit < dice && completed[next_to_emit]) {
            on_report(next_to_emit, reports[next_to_emit]);
            ++next_to_emit;
        }
    }
    if (auto error = handle.error()) {
        std::rethrow_exception(error);
    }
    // A cancelled lot (e.g. a shared queue torn down mid-flight) must not
    // aggregate never-measured dice as real failures.
    BISTNA_EXPECTS(handle.state() == job_state::succeeded,
                   "screening lot was cancelled before every die completed");
    return aggregate_lot(reports);
}

namespace {

/// Columns per serialized limit (see screening_reports_to_csv's header).
constexpr std::size_t columns_per_limit = 11;
constexpr std::size_t fixed_columns = 10;

} // namespace

csv_document screening_reports_to_csv(const std::vector<screening_report>& reports,
                                      std::uint64_t first_die) {
    std::size_t max_limits = 0;
    for (const auto& report : reports) {
        max_limits = std::max(max_limits, report.limits.size());
    }

    csv_document doc;
    doc.header = {"die",         "passed",       "self_test_passed",
                  "stimulus_volts", "stimulus_phase_deg", "offset_rate",
                  "distortion_measured", "thd_db", "thd_f_hz", "limit_count"};
    for (std::size_t j = 0; j < max_limits; ++j) {
        const std::string p = "l" + std::to_string(j) + "_";
        for (const char* column :
             {"f_hz", "gain_db_min", "gain_db_max", "gain_db", "gain_lo_db", "gain_hi_db",
              "phase_deg", "phase_lo_deg", "phase_hi_deg", "margin_db", "passed"}) {
            doc.header.push_back(p + column);
        }
    }

    for (std::size_t die = 0; die < reports.size(); ++die) {
        const auto& report = reports[die];
        std::vector<double> row;
        row.reserve(fixed_columns + max_limits * columns_per_limit);
        row.push_back(static_cast<double>(first_die + die));
        row.push_back(report.passed ? 1.0 : 0.0);
        row.push_back(report.self_test_passed ? 1.0 : 0.0);
        row.push_back(report.stimulus_volts);
        row.push_back(report.stimulus_phase_deg);
        row.push_back(report.offset_rate);
        row.push_back(report.distortion_measured ? 1.0 : 0.0);
        row.push_back(report.thd_db);
        row.push_back(report.thd_f_hz);
        row.push_back(static_cast<double>(report.limits.size()));
        for (std::size_t j = 0; j < max_limits; ++j) {
            if (j >= report.limits.size()) {
                row.insert(row.end(), columns_per_limit, 0.0);
                continue;
            }
            const auto& result = report.limits[j];
            row.push_back(result.limit.f_hz);
            row.push_back(result.limit.gain_db_min);
            row.push_back(result.limit.gain_db_max);
            row.push_back(result.measured_db);
            row.push_back(result.measured_bounds_db.lo());
            row.push_back(result.measured_bounds_db.hi());
            row.push_back(result.phase_deg);
            row.push_back(result.phase_deg_bounds.lo());
            row.push_back(result.phase_deg_bounds.hi());
            row.push_back(result.margin_db);
            row.push_back(result.passed ? 1.0 : 0.0);
        }
        doc.rows.push_back(std::move(row));
    }
    return doc;
}

std::vector<screening_report>
screening_reports_from_csv(const csv_document& doc, const spec_mask* mask,
                           std::vector<std::uint64_t>* die_ids) {
    BISTNA_EXPECTS(doc.header.size() >= fixed_columns &&
                       (doc.header.size() - fixed_columns) % columns_per_limit == 0,
                   "malformed screening-report CSV header");
    std::vector<screening_report> reports;
    reports.reserve(doc.rows.size());
    if (die_ids != nullptr) {
        die_ids->clear();
        die_ids->reserve(doc.rows.size());
    }
    for (const auto& row : doc.rows) {
        BISTNA_EXPECTS(row.size() == doc.header.size(),
                       "screening-report CSV row width mismatch");
        if (die_ids != nullptr) {
            BISTNA_EXPECTS(row[0] >= 0.0 && row[0] == std::floor(row[0]),
                           "screening-report CSV die id out of range");
            die_ids->push_back(static_cast<std::uint64_t>(row[0]));
        }
        screening_report report;
        report.passed = row[1] != 0.0;
        report.self_test_passed = row[2] != 0.0;
        report.stimulus_volts = row[3];
        report.stimulus_phase_deg = row[4];
        report.offset_rate = row[5];
        report.distortion_measured = row[6] != 0.0;
        report.thd_db = row[7];
        report.thd_f_hz = row[8];
        // Shard CSVs arrive from other machines: validate the count cell
        // before casting (a negative or huge value must fail cleanly, not
        // hit UB or wrap the size_t multiply past the bounds check).
        const double limit_cell = row[9];
        const auto max_limits = (row.size() - fixed_columns) / columns_per_limit;
        BISTNA_EXPECTS(limit_cell >= 0.0 &&
                           limit_cell == std::floor(limit_cell) &&
                           limit_cell <= static_cast<double>(max_limits),
                       "screening-report CSV limit count out of range");
        const auto limit_count = static_cast<std::size_t>(limit_cell);
        for (std::size_t j = 0; j < limit_count; ++j) {
            const double* cell = row.data() + fixed_columns + j * columns_per_limit;
            limit_result result;
            result.limit.f_hz = cell[0];
            result.limit.gain_db_min = cell[1];
            result.limit.gain_db_max = cell[2];
            if (mask != nullptr && j < mask->limits.size()) {
                result.limit.name = mask->limits[j].name;
            }
            result.limit_index = j;
            result.measured_db = cell[3];
            result.measured_bounds_db = interval(cell[4], cell[5]);
            result.phase_deg = cell[6];
            result.phase_deg_bounds = interval(cell[7], cell[8]);
            result.margin_db = cell[9];
            result.passed = cell[10] != 0.0;
            report.limits.push_back(result);
        }
        reports.push_back(std::move(report));
    }
    return reports;
}

} // namespace bistna::core
