#include "core/screening.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/sweep_engine.hpp"

namespace bistna::core {

spec_mask spec_mask::paper_lowpass() {
    spec_mask mask;
    mask.limits = {
        {200.0, -0.6, 0.4, "passband flatness"},
        {1000.0, -4.0, -2.2, "cutoff depth"},
        {4000.0, -26.5, -21.5, "stopband slope"},
    };
    return mask;
}

bool stimulus_self_test(const spec_mask& mask, double stimulus_volts) {
    return std::abs(stimulus_volts - mask.stimulus_volts_nominal) <=
           mask.stimulus_tolerance * mask.stimulus_volts_nominal;
}

limit_result evaluate_limit(const gain_limit& limit, const frequency_point& point) {
    limit_result result;
    result.limit = limit;
    result.measured_db = point.gain_db;
    result.measured_bounds_db = point.gain_db_bounds;
    result.passed = point.gain_db_bounds.lo() >= limit.gain_db_min &&
                    point.gain_db_bounds.hi() <= limit.gain_db_max;
    return result;
}

screening_report screen(network_analyzer& analyzer, const spec_mask& mask) {
    BISTNA_EXPECTS(!mask.limits.empty(), "spec mask has no limits");
    screening_report report;

    // Self-test: the calibration path must read the programmed stimulus.
    const auto& calibration = analyzer.calibrate();
    report.stimulus_volts = calibration.amplitude.volts;
    report.self_test_passed = stimulus_self_test(mask, calibration.amplitude.volts);
    if (!report.self_test_passed) {
        report.passed = false;
        return report; // BIST circuitry itself is broken; don't trust the DUT data
    }

    report.passed = true;
    for (const auto& limit : mask.limits) {
        const auto result = evaluate_limit(limit, analyzer.measure_point(hertz{limit.f_hz}));
        report.passed = report.passed && result.passed;
        report.limits.push_back(result);
    }
    return report;
}

lot_result aggregate_lot(const std::vector<screening_report>& reports) {
    lot_result lot;
    lot.dice = reports.size();

    std::size_t limit_count = 0;
    for (const auto& report : reports) {
        limit_count = std::max(limit_count, report.limits.size());
    }
    std::vector<std::vector<double>> gains(limit_count);
    for (const auto& report : reports) {
        lot.passed += report.passed ? 1 : 0;
        for (std::size_t i = 0; i < report.limits.size(); ++i) {
            gains[i].push_back(report.limits[i].measured_db);
        }
    }
    for (auto& samples : gains) {
        if (!samples.empty()) {
            lot.gain_distributions.push_back(summarize(std::move(samples)));
        }
    }
    return lot;
}

lot_result screen_lot(const board_factory& factory, const analyzer_settings& settings,
                      const spec_mask& mask, std::size_t dice, std::uint64_t first_seed) {
    BISTNA_EXPECTS(dice > 0, "lot must contain at least one die");
    std::vector<screening_report> reports;
    reports.reserve(dice);
    for (std::size_t die = 0; die < dice; ++die) {
        demonstrator_board board = factory(first_seed + die);
        network_analyzer analyzer(board, settings);
        reports.push_back(screen(analyzer, mask));
    }
    return aggregate_lot(reports);
}

lot_result screen_lot_parallel(const board_factory& factory,
                               const analyzer_settings& settings, const spec_mask& mask,
                               std::size_t dice, std::uint64_t first_seed,
                               std::size_t threads, std::size_t batch_lanes) {
    sweep_engine_options options;
    options.threads = threads;
    options.batch_lanes = batch_lanes;
    sweep_engine engine(factory, settings, options);
    return engine.screen_lot(mask, dice, first_seed);
}

} // namespace bistna::core
