#include "core/sweep.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bistna::core {

std::vector<hertz> log_spaced(hertz lo, hertz hi, std::size_t points) {
    BISTNA_EXPECTS(lo.value > 0.0 && hi.value > lo.value, "invalid log sweep range");
    BISTNA_EXPECTS(points >= 2, "sweep needs at least two points");
    std::vector<hertz> out;
    out.reserve(points);
    const double ratio = std::log(hi.value / lo.value);
    for (std::size_t i = 0; i < points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back(hertz{lo.value * std::exp(ratio * t)});
    }
    return out;
}

std::vector<hertz> linear_spaced(hertz lo, hertz hi, std::size_t points) {
    BISTNA_EXPECTS(hi.value > lo.value, "invalid linear sweep range");
    BISTNA_EXPECTS(points >= 2, "sweep needs at least two points");
    std::vector<hertz> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back(hertz{lo.value + (hi.value - lo.value) * t});
    }
    return out;
}

} // namespace bistna::core
