#include "core/sweep_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <span>
#include <thread>
#include <utility>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dut/state_space.hpp"
#include "eval/acquire_plan.hpp"
#include "eval/batch_evaluator.hpp"
#include "telemetry/span.hpp"

namespace bistna::core {

namespace {

/// The worker's render/measure scratch: one arena per thread, reset at the
/// start of every work item, so a steady-state lot loop allocates nothing
/// after the first item per worker reaches peak size.
arena& worker_arena() {
    thread_local arena scratch;
    return scratch;
}

} // namespace

std::uint64_t sweep_item_seed(std::uint64_t base_seed, std::size_t index) noexcept {
    // The item's position in the seed stream is just a stream id.
    return derive_stream_seed(base_seed, static_cast<std::uint64_t>(index));
}

sweep_engine::sweep_engine(board_factory factory, analyzer_settings settings,
                           sweep_engine_options options)
    : factory_(std::move(factory)), settings_(settings), options_(std::move(options)) {
    BISTNA_EXPECTS(factory_ != nullptr, "sweep engine requires a board factory");
    if (options_.autotune) {
        run_autotune(); // may rewrite options_.threads / options_.batch_lanes
    }
    demod_tables_ = std::make_shared<eval::demod_table_cache>();
    calibration_share_ = std::make_shared<eval::calibration_share>();
    queue_ = options_.queue ? options_.queue
                            : std::make_shared<job_queue>(options_.threads);
    if (options_.share_stimulus) {
        // A screening batch holds threads x batch_lanes dice in flight at
        // once; keep the FIFO large enough that no group's records are
        // evicted mid-screen.
        const std::size_t in_flight =
            resolved_threads() * std::max<std::size_t>(1, options_.batch_lanes);
        stimulus_cache_ = std::make_shared<stimulus_cache>(
            std::max(options_.stimulus_cache_entries, in_flight));
    }
}

demonstrator_board sweep_engine::make_board(std::uint64_t seed) const {
    demonstrator_board board = factory_(seed);
    if (stimulus_cache_) {
        board.set_stimulus_cache(stimulus_cache_);
    }
    return board;
}

stimulus_cache_stats sweep_engine::stimulus_stats() const {
    return stimulus_cache_ ? stimulus_cache_->stats() : stimulus_cache_stats{};
}

sweep_stats sweep_engine::stats() const {
    sweep_stats stats;
    stats.threads = resolved_threads();
    stats.batch_lanes = std::max<std::size_t>(1, options_.batch_lanes);
    stats.pipeline = options_.pipeline;
    stats.autotuned = autotuned_;
    stats.autotune_seconds = autotune_seconds_;
    stats.autotune_candidates = autotune_candidates_;
    stats.stimulus = stimulus_stats();
    stats.calibration_snapshots = calibration_share_ ? calibration_share_->entries() : 0;
    return stats;
}

void sweep_engine::run_autotune() {
    const auto start = std::chrono::steady_clock::now();

    // Candidate grid.  A shared queue's thread count is not ours to change,
    // so only the lane count is tuned then.
    std::vector<std::size_t> thread_candidates;
    if (options_.queue) {
        thread_candidates.push_back(options_.queue->threads());
    } else {
        const std::size_t hw =
            std::max<std::size_t>(1, std::thread::hardware_concurrency());
        thread_candidates.push_back(hw);
        if (hw / 2 >= 1 && hw / 2 != hw) {
            thread_candidates.push_back(hw / 2);
        }
    }
    const std::size_t lane_candidates[] = {4, 8, 16};

    // The probe workload: a miniature screening lot (short records, short
    // calibration, a mask every die passes) -- enough render + measure work
    // per die to expose the render/acquire throughput ratio the real lot
    // will see, at a negligible fraction of its cost.
    analyzer_settings probe_settings = settings_;
    probe_settings.periods = 16;
    probe_settings.settle_periods = 4;
    probe_settings.distortion_periods = 32;
    probe_settings.evaluator.calibration_periods = 64;
    spec_mask probe_mask;
    probe_mask.limits.push_back(gain_limit{1000.0, -1e9, 1e9, "autotune-probe"});
    probe_mask.stimulus_tolerance = 1e9; // every die passes the self-test

    autotune_candidate best{};
    for (std::size_t threads : thread_candidates) {
        for (std::size_t lanes : lane_candidates) {
            sweep_engine_options probe_options = options_;
            probe_options.autotune = false;
            probe_options.threads = threads;
            probe_options.batch_lanes = lanes;
            sweep_engine probe(factory_, probe_settings, probe_options);
            const std::size_t dice = 2 * probe.resolved_threads() * lanes;
            (void)probe.screen_batch(probe_mask, lanes, 1); // warm-up: pools + caches
            const auto t0 = std::chrono::steady_clock::now();
            (void)probe.screen_batch(probe_mask, dice, 1);
            autotune_candidate candidate;
            candidate.threads = probe.resolved_threads();
            candidate.batch_lanes = lanes;
            candidate.seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            candidate.dice_per_second =
                candidate.seconds > 0.0 ? static_cast<double>(dice) / candidate.seconds
                                        : 0.0;
            if (candidate.dice_per_second > best.dice_per_second) {
                best = candidate;
            }
            autotune_candidates_.push_back(candidate);
        }
    }

    if (best.batch_lanes != 0) {
        if (!options_.queue) {
            options_.threads = best.threads;
        }
        options_.batch_lanes = best.batch_lanes;
        autotuned_ = true;
    }
    autotune_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::size_t sweep_engine::resolved_threads() const noexcept {
    return queue_->threads();
}

// --- Bode sessions ---------------------------------------------------------

namespace {

/// Job-lifetime state of a submitted Bode batch, shared by every task
/// closure (the handle may outlive the submitting frame).
struct bode_job {
    std::vector<hertz> frequencies;
    std::uint64_t board_seed = 0;
    std::optional<stimulus_calibration> calibration;
};

} // namespace

frequency_point sweep_engine::bode_point(hertz f, std::uint64_t board_seed,
                                         const std::optional<stimulus_calibration>& calibration,
                                         std::size_t index) {
    demonstrator_board board = make_board(board_seed);
    analyzer_settings point_settings = settings_;
    point_settings.evaluator.seed = sweep_item_seed(options_.base_seed, index + 1);
    network_analyzer analyzer(board, point_settings);
    if (calibration) {
        analyzer.set_calibration(*calibration);
    }
    return analyzer.measure_point(f);
}

void sweep_engine::bode_group(const std::vector<hertz>& frequencies,
                              std::uint64_t board_seed,
                              const stimulus_calibration& calibration, std::size_t first,
                              std::size_t count, frequency_point* out) {
    // Lockstep lanes: a group of points renders its records (scalar,
    // cache-shared) and acquires them through one SoA modulator bank.
    // Per-point seeds and arithmetic match the scalar path exactly.
    std::vector<demonstrator_board> boards;
    boards.reserve(count);
    std::vector<eval::evaluator_config> configs(count, settings_.evaluator);
    std::vector<std::vector<double>> records(count);
    std::vector<std::span<const double>> spans(count);
    {
        telemetry::trace_span render_span("engine.render");
        render_span.arg("lanes", static_cast<double>(count));
        for (std::size_t l = 0; l < count; ++l) {
            boards.push_back(make_board(board_seed));
            configs[l].seed = sweep_item_seed(options_.base_seed, first + l + 1);
            const auto tb = sim::timebase::for_wave_frequency(frequencies[first + l]);
            records[l] = boards[l].render(tb, settings_.periods, signal_path::through_dut,
                                          settings_.settle_periods);
            spans[l] = records[l];
        }
    }
    eval::batch_evaluator evaluators(std::move(configs));
    if (options_.pipeline == sweep_pipeline::lane_major) {
        arena& scratch = worker_arena();
        scratch.reset();
        evaluators.set_shared_resources(demod_tables_.get(), &scratch,
                                        calibration_share_.get());
    }
    telemetry::trace_span evaluate_span("engine.evaluate");
    evaluate_span.arg("lanes", static_cast<double>(count));
    const auto outputs = evaluators.measure_harmonic(spans, 1, settings_.periods);
    for (std::size_t l = 0; l < count; ++l) {
        out[l] = assemble_frequency_point(frequencies[first + l], calibration, outputs[l],
                                          settings_.hold_compensation, boards[l].dut());
    }
}

job_handle<frequency_point>
sweep_engine::submit_bode(std::vector<hertz> frequencies, std::uint64_t board_seed,
                          job_handle<frequency_point>::item_callback on_point) {
    BISTNA_EXPECTS(!frequencies.empty(), "sweep requires at least one frequency");

    // One-time calibration, shared by every point.  The system is
    // clock-normalized, so this is exactly the paper's single calibration;
    // performing it with the batch's base seed keeps it independent of the
    // per-point seeds and of scheduling.  It runs here, on the submitting
    // thread, so every streamed point is a pure per-index function.
    std::optional<stimulus_calibration> shared_calibration;
    if (options_.share_calibration && !settings_.recalibrate_per_point) {
        demonstrator_board board = make_board(board_seed);
        analyzer_settings calibration_settings = settings_;
        calibration_settings.evaluator.seed = sweep_item_seed(options_.base_seed, 0);
        network_analyzer analyzer(board, calibration_settings);
        shared_calibration = analyzer.calibrate();
    }

    const std::size_t lanes = std::max<std::size_t>(1, options_.batch_lanes);
    // Lockstep lanes apply only with a shared calibration
    // (recalibrate_per_point falls back to the scalar path).
    const bool lockstep = lanes > 1 && shared_calibration.has_value();
    auto job = std::make_shared<const bode_job>(
        bode_job{std::move(frequencies), board_seed, std::move(shared_calibration)});
    return queue_->submit<frequency_point>(
        job->frequencies.size(), lockstep ? lanes : 1,
        [this, job, lockstep](std::size_t first, std::size_t count, frequency_point* out,
                              const job_progress& progress) {
            if (lockstep) {
                bode_group(job->frequencies, job->board_seed, *job->calibration, first,
                           count, out);
                progress.items_done(count);
                return;
            }
            for (std::size_t l = 0; l < count; ++l) {
                out[l] = bode_point(job->frequencies[first + l], job->board_seed,
                                    job->calibration, first + l);
                progress.items_done();
            }
        },
        std::move(on_point));
}

sweep_report sweep_engine::run(const std::vector<hertz>& frequencies,
                               std::uint64_t board_seed) {
    const auto start = std::chrono::steady_clock::now();
    auto handle = submit_bode(frequencies, board_seed);

    sweep_report report;
    report.points = std::move(handle).results();
    report.threads_used = resolved_threads();
    report.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::vector<double> gain_errors;
    gain_errors.reserve(report.points.size());
    for (const auto& point : report.points) {
        const double gain_error = std::abs(point.gain_db - point.ideal_gain_db);
        const double phase_error = std::abs(point.phase_deg - point.ideal_phase_deg);
        gain_errors.push_back(gain_error);
        report.worst_gain_error_db = std::max(report.worst_gain_error_db, gain_error);
        report.worst_phase_error_deg = std::max(report.worst_phase_error_deg, phase_error);
        report.max_gain_bound_width_db =
            std::max(report.max_gain_bound_width_db, point.gain_db_bounds.width());
        if (!point.gain_db_bounds.contains(point.ideal_gain_db)) {
            ++report.gain_bound_violations;
        }
    }
    report.gain_error_db_summary = summarize(std::move(gain_errors));
    return report;
}

// --- Screening sessions ----------------------------------------------------

namespace {

/// Job-lifetime state of a submitted screening lot.
struct screening_job {
    spec_mask mask;
    screening_options screening;
    std::uint64_t first_seed = 0;
};

} // namespace

job_handle<screening_report>
sweep_engine::submit_screening(const spec_mask& mask, std::size_t dice,
                               std::uint64_t first_seed, const screening_options& screening,
                               job_handle<screening_report>::item_callback on_report,
                               std::function<void()> on_published) {
    BISTNA_EXPECTS(dice > 0, "batch must contain at least one die");
    BISTNA_EXPECTS(!mask.limits.empty(), "spec mask has no limits");

    auto job = std::make_shared<const screening_job>(
        screening_job{mask, screening, first_seed});
    const std::size_t lanes = std::max<std::size_t>(1, options_.batch_lanes);
    if (lanes > 1) {
        // Lockstep lanes: each task screens a contiguous group of dice
        // through one SoA modulator bank (threads x lanes dice in flight).
        return queue_->submit<screening_report>(
            dice, lanes,
            [this, job](std::size_t first, std::size_t count, screening_report* out,
                        const job_progress& progress) {
                screen_group(job->mask, job->screening, job->first_seed + first, count, out,
                             progress);
            },
            std::move(on_report), std::move(on_published));
    }
    return queue_->submit<screening_report>(
        dice, 1,
        [this, job](std::size_t first, std::size_t count, screening_report* out,
                    const job_progress& progress) {
            for (std::size_t l = 0; l < count; ++l) {
                // Same per-die construction as the sequential
                // core::screen_lot: the die's identity comes solely from its
                // factory seed, so the batch is bit-identical to the serial
                // loop (the shared stimulus cache keys on the generator
                // design fingerprint, so a record is reused across dice only
                // when their stimulus is genuinely identical).
                demonstrator_board board = make_board(job->first_seed + first + l);
                network_analyzer analyzer(board, settings_);
                out[l] = screen(analyzer, job->mask, job->screening);
                progress.items_done();
            }
        },
        std::move(on_report), std::move(on_published));
}

std::vector<screening_report> sweep_engine::screen_batch(const spec_mask& mask,
                                                         std::size_t dice,
                                                         std::uint64_t first_seed,
                                                         const screening_options& screening) {
    return submit_screening(mask, dice, first_seed, screening).results();
}

void sweep_engine::screen_group(const spec_mask& mask, const screening_options& screening,
                                std::uint64_t first_seed, std::size_t count,
                                screening_report* reports,
                                const job_progress& progress) {
    BISTNA_EXPECTS(count > 0, "lane group must contain at least one die");
    if (options_.pipeline == sweep_pipeline::lane_major) {
        screen_group_lane_major(mask, screening, first_seed, count, reports, progress);
        return;
    }

    std::vector<demonstrator_board> boards;
    boards.reserve(count);
    for (std::size_t l = 0; l < count; ++l) {
        boards.push_back(make_board(first_seed + l));
    }
    eval::batch_evaluator evaluators(
        std::vector<eval::evaluator_config>(count, settings_.evaluator));

    // Stage 1 -- per-lane stimulus self-test through the calibration path
    // (the scalar analyzer's calibrate(): one render at a convenient master
    // clock, one lockstep fundamental acquisition across all lanes).
    const auto cal_tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    std::vector<stimulus_calibration> inputs(count);
    std::vector<std::size_t> active;
    active.reserve(count);
    {
        telemetry::trace_span calibrate_span("engine.calibrate");
        calibrate_span.arg("lanes", static_cast<double>(count));
        std::vector<std::vector<double>> records(count);
        std::vector<std::span<const double>> spans(count);
        for (std::size_t l = 0; l < count; ++l) {
            records[l] = boards[l].render(cal_tb, settings_.periods,
                                          signal_path::calibration,
                                          settings_.settle_periods);
            spans[l] = records[l];
        }
        const auto measured = evaluators.measure_harmonic(spans, 1, settings_.periods);
        for (std::size_t l = 0; l < count; ++l) {
            inputs[l] = make_stimulus_calibration(measured[l]);
            screening_report& report = reports[l];
            report.stimulus_volts = inputs[l].amplitude.volts;
            report.stimulus_phase_deg = rad_to_deg(inputs[l].phase.radians);
            report.offset_rate = evaluators.extractor(l).offset_rate_ch1();
            report.self_test_passed = stimulus_self_test(mask, report.stimulus_volts);
            // Broken BIST circuitry gates out the die's DUT data; the lane
            // is dropped from every later acquisition (it consumes no more
            // of its RNG stream, matching the scalar early return) -- unless
            // the diagnostic option keeps it measuring, matching the scalar
            // diagnostic path.
            report.passed = report.self_test_passed;
            if (report.self_test_passed || screening.continue_after_self_test_failure) {
                active.push_back(l);
            }
        }
    }
    // Gated-out lanes are finished dice; the active ones tick when their
    // last stage completes.
    progress.items_done(count - active.size());
    if (active.empty()) {
        return;
    }

    // Stage 2 -- every mask limit over the lanes still measuring: scalar
    // renders (cache-shared staircase, per-lane DUT filtering), one
    // lockstep acquisition per limit.
    for (std::size_t limit_index = 0; limit_index < mask.limits.size(); ++limit_index) {
        const auto& limit = mask.limits[limit_index];
        const auto tb = sim::timebase::for_wave_frequency(hertz{limit.f_hz});
        std::vector<std::vector<double>> records(active.size());
        std::vector<std::span<const double>> spans(active.size());
        {
            telemetry::trace_span render_span("engine.render");
            render_span.arg("lanes", static_cast<double>(active.size()));
            for (std::size_t i = 0; i < active.size(); ++i) {
                records[i] = boards[active[i]].render(tb, settings_.periods,
                                                      signal_path::through_dut,
                                                      settings_.settle_periods);
                spans[i] = records[i];
            }
        }
        telemetry::trace_span evaluate_span("engine.evaluate");
        evaluate_span.arg("lanes", static_cast<double>(active.size()));
        const auto outputs =
            evaluators.measure_harmonic_lanes(active, spans, 1, settings_.periods);
        for (std::size_t i = 0; i < active.size(); ++i) {
            const std::size_t l = active[i];
            const auto point =
                assemble_frequency_point(hertz{limit.f_hz}, inputs[l], outputs[i],
                                         settings_.hold_compensation, boards[l].dut());
            const auto result = evaluate_limit(limit, point, limit_index);
            reports[l].passed = reports[l].passed && result.passed;
            reports[l].limits.push_back(result);
        }
    }

    // Stage 3 -- optional distortion measurement (the scalar path's
    // measure_distortion: distortion_periods renders, harmonics 1..max in
    // one lockstep pass per harmonic).
    if (screening.measure_distortion) {
        telemetry::trace_span thd_span("engine.thd");
        thd_span.arg("lanes", static_cast<double>(active.size()));
        const double f_hz = screening.distortion_f_hz > 0.0 ? screening.distortion_f_hz
                                                            : mask.limits.front().f_hz;
        const auto tb = sim::timebase::for_wave_frequency(hertz{f_hz});
        std::vector<std::vector<double>> records(active.size());
        std::vector<std::span<const double>> spans(active.size());
        for (std::size_t i = 0; i < active.size(); ++i) {
            records[i] = boards[active[i]].render(tb, settings_.distortion_periods,
                                                  signal_path::through_dut,
                                                  settings_.settle_periods);
            spans[i] = records[i];
        }
        const auto thd = evaluators.measure_thd_lanes(
            active, spans, screening.distortion_max_harmonic, settings_.distortion_periods);
        for (std::size_t i = 0; i < active.size(); ++i) {
            reports[active[i]].distortion_measured = true;
            reports[active[i]].thd_db = thd[i].db;
            reports[active[i]].thd_f_hz = f_hz;
        }
    }
    progress.items_done(active.size());
}

double* sweep_engine::render_dut_lane_major(std::vector<demonstrator_board>& boards,
                                            const std::vector<std::size_t>& active,
                                            const sim::timebase& tb, std::size_t periods,
                                            bistna::arena& scratch) {
    const std::size_t lanes = active.size();
    const std::size_t total = tb.samples_for_periods(settings_.settle_periods + periods);
    const std::size_t keep_from = tb.samples_for_periods(settings_.settle_periods);
    const std::size_t tail = total - keep_from;
    double* out = scratch.allocate<double>(tail * lanes).data();

    // Stage 1 per lane, straight from the shared cache (no tail copies).
    std::vector<stimulus_cache::record_ptr> stairs(lanes);
    bool same_staircase = true;
    for (std::size_t i = 0; i < lanes; ++i) {
        stairs[i] = boards[active[i]].stimulus_record(periods, settings_.settle_periods);
        same_staircase = same_staircase && stairs[i].get() == stairs[0].get();
    }

    // Stage 2: the lockstep state-space pass when every lane is a prepared
    // linear realization of bankable order -- the same reset / prepare /
    // settle-block / tail-block sequence as render_from_stimulus, run
    // lane-major across the group.
    std::vector<dut::state_space*> realizations(lanes);
    bool bankable = true;
    for (std::size_t i = 0; i < lanes; ++i) {
        auto& device = boards[active[i]].dut();
        device.reset();
        device.prepare(tb.master().value);
        realizations[i] = device.linear_realization();
        bankable = bankable && realizations[i] != nullptr;
    }
    if (bankable &&
        dut::state_space_bank::compatible({realizations.data(), lanes})) {
        dut::state_space_bank bank({realizations.data(), lanes}, scratch);
        double* discard = scratch.allocate<double>(keep_from * lanes).data();
        if (same_staircase) {
            const double* input = stairs[0]->data();
            bank.step_block_shared(input, keep_from, discard);
            bank.step_block_shared(input + keep_from, tail, out);
        } else {
            const double** settle_inputs = scratch.allocate<const double*>(lanes).data();
            const double** tail_inputs = scratch.allocate<const double*>(lanes).data();
            for (std::size_t i = 0; i < lanes; ++i) {
                settle_inputs[i] = stairs[i]->data();
                tail_inputs[i] = stairs[i]->data() + keep_from;
            }
            bank.step_block_lanes(settle_inputs, keep_from, discard);
            bank.step_block_lanes(tail_inputs, tail, out);
        }
        return out;
    }

    // Fallback (non-linear or high-order DUTs): scalar per-lane renders
    // transposed into the lane-major layout -- bit-identical by definition.
    for (std::size_t i = 0; i < lanes; ++i) {
        const auto record = boards[active[i]].render_from_stimulus(
            *stairs[i], tb, periods, signal_path::through_dut, settings_.settle_periods);
        for (std::size_t n = 0; n < tail; ++n) {
            out[n * lanes + i] = record[n];
        }
    }
    return out;
}

void sweep_engine::screen_group_lane_major(const spec_mask& mask,
                                           const screening_options& screening,
                                           std::uint64_t first_seed, std::size_t count,
                                           screening_report* reports,
                                           const job_progress& progress) {
    arena& scratch = worker_arena();
    scratch.reset();

    std::vector<demonstrator_board> boards;
    boards.reserve(count);
    for (std::size_t l = 0; l < count; ++l) {
        boards.push_back(make_board(first_seed + l));
    }
    eval::batch_evaluator evaluators(
        std::vector<eval::evaluator_config>(count, settings_.evaluator));
    evaluators.set_shared_resources(demod_tables_.get(), &scratch,
                                    calibration_share_.get());

    // Stage 1 -- stimulus self-test through the calibration path.  The
    // calibration record *is* the staircase tail, so the lanes read the
    // shared cached record in place (one lockstep broadcast acquisition
    // when every lane's staircase is the same cached record).
    const auto cal_tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    std::vector<stimulus_calibration> inputs(count);
    std::vector<std::size_t> active;
    active.reserve(count);
    {
        telemetry::trace_span calibrate_span("engine.calibrate");
        calibrate_span.arg("lanes", static_cast<double>(count));
        const std::size_t keep_from = cal_tb.samples_for_periods(settings_.settle_periods);
        std::vector<stimulus_cache::record_ptr> stairs(count);
        bool same_staircase = true;
        for (std::size_t l = 0; l < count; ++l) {
            stairs[l] =
                boards[l].stimulus_record(settings_.periods, settings_.settle_periods);
            same_staircase = same_staircase && stairs[l].get() == stairs[0].get();
        }
        std::vector<std::size_t> all(count);
        std::iota(all.begin(), all.end(), std::size_t{0});
        std::vector<eval::harmonic_measurement> measured;
        if (same_staircase) {
            const std::span<const double> tail(stairs[0]->data() + keep_from,
                                               stairs[0]->size() - keep_from);
            measured = evaluators.measure_harmonic_lanes_shared(all, tail, 1,
                                                                settings_.periods);
        } else {
            std::vector<std::span<const double>> tails(count);
            for (std::size_t l = 0; l < count; ++l) {
                tails[l] = std::span<const double>(stairs[l]->data() + keep_from,
                                                   stairs[l]->size() - keep_from);
            }
            measured = evaluators.measure_harmonic_lanes(all, tails, 1, settings_.periods);
        }
        for (std::size_t l = 0; l < count; ++l) {
            inputs[l] = make_stimulus_calibration(measured[l]);
            screening_report& report = reports[l];
            report.stimulus_volts = inputs[l].amplitude.volts;
            report.stimulus_phase_deg = rad_to_deg(inputs[l].phase.radians);
            report.offset_rate = evaluators.extractor(l).offset_rate_ch1();
            report.self_test_passed = stimulus_self_test(mask, report.stimulus_volts);
            report.passed = report.self_test_passed;
            if (report.self_test_passed || screening.continue_after_self_test_failure) {
                active.push_back(l);
            }
        }
    }
    progress.items_done(count - active.size());
    if (active.empty()) {
        return;
    }

    // Stage 2 -- every mask limit: one banked state-space pass renders the
    // active lanes' records lane-major, one lane-major lockstep acquisition
    // consumes them with no transpose in between.
    for (std::size_t limit_index = 0; limit_index < mask.limits.size(); ++limit_index) {
        const auto& limit = mask.limits[limit_index];
        const auto tb = sim::timebase::for_wave_frequency(hertz{limit.f_hz});
        const double* lane_major = [&] {
            telemetry::trace_span render_span("engine.render");
            render_span.arg("lanes", static_cast<double>(active.size()));
            return render_dut_lane_major(boards, active, tb, settings_.periods, scratch);
        }();
        telemetry::trace_span evaluate_span("engine.evaluate");
        evaluate_span.arg("lanes", static_cast<double>(active.size()));
        const auto outputs = evaluators.measure_harmonic_lanes_lane_major(
            active, lane_major, 1, settings_.periods);
        for (std::size_t i = 0; i < active.size(); ++i) {
            const std::size_t l = active[i];
            const auto point =
                assemble_frequency_point(hertz{limit.f_hz}, inputs[l], outputs[i],
                                         settings_.hold_compensation, boards[l].dut());
            const auto result = evaluate_limit(limit, point, limit_index);
            reports[l].passed = reports[l].passed && result.passed;
            reports[l].limits.push_back(result);
        }
    }

    // Stage 3 -- optional distortion, same banked render / lane-major
    // acquisition shape at the distortion record length.
    if (screening.measure_distortion) {
        telemetry::trace_span thd_span("engine.thd");
        thd_span.arg("lanes", static_cast<double>(active.size()));
        const double f_hz = screening.distortion_f_hz > 0.0 ? screening.distortion_f_hz
                                                            : mask.limits.front().f_hz;
        const auto tb = sim::timebase::for_wave_frequency(hertz{f_hz});
        const double* lane_major = render_dut_lane_major(
            boards, active, tb, settings_.distortion_periods, scratch);
        const auto thd = evaluators.measure_thd_lanes_lane_major(
            active, lane_major, screening.distortion_max_harmonic,
            settings_.distortion_periods);
        for (std::size_t i = 0; i < active.size(); ++i) {
            reports[active[i]].distortion_measured = true;
            reports[active[i]].thd_db = thd[i].db;
            reports[active[i]].thd_f_hz = f_hz;
        }
    }
    progress.items_done(active.size());
}

lot_result sweep_engine::screen_lot(const spec_mask& mask, std::size_t dice,
                                    std::uint64_t first_seed,
                                    const screening_options& screening) {
    return aggregate_lot(screen_batch(mask, dice, first_seed, screening));
}

// --- Generic acquisition sessions ------------------------------------------

namespace {

/// Render one acquisition stage for one item, deduplicated through the
/// batch's render share when the item carries a render key: identical
/// boards produce bit-identical records (a render is a pure function of
/// the board design), so the first item renders and the rest reuse.  The
/// share is keyed on (render key, stage tag); the stage tag encodes the
/// program stage, which pins (timebase, path, periods) within one batch.
stimulus_cache::record_ptr render_stage(demonstrator_board& board,
                                        stimulus_cache& shared_records,
                                        std::uint64_t render_key, std::uint64_t stage_tag,
                                        const sim::timebase& tb, std::size_t periods,
                                        signal_path path, std::size_t settle_periods) {
    auto render = [&] { return board.render(tb, periods, path, settle_periods); };
    if (render_key == 0) {
        return std::make_shared<const stimulus_cache::record>(render());
    }
    return shared_records.get_or_render(
        stimulus_key{render_key, stage_tag, periods, settle_periods}, render);
}

/// Stage tags for render_stage: 0 is the calibration stage, 1 + i the i-th
/// program frequency, 1 + frequencies.size() the distortion stage.
constexpr std::uint64_t calibration_stage_tag = 0;

eval::sample_source as_shared_source(stimulus_cache::record_ptr record) {
    return [record = std::move(record)](std::size_t n) { return (*record)[n]; };
}

/// Job-lifetime state of a submitted acquisition batch: the items and
/// program (owned, so the caller's copies can die) plus the render share
/// for keyed items -- one entry per (render key, stage), alive exactly as
/// long as some task closure still references the job.
struct acquisition_job {
    acquisition_job(std::vector<core::sweep_engine::acquisition_item> items_,
                    core::sweep_engine::acquisition_program program_)
        : items(std::move(items_)), program(std::move(program_)),
          shared_records(
              std::max<std::size_t>(64, 2 * (program.frequencies.size() + 2))) {}

    std::vector<core::sweep_engine::acquisition_item> items;
    core::sweep_engine::acquisition_program program;
    stimulus_cache shared_records; ///< thread-safe render-once share
};

} // namespace

job_handle<sweep_engine::acquisition_result>
sweep_engine::submit_acquisition(std::vector<acquisition_item> items,
                                 acquisition_program program,
                                 job_handle<acquisition_result>::item_callback on_result,
                                 std::function<void()> on_published) {
    BISTNA_EXPECTS(!items.empty(), "acquisition batch must contain at least one item");
    BISTNA_EXPECTS(!program.frequencies.empty(),
                   "acquisition program must measure at least one frequency");

    auto job = std::make_shared<acquisition_job>(std::move(items), std::move(program));
    const std::size_t count = job->items.size();
    const std::size_t lanes = std::max<std::size_t>(1, options_.batch_lanes);
    if (lanes > 1) {
        return queue_->submit<acquisition_result>(
            count, lanes,
            [this, job](std::size_t first, std::size_t n, acquisition_result* out,
                        const job_progress& progress) {
                acquire_group(job->items, job->program, first, n, out,
                              job->shared_records);
                progress.items_done(n);
            },
            std::move(on_result), std::move(on_published));
    }
    return queue_->submit<acquisition_result>(
        count, 1,
        [this, job](std::size_t first, std::size_t n, acquisition_result* out,
                    const job_progress& progress) {
            for (std::size_t l = 0; l < n; ++l) {
                out[l] = acquire_scalar(job->items[first + l], job->program,
                                        job->shared_records);
                progress.items_done();
            }
        },
        std::move(on_result), std::move(on_published));
}

std::vector<sweep_engine::acquisition_result> sweep_engine::acquire(
    const std::vector<acquisition_item>& items, const acquisition_program& program) {
    return submit_acquisition(items, program).results();
}

sweep_engine::acquisition_result sweep_engine::acquire_scalar(
    const acquisition_item& item, const acquisition_program& program,
    stimulus_cache& shared_records) {
    demonstrator_board board = item.make_board();
    if (stimulus_cache_) {
        board.set_stimulus_cache(stimulus_cache_);
    }
    // The plain per-item evaluator, driven through exactly the call
    // sequence the batched path runs in lockstep: offset calibration on
    // first use, one fundamental acquisition for the calibration stage and
    // per frequency, then one acquisition per distortion harmonic.
    eval::sinewave_evaluator evaluator(item.evaluator);

    acquisition_result result;
    const auto cal_tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto cal_record =
        render_stage(board, shared_records, item.render_key, calibration_stage_tag, cal_tb,
                     settings_.periods, signal_path::calibration, settings_.settle_periods);
    result.calibration = make_stimulus_calibration(
        evaluator.measure_harmonic(as_shared_source(cal_record), 1, settings_.periods));
    result.offset_rate = evaluator.extractor().offset_rate_ch1();

    result.points.reserve(program.frequencies.size());
    for (std::size_t i = 0; i < program.frequencies.size(); ++i) {
        const hertz f = program.frequencies[i];
        const auto tb = sim::timebase::for_wave_frequency(f);
        const auto record =
            render_stage(board, shared_records, item.render_key, 1 + i, tb,
                         settings_.periods, signal_path::through_dut,
                         settings_.settle_periods);
        const auto output =
            evaluator.measure_harmonic(as_shared_source(record), 1, settings_.periods);
        result.points.push_back(assemble_frequency_point(
            f, result.calibration, output, settings_.hold_compensation, board.dut()));
    }

    if (program.distortion_max_harmonic >= 2) {
        const hertz f = program.distortion_f.value > 0.0 ? program.distortion_f
                                                         : program.frequencies.front();
        const auto tb = sim::timebase::for_wave_frequency(f);
        const auto record = render_stage(
            board, shared_records, item.render_key, 1 + program.frequencies.size(), tb,
            settings_.distortion_periods, signal_path::through_dut, settings_.settle_periods);
        result.has_thd = true;
        result.thd_db = evaluator
                            .measure_thd(as_shared_source(record),
                                         program.distortion_max_harmonic,
                                         settings_.distortion_periods)
                            .db;
    }
    return result;
}

void sweep_engine::acquire_group(const std::vector<acquisition_item>& items,
                                 const acquisition_program& program, std::size_t first,
                                 std::size_t count, acquisition_result* results,
                                 stimulus_cache& shared_records) {
    BISTNA_EXPECTS(count > 0, "lane group must contain at least one item");

    std::vector<demonstrator_board> boards;
    boards.reserve(count);
    std::vector<eval::evaluator_config> configs;
    configs.reserve(count);
    for (std::size_t l = 0; l < count; ++l) {
        boards.push_back(items[first + l].make_board());
        if (stimulus_cache_) {
            boards.back().set_stimulus_cache(stimulus_cache_);
        }
        configs.push_back(items[first + l].evaluator);
    }
    eval::batch_evaluator evaluators(std::move(configs));
    if (options_.pipeline == sweep_pipeline::lane_major) {
        arena& scratch = worker_arena();
        scratch.reset();
        evaluators.set_shared_resources(demod_tables_.get(), &scratch,
                                        calibration_share_.get());
    }

    std::vector<stimulus_cache::record_ptr> records(count);
    std::vector<std::span<const double>> spans(count);
    const auto render_all = [&](std::uint64_t stage_tag, const sim::timebase& tb,
                                std::size_t periods, signal_path path) {
        telemetry::trace_span render_span("engine.render");
        render_span.arg("lanes", static_cast<double>(count));
        for (std::size_t l = 0; l < count; ++l) {
            records[l] = render_stage(boards[l], shared_records, items[first + l].render_key,
                                      stage_tag, tb, periods, path, settings_.settle_periods);
            spans[l] = *records[l];
        }
    };

    // Stage 1 -- calibration-path characterization (the scalar calibrate()).
    const auto cal_tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    render_all(calibration_stage_tag, cal_tb, settings_.periods, signal_path::calibration);
    {
        telemetry::trace_span calibrate_span("engine.calibrate");
        calibrate_span.arg("lanes", static_cast<double>(count));
        const auto measured = evaluators.measure_harmonic(spans, 1, settings_.periods);
        for (std::size_t l = 0; l < count; ++l) {
            results[l].calibration = make_stimulus_calibration(measured[l]);
            results[l].offset_rate = evaluators.extractor(l).offset_rate_ch1();
            results[l].points.reserve(program.frequencies.size());
        }
    }

    // Stage 2 -- fundamental gain/phase at every program frequency.
    for (std::size_t i = 0; i < program.frequencies.size(); ++i) {
        const hertz f = program.frequencies[i];
        const auto tb = sim::timebase::for_wave_frequency(f);
        render_all(1 + i, tb, settings_.periods, signal_path::through_dut);
        telemetry::trace_span evaluate_span("engine.evaluate");
        evaluate_span.arg("lanes", static_cast<double>(count));
        const auto outputs = evaluators.measure_harmonic(spans, 1, settings_.periods);
        for (std::size_t l = 0; l < count; ++l) {
            results[l].points.push_back(
                assemble_frequency_point(f, results[l].calibration, outputs[l],
                                         settings_.hold_compensation, boards[l].dut()));
        }
    }

    // Stage 3 -- optional distortion (the scalar measure_distortion).
    if (program.distortion_max_harmonic >= 2) {
        const hertz f = program.distortion_f.value > 0.0 ? program.distortion_f
                                                         : program.frequencies.front();
        const auto tb = sim::timebase::for_wave_frequency(f);
        render_all(1 + program.frequencies.size(), tb, settings_.distortion_periods,
                   signal_path::through_dut);
        telemetry::trace_span thd_span("engine.thd");
        thd_span.arg("lanes", static_cast<double>(count));
        const auto thd = evaluators.measure_thd(spans, program.distortion_max_harmonic,
                                                settings_.distortion_periods);
        for (std::size_t l = 0; l < count; ++l) {
            results[l].has_thd = true;
            results[l].thd_db = thd[l].db;
        }
    }
}

} // namespace bistna::core
