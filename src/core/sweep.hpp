// Frequency-sweep planning: the master-clock schedule of a Bode run.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace bistna::core {

/// Logarithmically spaced frequencies in [lo, hi] inclusive.
std::vector<hertz> log_spaced(hertz lo, hertz hi, std::size_t points);

/// Linearly spaced frequencies in [lo, hi] inclusive.
std::vector<hertz> linear_spaced(hertz lo, hertz hi, std::size_t points);

} // namespace bistna::core
