// Shared cache of rendered stimulus records (extension).
//
// The system is clock-normalized: the generator emits the *same*
// discrete-time staircase at every master clock, so the pre-DUT record of a
// board render is identical at every Bode frequency up to timebase
// labeling.  Re-simulating the switched-capacitor generator per point is
// therefore pure waste -- this cache renders the staircase once per
// (generator design, amplitude, periods, settle periods) and hands the
// frequency-dependent DUT-filtering stage a shared immutable record.
//
// Concurrency: get_or_render is safe to call from any number of sweep
// workers.  The first caller of a key renders; concurrent callers of the
// same key block on a shared future instead of rendering redundantly, and
// callers of *different* keys never serialize against an in-flight render.
// Records are immutable once published (shared_ptr<const vector>), so
// readers need no further synchronization.  Capacity is bounded by FIFO
// eviction; eviction only drops the cache's reference, never a record a
// caller still holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "telemetry/metrics.hpp"

namespace bistna::core {

/// Identity of one clock-normalized stimulus record.  The fingerprint
/// covers every generator parameter that shapes the waveform (see
/// gen::generator_params::fingerprint); amplitude, periods and settle are
/// the remaining render inputs -- the timebase deliberately is *not* part
/// of the key.
struct stimulus_key {
    std::uint64_t design_fingerprint = 0;
    std::uint64_t amplitude_bits = 0; ///< bit pattern of the programmed V_A diff
    std::uint64_t periods = 0;
    std::uint64_t settle_periods = 0;

    bool operator==(const stimulus_key&) const = default;
};

struct stimulus_key_hash {
    std::size_t operator()(const stimulus_key& key) const noexcept;
};

struct stimulus_cache_stats {
    std::size_t hits = 0;      ///< get_or_render calls served from the cache
    std::size_t misses = 0;    ///< calls that had to render
    std::size_t evictions = 0; ///< entries dropped by the capacity bound
    std::size_t entries = 0;   ///< records currently resident
};

class stimulus_cache {
public:
    using record = std::vector<double>;
    using record_ptr = std::shared_ptr<const record>;
    using render_fn = std::function<record()>;

    /// Cache holding at most `max_entries` records (oldest-first eviction).
    /// A Bode sweep needs one entry; a screening batch needs one per die
    /// concurrently in flight.
    explicit stimulus_cache(std::size_t max_entries = 64);

    /// The record for `key`, rendering it via `render` exactly once on a
    /// miss.  Rethrows the render's exception to every caller waiting on it
    /// and forgets the entry, so a later call can retry.
    record_ptr get_or_render(const stimulus_key& key, const render_fn& render);

    stimulus_cache_stats stats() const;
    std::size_t max_entries() const noexcept { return max_entries_; }
    void clear();

private:
    struct entry {
        std::shared_future<record_ptr> future;
        std::uint64_t id = 0; ///< distinguishes re-inserted keys on cleanup
    };

    void evict_for_insert_locked();

    std::size_t max_entries_;
    mutable std::mutex mutex_;
    std::unordered_map<stimulus_key, entry, stimulus_key_hash> entries_;
    std::deque<stimulus_key> insertion_order_;
    std::uint64_t next_entry_id_ = 1;
    // The registry is the taxonomy owner; stats() is a thin view over these
    // cells (engine.stimulus.* in an attached registry's snapshot).
    telemetry::counter_cell hits_{"engine.stimulus.hits"};
    telemetry::counter_cell misses_{"engine.stimulus.misses"};
    telemetry::counter_cell evictions_{"engine.stimulus.evictions"};
};

} // namespace bistna::core
