// The demonstrator board (paper Figs. 1 and 7).
//
// One master clock at f_eva drives everything: the 1:6 divider clocks the
// sinewave generator, whose output is held between generator updates (a
// staircase piecewise-constant over every f_eva interval); the DUT filters
// that staircase in continuous time (simulated exactly via ZOH state
// space); the evaluator samples the result at f_eva.  A calibration switch
// bypasses the DUT so the stimulus itself can be characterized (dashed
// path in Fig. 1).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "core/stimulus_cache.hpp"
#include "dut/dut.hpp"
#include "eval/signature.hpp"
#include "gen/generator.hpp"
#include "sim/clock_divider.hpp"
#include "sim/timebase.hpp"

namespace bistna::core {

enum class signal_path {
    through_dut, ///< generator -> DUT -> evaluator
    calibration  ///< generator -> evaluator (dashed path in Fig. 1)
};

class demonstrator_board {
public:
    demonstrator_board(gen::generator_params generator_params,
                       std::unique_ptr<dut::device_under_test> dut);

    /// Program the stimulus amplitude (V_A+ - V_A-).
    void set_amplitude(volt va_diff) { va_diff_ = va_diff; }
    volt amplitude() const noexcept { return va_diff_; }

    /// Render `periods` signal periods of the selected path on the f_eva
    /// grid after discarding `settle_periods` (generator + DUT transients).
    /// The record starts at generator phase 0, so repeated renders are
    /// phase-coherent with the evaluator's square waves.
    ///
    /// Internally two stages: render_stimulus (frequency-independent,
    /// cacheable) then render_from_stimulus (per-timebase DUT filtering).
    /// When a stimulus cache is attached the first stage is fetched from /
    /// published to it; results are bit-identical either way because the
    /// staircase is a pure function of the generator parameters.
    std::vector<double> render(const sim::timebase& tb, std::size_t periods,
                               signal_path path, std::size_t settle_periods = 32);

    /// Stage 1: the generator staircase on the f_eva grid covering
    /// settle_periods + periods periods from generator phase 0.  The system
    /// is clock-normalized, so this sequence is *identical at every master
    /// clock* -- it depends only on the generator design, the programmed
    /// amplitude and the period counts.
    std::vector<double> render_stimulus(std::size_t periods,
                                        std::size_t settle_periods) const;

    /// The stage-1 staircase as an immutable shared record: fetched from
    /// the attached cache when one is present (zero-copy on a hit; render()
    /// and the sweep engine's lane-major pipeline both read straight from
    /// the cached record), rendered fresh otherwise.
    stimulus_cache::record_ptr stimulus_record(std::size_t periods,
                                               std::size_t settle_periods) const;

    /// Stage 2: filter a staircase from render_stimulus through the
    /// selected path on timebase `tb` (ZOH state-space pass for the DUT
    /// path, plain pass-through for the calibration path) and keep the last
    /// `periods` periods.  Takes a span so cached records feed the DUT
    /// without a copy.
    std::vector<double> render_from_stimulus(std::span<const double> staircase,
                                             const sim::timebase& tb, std::size_t periods,
                                             signal_path path, std::size_t settle_periods);

    /// Attach (or detach, with nullptr) a shared stimulus-record cache.
    /// Safe to share one cache across boards and threads; boards with
    /// different generator designs never collide because the key includes
    /// the design fingerprint.
    void set_stimulus_cache(std::shared_ptr<stimulus_cache> cache) {
        stimulus_cache_ = std::move(cache);
    }
    const std::shared_ptr<stimulus_cache>& shared_stimulus_cache() const noexcept {
        return stimulus_cache_;
    }

    /// The cache key render() uses for the stimulus stage of this board in
    /// its current configuration.
    stimulus_key stimulus_cache_key(std::size_t periods, std::size_t settle_periods) const;

    /// Wrap a rendered record as an evaluator sample source.
    static eval::sample_source as_source(std::vector<double> record);

    const dut::device_under_test& dut() const { return *dut_; }
    dut::device_under_test& dut() { return *dut_; }
    const gen::generator_params& generator_params() const noexcept { return gen_params_; }

private:
    gen::generator_params gen_params_;
    std::unique_ptr<dut::device_under_test> dut_;
    volt va_diff_{0.15};
    std::shared_ptr<stimulus_cache> stimulus_cache_;
};

} // namespace bistna::core
