// Parallel batch execution of network-analyzer measurements (extension).
//
// A Bode sweep is embarrassingly parallel across frequency points, and a
// production lot is embarrassingly parallel across dice: every item renders
// its own record and never shares mutable state with its neighbours.  This
// engine exploits that with a thread pool while keeping the property the
// rest of the codebase is built on -- exact reproducibility:
//
//   * every work item constructs its *own* board (via the factory) and its
//     own analyzer, so no simulation state crosses item boundaries;
//   * the per-item evaluator seed is derived from (base_seed, item index)
//     with splitmix64, never from scheduling order;
//   * results land in a pre-sized slot per item.
//
// Consequently the output is bit-identical at any thread count.
// `screen_lot` here matches the sequential core::screen_lot exactly, so
// the two can be cross-checked in tests.
//
// Since the job-queue redesign the engine is session-shaped: work enters
// through submit_bode / submit_screening / submit_acquisition, which
// return immediately with a streaming job_handle (pull completed items
// with next_completed(), or attach a per-item callback; progress counters,
// cooperative cancellation and worker-exception capture come with it).
// The historical blocking entrypoints (run, screen_batch, screen_lot,
// acquire) are thin synchronous wrappers -- submit one job, wait for its
// results -- and stay bit-identical to what they always returned.  Many
// engines can share one core::job_queue (options.queue), so concurrent
// sessions never oversubscribe the machine; the engine must outlive the
// jobs it has submitted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/stimulus_cache.hpp"
#include "sim/timebase.hpp"

namespace bistna {
class arena;
namespace eval {
class demod_table_cache;
class calibration_share;
} // namespace eval
} // namespace bistna

namespace bistna::core {

/// Execution pipeline of the lockstep lane groups.
enum class sweep_pipeline {
    /// Span-based scalar-render reference path: per-lane board renders, AoS
    /// acquisition.  The bit-identity oracle and the roofline bench's
    /// baseline.
    reference,
    /// Roofline path: banked DUT state-space pass emitting lane-major
    /// records straight into lane-major evaluator kernels, arena-backed
    /// scratch per worker, cached demodulation tables and calibration-state
    /// transplant across identically-seeded lanes.  Bit-identical to
    /// `reference` at any {threads, batch_lanes}.
    lane_major,
};

struct sweep_engine_options {
    /// Worker threads of the engine's own pool; 0 picks
    /// std::thread::hardware_concurrency().  Ignored when `queue` is set.
    std::size_t threads = 0;
    /// Run jobs on this shared pool instead of a private one: any number
    /// of engines (concurrent Bode sessions, screening lots, dictionary
    /// builds) then draw from one set of workers.  Null gives the engine a
    /// private queue sized by `threads`.
    std::shared_ptr<job_queue> queue = nullptr;
    /// Root of the per-point evaluator seed stream for Bode batches.
    std::uint64_t base_seed = 0x5EEDBA7C4E57ULL;
    /// Calibrate the stimulus once up front and inject the result into every
    /// point's analyzer (the paper's one-time-calibration claim); when false
    /// each point re-runs the calibration path itself.
    bool share_calibration = true;
    /// Share one stimulus-record cache across every board the engine
    /// constructs: the clock-normalized staircase is rendered once per
    /// (design, amplitude, periods, settle) and reused by every frequency
    /// point / die that needs it.  Bit-identical to rendering per point.
    bool share_stimulus = true;
    /// Capacity of the shared stimulus cache (records, oldest evicted
    /// first).  A Bode batch needs 1; a screening batch needs one per die
    /// concurrently in flight -- threads x batch_lanes of them -- so the
    /// engine grows this floor to that product when it is larger.
    std::size_t stimulus_cache_entries = 64;
    /// Dice (or Bode points) evaluated in lockstep per work item through
    /// the SoA modulator bank (threads x lanes in flight overall).  1 runs
    /// the scalar reference path; any lane count is bit-identical to it,
    /// because lanes own independent seeded streams and never interact.
    /// For Bode batches the lanes apply only with a shared calibration
    /// (recalibrate_per_point falls back to the scalar path).
    std::size_t batch_lanes = 1;
    /// How lane groups execute (see sweep_pipeline).  Every pipeline is
    /// bit-identical; `reference` exists as the oracle and bench baseline.
    sweep_pipeline pipeline = sweep_pipeline::lane_major;
    /// Self-tune {threads, batch_lanes} at construction: a short
    /// calibration probe screens a few synthetic dice at each candidate
    /// configuration and adopts the fastest (reported in stats()).  When a
    /// shared `queue` is set only batch_lanes is tuned.  The probe only
    /// runs the factory (a pure function of its seed), so tuning never
    /// perturbs results -- outputs stay bit-identical at any configuration.
    bool autotune = false;
};

/// One configuration the autotune probe timed.
struct autotune_candidate {
    std::size_t threads = 0;
    std::size_t batch_lanes = 0;
    double seconds = 0.0;
    double dice_per_second = 0.0;
};

/// Resolved execution configuration and shared-resource counters of an
/// engine (autotune outcome included).
struct sweep_stats {
    std::size_t threads = 0;
    std::size_t batch_lanes = 1;
    sweep_pipeline pipeline = sweep_pipeline::lane_major;
    bool autotuned = false;
    double autotune_seconds = 0.0;
    std::vector<autotune_candidate> autotune_candidates;
    stimulus_cache_stats stimulus;
    /// Calibration snapshots resident in the engine's transplant share.
    std::size_t calibration_snapshots = 0;
};

/// Aggregated outcome of a parallel Bode batch.
struct sweep_report {
    std::vector<frequency_point> points; ///< in input frequency order
    std::size_t threads_used = 0;
    double elapsed_seconds = 0.0;

    // Accuracy aggregates against each point's drawn-instance ground truth.
    double worst_gain_error_db = 0.0;
    double worst_phase_error_deg = 0.0;
    double max_gain_bound_width_db = 0.0;
    /// Points whose guaranteed gain interval misses the true gain (should be
    /// 0 if the eq. (4) bounds hold).
    std::size_t gain_bound_violations = 0;
    summary gain_error_db_summary; ///< |measured - ideal| distribution
};

/// Thread-pool batch engine over network-analyzer measurements.
class sweep_engine {
public:
    /// The factory must be a pure function of its seed (it is invoked once
    /// per work item, possibly concurrently).
    sweep_engine(board_factory factory, analyzer_settings settings,
                 sweep_engine_options options = {});

    /// Bode batch: measure every frequency on a fresh board drawn with
    /// `board_seed` (the same die at every point, like a real bench run).
    sweep_report run(const std::vector<hertz>& frequencies, std::uint64_t board_seed = 1);

    /// Screen `dice` process draws concurrently; element i is the report of
    /// die seed first_seed + i.  Bit-identical to calling core::screen on
    /// factory(first_seed + i) sequentially (including the diagnostic
    /// continue-after-self-test and distortion options).
    std::vector<screening_report> screen_batch(const spec_mask& mask, std::size_t dice,
                                               std::uint64_t first_seed = 1,
                                               const screening_options& screening = {});

    /// Parallel drop-in for core::screen_lot (same aggregation, same seeds).
    lot_result screen_lot(const spec_mask& mask, std::size_t dice,
                          std::uint64_t first_seed = 1,
                          const screening_options& screening = {});

    // --- Generic lockstep acquisition ------------------------------------
    //
    // A screening lot varies the die seed; the diag trajectory builder
    // varies a fault severity.  `acquire` abstracts over both: the caller
    // describes each item (its board and its evaluator config) and one
    // shared measurement program, and the engine fans the items out over
    // the thread pool, grouping batch_lanes of them per work item through
    // one SoA modulator bank.  batch_lanes = 1 runs the scalar
    // network-analyzer-style reference path; any lane count is
    // bit-identical to it, because every item owns its own seeded streams.

    /// One item of a generic acquisition batch.  `make_board` must be a
    /// pure function (it is invoked once, possibly on a worker thread); the
    /// engine attaches its shared stimulus cache to the result.
    struct acquisition_item {
        std::function<demonstrator_board()> make_board;
        eval::evaluator_config evaluator;
        /// Items carrying the same nonzero key declare their boards
        /// render-identical (same generator design, amplitude and DUT
        /// draw; only the evaluator differs): the engine then renders each
        /// program stage once per key and shares the immutable record --
        /// bit-identical to rendering per item, because a render is a pure
        /// function of the board design.  0 always renders.
        std::uint64_t render_key = 0;
    };

    /// The measurement program every item runs: the scalar screening
    /// sequence (calibration-path characterization, one fundamental
    /// acquisition per frequency, optionally harmonics 1..max for THD).
    struct acquisition_program {
        std::vector<hertz> frequencies;
        std::size_t distortion_max_harmonic = 0; ///< 0 skips the THD stage
        hertz distortion_f{0.0}; ///< 0 picks frequencies.front()
    };

    /// Everything one item's program measured.
    struct acquisition_result {
        stimulus_calibration calibration;
        double offset_rate = 0.0; ///< calibrated in-phase offset count rate
        std::vector<frequency_point> points; ///< one per program frequency
        /// True when the program measured distortion; thd_db is NaN (never
        /// a fake 0 dB reading) until then.
        bool has_thd = false;
        double thd_db = std::numeric_limits<double>::quiet_NaN();
    };

    std::vector<acquisition_result> acquire(const std::vector<acquisition_item>& items,
                                            const acquisition_program& program);

    // --- Streaming sessions ----------------------------------------------
    //
    // The asynchronous forms of the three batch shapes above: submit
    // returns as soon as the job is on the queue, and the handle streams
    // items as workers complete them.  Every item is bit-identical to the
    // synchronous path's slot at any {threads, batch_lanes} combination
    // and any completion order (seeds derive from the item index via
    // sweep_item_seed, never from scheduling).  The engine must outlive
    // the handles' jobs; the optional callback runs on worker threads.

    /// Bode batch: item i is frequencies[i] measured on the board drawn
    /// with `board_seed`.  When the engine shares calibration (the
    /// default), the one-time calibration runs synchronously here -- on
    /// the caller's thread, exactly as the blocking run() did -- and every
    /// streamed point reuses it.
    job_handle<frequency_point>
    submit_bode(std::vector<hertz> frequencies, std::uint64_t board_seed = 1,
                job_handle<frequency_point>::item_callback on_point = nullptr);

    /// Screening lot: item i is the report of die seed first_seed + i.
    /// `on_published` is the post-publish notifier, installed before any
    /// work runs (see job_handle::set_published_callback).
    job_handle<screening_report>
    submit_screening(const spec_mask& mask, std::size_t dice, std::uint64_t first_seed = 1,
                     const screening_options& screening = {},
                     job_handle<screening_report>::item_callback on_report = nullptr,
                     std::function<void()> on_published = nullptr);

    /// Generic lockstep acquisition: item i is items[i] run through the
    /// program.  The items (and their board factories) are owned by the
    /// job, so the caller may drop its copies immediately.  `on_published`
    /// as in submit_screening.
    job_handle<acquisition_result>
    submit_acquisition(std::vector<acquisition_item> items, acquisition_program program,
                       job_handle<acquisition_result>::item_callback on_result = nullptr,
                       std::function<void()> on_published = nullptr);

    /// Worker count a batch will actually use (the shared or private
    /// pool's thread count).
    std::size_t resolved_threads() const noexcept;

    /// The pool this engine's jobs run on.
    const std::shared_ptr<job_queue>& queue() const noexcept { return queue_; }

    const sweep_engine_options& options() const noexcept { return options_; }

    /// Hit/miss/eviction counters of the shared stimulus cache, accumulated
    /// over every batch this engine has run (all zeros when share_stimulus
    /// is off).
    stimulus_cache_stats stimulus_stats() const;

    /// Resolved configuration (post-autotune), pipeline and shared-resource
    /// counters.
    sweep_stats stats() const;

private:
    /// Build the work item's board and attach the shared cache to it.
    demonstrator_board make_board(std::uint64_t seed) const;

    /// One Bode point on the scalar analyzer path (the per-item unit of a
    /// submitted Bode job without lockstep lanes).
    frequency_point bode_point(hertz f, std::uint64_t board_seed,
                               const std::optional<stimulus_calibration>& calibration,
                               std::size_t index);

    /// A lane group of Bode points through one SoA modulator bank (the
    /// shared-calibration lockstep path), points written to out[0..count).
    void bode_group(const std::vector<hertz>& frequencies, std::uint64_t board_seed,
                    const stimulus_calibration& calibration, std::size_t first,
                    std::size_t count, frequency_point* out);

    /// Batched-lane screening of dice [first_seed, first_seed + count):
    /// one board per lane, one lockstep batch evaluator, reports written to
    /// reports[0..count).  Bit-identical per die to core::screen on a
    /// scalar analyzer (lanes failing the self-test are dropped from later
    /// acquisitions, exactly like the scalar early return -- unless the
    /// diagnostic continue option keeps them in, exactly like the scalar
    /// diagnostic path).
    void screen_group(const spec_mask& mask, const screening_options& screening,
                      std::uint64_t first_seed, std::size_t count,
                      screening_report* reports,
                      const job_progress& progress = {});

    /// The roofline form of screen_group (options.pipeline == lane_major):
    /// cached staircases feed a banked state-space pass whose lane-major
    /// output feeds the lane-major evaluator kernels, with all scratch on
    /// the worker's arena.  Bit-identical per die to screen_group.
    void screen_group_lane_major(const spec_mask& mask, const screening_options& screening,
                                 std::uint64_t first_seed, std::size_t count,
                                 screening_report* reports,
                                 const job_progress& progress = {});

    /// Render the through-DUT stage of every active lane as one lane-major
    /// block (sample n of active lane i at out[n * active.size() + i]),
    /// arena-allocated.  Uses the state_space_bank lockstep pass when every
    /// lane exposes a compatible linear realization, otherwise per-lane
    /// scalar renders transposed into the same layout -- bit-identical
    /// either way.  Returns the block of tb.samples_for_periods(periods)
    /// rows.
    double* render_dut_lane_major(std::vector<demonstrator_board>& boards,
                                  const std::vector<std::size_t>& active,
                                  const sim::timebase& tb, std::size_t periods,
                                  bistna::arena& scratch);

    /// Autotune probe (constructor helper): time candidate
    /// {threads, batch_lanes} points and adopt the fastest into options_.
    void run_autotune();

    /// Lockstep acquisition of items [first, first + count) of an acquire()
    /// batch, results written to results[0..count).  `shared_records` is
    /// the batch-lifetime render share for keyed items.
    void acquire_group(const std::vector<acquisition_item>& items,
                       const acquisition_program& program, std::size_t first,
                       std::size_t count, acquisition_result* results,
                       stimulus_cache& shared_records);

    /// The scalar reference path of acquire(): one item through a plain
    /// sinewave evaluator, the exact call sequence screen()/measure_point
    /// would issue.
    acquisition_result acquire_scalar(const acquisition_item& item,
                                      const acquisition_program& program,
                                      stimulus_cache& shared_records);

    board_factory factory_;
    analyzer_settings settings_;
    sweep_engine_options options_;
    std::shared_ptr<stimulus_cache> stimulus_cache_;
    /// Shared lane-major-pipeline resources: demodulation sign tables
    /// (pure functions of the acquisition settings) and the calibration
    /// transplant share.  Both thread-safe; both inert in reference mode.
    std::shared_ptr<eval::demod_table_cache> demod_tables_;
    std::shared_ptr<eval::calibration_share> calibration_share_;
    bool autotuned_ = false;
    double autotune_seconds_ = 0.0;
    std::vector<autotune_candidate> autotune_candidates_;
    /// Declared last on purpose: a private queue's destructor cancels and
    /// joins in-flight jobs whose closures use the members above, so it
    /// must be destroyed (= workers joined) before any of them.
    std::shared_ptr<job_queue> queue_;
};

/// Seed for work item `index` of a batch rooted at `base_seed` (splitmix64
/// finalizer; scheduling-independent by construction).
std::uint64_t sweep_item_seed(std::uint64_t base_seed, std::size_t index) noexcept;

} // namespace bistna::core
