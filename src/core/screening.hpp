// Production screening on top of the network analyzer (extension).
//
// The paper motivates BIST with test economics; this module turns the
// analyzer into the go/no-go instrument a production flow needs: spec
// masks over frequency, conservative interval-based pass/fail (a die
// passes only if its *guaranteed* measurement interval sits inside the
// mask), and Monte Carlo lot screening across process draws.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/network_analyzer.hpp"

namespace bistna::core {

/// One gain-mask point: at f_hz the gain must lie within [min, max] dB.
struct gain_limit {
    double f_hz = 0.0;
    double gain_db_min = 0.0;
    double gain_db_max = 0.0;
    std::string name;
};

/// A spec mask: gain limits plus an optional stimulus self-test window.
struct spec_mask {
    std::vector<gain_limit> limits;
    double stimulus_volts_nominal = 0.3;
    double stimulus_tolerance = 0.05; ///< relative

    /// Mask for the paper's 1 kHz Butterworth DUT.
    static spec_mask paper_lowpass();
};

/// Per-limit screening outcome.  Beyond pass/fail it records everything a
/// downstream fault classifier needs (limit id, measured gain *and* phase,
/// signed margin), so a failing die can be diagnosed from its report alone
/// without re-measuring.
struct limit_result {
    gain_limit limit;
    std::size_t limit_index = 0; ///< position in the spec mask
    double measured_db = 0.0;
    interval measured_bounds_db;
    double phase_deg = 0.0;      ///< measured phase at the limit frequency
    interval phase_deg_bounds;
    /// Worst-case distance of the guaranteed gain interval to the mask
    /// window (positive: passes with that much room; negative: fails by
    /// that much).
    double margin_db = 0.0;
    bool passed = false;
};

/// Extra acquisitions / policies for a screening run.  The defaults are the
/// plain production flow; the diag subsystem turns both knobs on so every
/// die leaves screening with a complete fault signature.
struct screening_options {
    /// Keep measuring the mask limits (and distortion) after a failed
    /// stimulus self-test instead of early-returning.  The die still fails,
    /// but its report carries the data a classifier needs.
    bool continue_after_self_test_failure = false;
    /// Also measure harmonic distortion of the DUT output (one extra
    /// acquisition per harmonic at distortion_f_hz).
    bool measure_distortion = false;
    double distortion_f_hz = 0.0; ///< 0 picks the first mask limit's frequency
    std::size_t distortion_max_harmonic = 3;
};

struct screening_report {
    bool self_test_passed = false;
    double stimulus_volts = 0.0;
    double stimulus_phase_deg = 0.0; ///< calibration-path phase (diagnostics)
    /// Calibrated offset count rate of the evaluator's in-phase channel (0
    /// when the offset mode doesn't calibrate) -- a direct probe of the
    /// modulator pair's offset health.
    double offset_rate = 0.0;
    std::vector<limit_result> limits;
    /// True when the distortion stage ran; thd_db is NaN (never a fake
    /// 0 dB reading) until then -- the same sentinel the acquisition path
    /// uses, so text and binary serializations agree about unmeasured
    /// dice.
    bool distortion_measured = false;
    double thd_db = std::numeric_limits<double>::quiet_NaN();
    double thd_f_hz = 0.0; ///< frequency the THD was measured at
    bool passed = false;
};

/// Self-test verdict on a measured stimulus amplitude (shared by the
/// scalar and batched screening paths).
bool stimulus_self_test(const spec_mask& mask, double stimulus_volts);

/// Pass/fail of one mask limit against a measured Bode point: conservative
/// interval containment, so measurement uncertainty can never produce a
/// false pass.  Shared by the scalar and batched paths.
limit_result evaluate_limit(const gain_limit& limit, const frequency_point& point,
                            std::size_t limit_index = 0);

/// Screen one board (self-test + all mask limits, conservative intervals).
screening_report screen(network_analyzer& analyzer, const spec_mask& mask,
                        const screening_options& options = {});

/// Factory producing a fresh board instance per Monte Carlo draw.
using board_factory = std::function<demonstrator_board(std::uint64_t seed)>;

struct lot_result {
    std::size_t dice = 0;
    std::size_t passed = 0;
    double yield() const {
        return dice == 0 ? 0.0 : static_cast<double>(passed) / static_cast<double>(dice);
    }
    /// Measured-gain distribution at each mask limit across the lot.
    std::vector<summary> gain_distributions;
};

/// Aggregate per-die reports into a lot result (pass count + per-limit
/// gain distributions); dice whose self-test failed contribute no gains.
lot_result aggregate_lot(const std::vector<screening_report>& reports);

/// Screen `dice` process draws; seeds are first_seed, first_seed+1, ...
lot_result screen_lot(const board_factory& factory, const analyzer_settings& settings,
                      const spec_mask& mask, std::size_t dice,
                      std::uint64_t first_seed = 1, const screening_options& options = {});

/// Per-die observer invoked (in die order, on the calling thread) with each
/// finished report -- how the diag subsystem attaches a fault diagnosis to
/// every failing die, and how a sharding exporter streams reports out.
using die_report_hook = std::function<void(std::size_t die, const screening_report&)>;

/// Parallel screen_lot via the sweep engine's thread pool: bit-identical to
/// the sequential version at any thread count (each die is an independent
/// seeded draw).  threads = 0 uses hardware concurrency, 1 runs serially.
/// batch_lanes > 1 additionally groups that many dice per work item and
/// evaluates them in lockstep through the SoA modulator bank -- still
/// bit-identical to the scalar path at any lane count.
lot_result screen_lot_parallel(const board_factory& factory,
                               const analyzer_settings& settings, const spec_mask& mask,
                               std::size_t dice, std::uint64_t first_seed = 1,
                               std::size_t threads = 0, std::size_t batch_lanes = 1,
                               const screening_options& options = {},
                               const die_report_hook& on_report = nullptr);

/// Serialize per-die reports as a CSV document (one row per die, fixed
/// columns derived from the widest report), the first step of sharding a
/// lot across processes/machines: shards write with csv_write, a collector
/// reads them back with screening_reports_from_csv and aggregates.  The
/// die column carries first_die + index, so a shard that screened dice
/// [first_seed, first_seed + n) keeps its global identity (pass its
/// first_seed here).
csv_document screening_reports_to_csv(const std::vector<screening_report>& reports,
                                      std::uint64_t first_die = 0);

/// Inverse of screening_reports_to_csv.  Limit names are not serialized
/// (CSV rows are numeric); pass the spec mask to restore them, or nullptr
/// to leave them empty.  When die_ids is non-null it receives the die
/// column (the shard's global die identities), in row order.
std::vector<screening_report>
screening_reports_from_csv(const csv_document& doc, const spec_mask* mask = nullptr,
                           std::vector<std::uint64_t>* die_ids = nullptr);

} // namespace bistna::core
