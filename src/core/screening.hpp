// Production screening on top of the network analyzer (extension).
//
// The paper motivates BIST with test economics; this module turns the
// analyzer into the go/no-go instrument a production flow needs: spec
// masks over frequency, conservative interval-based pass/fail (a die
// passes only if its *guaranteed* measurement interval sits inside the
// mask), and Monte Carlo lot screening across process draws.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statistics.hpp"
#include "common/units.hpp"
#include "core/network_analyzer.hpp"

namespace bistna::core {

/// One gain-mask point: at f_hz the gain must lie within [min, max] dB.
struct gain_limit {
    double f_hz = 0.0;
    double gain_db_min = 0.0;
    double gain_db_max = 0.0;
    std::string name;
};

/// A spec mask: gain limits plus an optional stimulus self-test window.
struct spec_mask {
    std::vector<gain_limit> limits;
    double stimulus_volts_nominal = 0.3;
    double stimulus_tolerance = 0.05; ///< relative

    /// Mask for the paper's 1 kHz Butterworth DUT.
    static spec_mask paper_lowpass();
};

/// Per-limit screening outcome.
struct limit_result {
    gain_limit limit;
    double measured_db = 0.0;
    interval measured_bounds_db;
    bool passed = false;
};

struct screening_report {
    bool self_test_passed = false;
    double stimulus_volts = 0.0;
    std::vector<limit_result> limits;
    bool passed = false;
};

/// Self-test verdict on a measured stimulus amplitude (shared by the
/// scalar and batched screening paths).
bool stimulus_self_test(const spec_mask& mask, double stimulus_volts);

/// Pass/fail of one mask limit against a measured Bode point: conservative
/// interval containment, so measurement uncertainty can never produce a
/// false pass.  Shared by the scalar and batched paths.
limit_result evaluate_limit(const gain_limit& limit, const frequency_point& point);

/// Screen one board (self-test + all mask limits, conservative intervals).
screening_report screen(network_analyzer& analyzer, const spec_mask& mask);

/// Factory producing a fresh board instance per Monte Carlo draw.
using board_factory = std::function<demonstrator_board(std::uint64_t seed)>;

struct lot_result {
    std::size_t dice = 0;
    std::size_t passed = 0;
    double yield() const {
        return dice == 0 ? 0.0 : static_cast<double>(passed) / static_cast<double>(dice);
    }
    /// Measured-gain distribution at each mask limit across the lot.
    std::vector<summary> gain_distributions;
};

/// Aggregate per-die reports into a lot result (pass count + per-limit
/// gain distributions); dice whose self-test failed contribute no gains.
lot_result aggregate_lot(const std::vector<screening_report>& reports);

/// Screen `dice` process draws; seeds are first_seed, first_seed+1, ...
lot_result screen_lot(const board_factory& factory, const analyzer_settings& settings,
                      const spec_mask& mask, std::size_t dice,
                      std::uint64_t first_seed = 1);

/// Parallel screen_lot via the sweep engine's thread pool: bit-identical to
/// the sequential version at any thread count (each die is an independent
/// seeded draw).  threads = 0 uses hardware concurrency, 1 runs serially.
/// batch_lanes > 1 additionally groups that many dice per work item and
/// evaluates them in lockstep through the SoA modulator bank -- still
/// bit-identical to the scalar path at any lane count.
lot_result screen_lot_parallel(const board_factory& factory,
                               const analyzer_settings& settings, const spec_mask& mask,
                               std::size_t dice, std::uint64_t first_seed = 1,
                               std::size_t threads = 0, std::size_t batch_lanes = 1);

} // namespace bistna::core
