// The network analyzer (paper Fig. 1, sections II-III.C).
//
// Measures a DUT's gain and phase at f_wave = f_master/96 by comparing the
// evaluator's harmonic measurement of the DUT output against a one-time
// calibration measurement of the stimulus itself (DUT bypassed).  Because
// the whole system is clock-normalized -- the generator emits the *same*
// discrete-time waveform at every master clock -- a single calibration
// serves every frequency point, exactly as the paper states ("this
// calibration only needs to be performed once").
//
// The generator's zero-order hold adds a deterministic sinc(k/16) droop
// and k*pi/16 excess phase between the sampled stimulus and the
// continuous-time wave the DUT filters; the analyzer removes this known
// systematic by default (hold_compensation), the same role as an
// instrument's fixture de-embedding.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/interval.hpp"
#include "core/board.hpp"
#include "eval/evaluator.hpp"

namespace bistna::core {

struct analyzer_settings {
    std::size_t periods = 200;        ///< M for Bode points (paper Fig. 10a/b)
    std::size_t distortion_periods = 400; ///< M for harmonic distortion (Fig. 10c)
    std::size_t settle_periods = 32;
    eval::evaluator_config evaluator;
    bool hold_compensation = true;
    /// Re-measure the stimulus at every frequency point instead of reusing
    /// the single calibration (ablation of the paper's one-time-calibration
    /// claim; see bench_ablation_sync).
    bool recalibrate_per_point = false;
};

/// Calibration-path measurement of the stimulus.
struct stimulus_calibration {
    eval::amplitude_measurement amplitude;
    eval::phase_measurement phase;
};

/// One Bode point with guaranteed error bounds (from eqs. (4)-(5)).
struct frequency_point {
    hertz f_wave{0.0};
    double gain_db = 0.0;
    interval gain_db_bounds;
    double phase_deg = 0.0;
    interval phase_deg_bounds;
    double ideal_gain_db = 0.0;  ///< ground truth of the drawn DUT instance
    double ideal_phase_deg = 0.0;
};

/// Wrap a calibration-path harmonic measurement as a stimulus calibration.
/// When the phase is undetermined (amplitude too small for M periods --
/// only a catastrophically faulted stimulus path gets there) the point
/// estimate is kept with a full-circle interval, so screening can record
/// the die as failing instead of aborting.  Shared by the scalar analyzer
/// and the batched paths.
stimulus_calibration make_stimulus_calibration(const eval::harmonic_measurement& harmonic);

/// Assemble one Bode point from its two harmonic measurements -- the
/// stimulus calibration and the DUT-path output.  This is the pure
/// arithmetic tail of network_analyzer::measure_point (interval gain
/// quotient, phase difference/unwrap, hold de-embedding, drawn-instance
/// ground truth), factored out so the batched sweep/screening pipeline
/// produces bit-identical points from lockstep acquisitions.
frequency_point assemble_frequency_point(hertz f_wave, const stimulus_calibration& input,
                                         const eval::harmonic_measurement& output,
                                         bool hold_compensation,
                                         const dut::device_under_test& dut);

/// Harmonic-distortion readout (Fig. 10c).
struct distortion_result {
    hertz f_wave{0.0};
    double fundamental_volts = 0.0;
    std::vector<double> harmonic_dbc;          ///< H2.. relative to fundamental
    std::vector<interval> harmonic_dbc_bounds;
    double thd_db = 0.0;
};

class network_analyzer {
public:
    network_analyzer(demonstrator_board& board, analyzer_settings settings);

    /// Characterize the stimulus through the calibration path (cached).
    const stimulus_calibration& calibrate();

    /// Inject a previously measured calibration instead of running the
    /// calibration path (the system is clock-normalized, so one stimulus
    /// characterization is valid for every analyzer on the same board
    /// design; used by the sweep engine to share one calibration across a
    /// batch).
    void set_calibration(stimulus_calibration calibration) {
        calibration_ = std::move(calibration);
    }

    /// Attach a shared stimulus-record cache to the underlying board: the
    /// calibration path, measure_point and measure_distortion then all
    /// reuse one clock-normalized staircase render per (amplitude, periods,
    /// settle) instead of re-simulating the generator at every frequency.
    /// Bit-identical to the uncached path; safe to share across the
    /// analyzers of a concurrent batch (see sweep_engine).
    void set_stimulus_cache(std::shared_ptr<stimulus_cache> cache) {
        board_.set_stimulus_cache(std::move(cache));
    }

    /// Measure the DUT at one frequency point.
    frequency_point measure_point(hertz f_wave);

    /// Bode sweep over a list of frequencies (Fig. 10a/b).
    std::vector<frequency_point> bode_sweep(const std::vector<hertz>& frequencies);

    /// Harmonic distortion of the DUT output at one frequency (Fig. 10c).
    /// Measures harmonics 1..max_harmonic that satisfy the alignment rule.
    distortion_result measure_distortion(hertz f_wave, std::size_t max_harmonic = 3);

    const analyzer_settings& settings() const noexcept { return settings_; }
    demonstrator_board& board() noexcept { return board_; }

    /// The evaluator this analyzer measures with (diagnostics read its
    /// extractor's calibrated offset rates -- a direct probe of the
    /// modulator pair's health).
    eval::sinewave_evaluator& evaluator() noexcept { return evaluator_; }

private:
    stimulus_calibration measure_stimulus(const sim::timebase& tb);

    demonstrator_board& board_;
    analyzer_settings settings_;
    eval::sinewave_evaluator evaluator_;
    std::optional<stimulus_calibration> calibration_;
};

} // namespace bistna::core
