#include "core/board.hpp"

#include <span>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace bistna::core {

demonstrator_board::demonstrator_board(gen::generator_params generator_params,
                                       std::unique_ptr<dut::device_under_test> dut)
    : gen_params_(generator_params), dut_(std::move(dut)) {
    BISTNA_EXPECTS(dut_ != nullptr, "board requires a DUT (use bypass_dut for none)");
}

std::vector<double> demonstrator_board::render(const sim::timebase& tb, std::size_t periods,
                                               signal_path path,
                                               std::size_t settle_periods) {
    BISTNA_EXPECTS(periods > 0, "must render at least one period");

    const auto staircase = stimulus_record(periods, settle_periods);
    return render_from_stimulus(*staircase, tb, periods, path, settle_periods);
}

stimulus_cache::record_ptr
demonstrator_board::stimulus_record(std::size_t periods, std::size_t settle_periods) const {
    if (stimulus_cache_) {
        return stimulus_cache_->get_or_render(
            stimulus_cache_key(periods, settle_periods),
            [&] { return render_stimulus(periods, settle_periods); });
    }
    return std::make_shared<const stimulus_cache::record>(
        render_stimulus(periods, settle_periods));
}

std::vector<double> demonstrator_board::render_stimulus(std::size_t periods,
                                                        std::size_t settle_periods) const {
    BISTNA_EXPECTS(periods > 0, "must render at least one period");

    // A fresh generator per render: the hardware is reset between
    // acquisitions, and rendering from generator phase 0 keeps records
    // phase-coherent across calibration and measurement runs.  The staircase
    // is a pure function of (generator params, amplitude, period counts), so
    // repeated renders -- and therefore cached reuse -- are bit-identical.
    gen::sinewave_generator generator(gen_params_);
    generator.set_amplitude(va_diff_);

    const std::size_t hold = sim::timebase::generator_divider; // 6 f_eva ticks
    const std::size_t total_periods = settle_periods + periods;
    const std::size_t total_samples = total_periods * sim::timebase::oversampling_ratio;

    std::vector<double> staircase;
    staircase.reserve(total_samples);
    double held = 0.0;
    sim::clock_divider divider(hold);
    for (std::size_t n = 0; n < total_samples; ++n) {
        if (divider.tick()) {
            held = generator.step(); // generator updates at f_gen = f_eva/6
        }
        staircase.push_back(held);
    }
    return staircase;
}

std::vector<double> demonstrator_board::render_from_stimulus(
    std::span<const double> staircase, const sim::timebase& tb, std::size_t periods,
    signal_path path, std::size_t settle_periods) {
    BISTNA_EXPECTS(periods > 0, "must render at least one period");
    const std::size_t total_samples = tb.samples_for_periods(settle_periods + periods);
    BISTNA_EXPECTS(staircase.size() == total_samples,
                   "staircase length does not match the requested period counts");
    const std::size_t keep_from = tb.samples_for_periods(settle_periods);

    if (path == signal_path::calibration) {
        // Dashed path of Fig. 1: the evaluator samples the staircase itself.
        const auto tail = staircase.subspan(keep_from);
        return std::vector<double>(tail.begin(), tail.end());
    }

    // The DUT filters the staircase in continuous time (exact ZOH state
    // space at this timebase's master clock) -- the only stage of a render
    // that actually depends on the master-clock frequency.  Two block calls
    // over one DUT state: the settle prefix lands in a discard buffer, the
    // kept tail is written straight into the record (no full-length copy).
    dut_->reset();
    dut_->prepare(tb.master().value);
    std::vector<double> discard(keep_from);
    dut_->process_block(staircase.first(keep_from), discard);
    std::vector<double> record(total_samples - keep_from);
    dut_->process_block(staircase.subspan(keep_from), record);
    return record;
}

stimulus_key demonstrator_board::stimulus_cache_key(std::size_t periods,
                                                    std::size_t settle_periods) const {
    stimulus_key key;
    key.design_fingerprint = gen_params_.fingerprint();
    key.amplitude_bits = canonical_double_bits(va_diff_.value);
    key.periods = periods;
    key.settle_periods = settle_periods;
    return key;
}

eval::sample_source demonstrator_board::as_source(std::vector<double> record) {
    auto shared = std::make_shared<std::vector<double>>(std::move(record));
    return [shared](std::size_t n) {
        BISTNA_EXPECTS(n < shared->size(), "sample index beyond rendered record");
        return (*shared)[n];
    };
}

} // namespace bistna::core
