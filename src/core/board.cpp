#include "core/board.hpp"

#include "common/error.hpp"

namespace bistna::core {

demonstrator_board::demonstrator_board(gen::generator_params generator_params,
                                       std::unique_ptr<dut::device_under_test> dut)
    : gen_params_(generator_params), dut_(std::move(dut)) {
    BISTNA_EXPECTS(dut_ != nullptr, "board requires a DUT (use bypass_dut for none)");
}

std::vector<double> demonstrator_board::render(const sim::timebase& tb, std::size_t periods,
                                               signal_path path,
                                               std::size_t settle_periods) {
    BISTNA_EXPECTS(periods > 0, "must render at least one period");

    // Fresh instances per render: the hardware is reset between
    // acquisitions, and rendering from generator phase 0 keeps records
    // phase-coherent across calibration and measurement runs.
    gen::sinewave_generator generator(gen_params_);
    generator.set_amplitude(va_diff_);
    dut_->reset();
    dut_->prepare(tb.master().value);

    const std::size_t hold = sim::timebase::generator_divider; // 6 f_eva ticks
    const std::size_t total_periods = settle_periods + periods;
    const std::size_t total_samples = tb.samples_for_periods(total_periods);
    const std::size_t keep_from = tb.samples_for_periods(settle_periods);

    std::vector<double> record;
    record.reserve(tb.samples_for_periods(periods));

    double held = 0.0;
    sim::clock_divider divider(hold);
    for (std::size_t n = 0; n < total_samples; ++n) {
        if (divider.tick()) {
            held = generator.step(); // generator updates at f_gen = f_eva/6
        }
        const double node = path == signal_path::through_dut ? dut_->process(held) : held;
        if (n >= keep_from) {
            record.push_back(node);
        }
    }
    return record;
}

eval::sample_source demonstrator_board::as_source(std::vector<double> record) {
    auto shared = std::make_shared<std::vector<double>>(std::move(record));
    return [shared](std::size_t n) {
        BISTNA_EXPECTS(n < shared->size(), "sample index beyond rendered record");
        return (*shared)[n];
    };
}

} // namespace bistna::core
