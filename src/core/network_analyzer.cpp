#include "core/network_analyzer.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"
#include "eval/square_wave.hpp"

namespace bistna::core {

namespace {

/// Deterministic generator-hold systematics at harmonic k.
///
/// The DUT filters the *continuous-time* staircase: its k-th component is
/// the generator sequence scaled by sinc(k/16) and delayed by half a
/// generator-clock period (3 f_eva samples).  The calibration path instead
/// samples the staircase directly; holding each value over 6 f_eva samples
/// multiplies its k-th DT component by the Dirichlet factor
/// sin(k pi/16)/(6 sin(k pi/96)) with a 2.5-sample delay.  The *difference*
/// -- a 0.5-sample excess lag and a ~0.0013 dB droop at k = 1 -- is what the
/// measured transfer picks up; the analyzer removes it like an instrument's
/// fixture de-embedding.
struct hold_systematics {
    double gain;      ///< amplitude ratio (DUT-path component / cal-path component)
    double phase_rad; ///< excess phase of the DUT path (negative = lag)
};

hold_systematics hold_effect(std::size_t harmonic_k) {
    const double k = static_cast<double>(harmonic_k);
    const std::size_t hold = sim::timebase::generator_divider; // 6
    const std::size_t n = sim::timebase::oversampling_ratio;   // 96

    // DUT-path factor: continuous-time ZOH of the unit generator sequence
    // at harmonic k: sinc(k/16) with a 3-sample (half generator period) lag.
    const double zoh_gain = sinc(k / static_cast<double>(sim::timebase::steps_per_period));
    const double zoh_phase = -k * pi * static_cast<double>(hold) / static_cast<double>(n);

    // Calibration-path factor: demodulate the *known* unit staircase
    // numerically over one period.  This captures both the Dirichlet
    // droop/lag of the 6-sample hold and the square-wave demodulator's
    // pickup of the hold images at (16 j +/- k) f_wave -- the dominant
    // deterministic systematic of the scheme (~1 % at k = 1).
    const eval::demod_reference demod(harmonic_k, n);
    double s1 = 0.0;
    double s2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = std::sin(two_pi * k *
                                  static_cast<double>((i / hold) * hold) /
                                  static_cast<double>(n));
        s1 += x * static_cast<double>(demod.in_phase_sign(i));
        s2 += x * static_cast<double>(demod.quadrature_sign(i));
    }
    s1 /= static_cast<double>(n);
    s2 /= static_cast<double>(n);
    const double c1_mag = std::abs(demod.c1());
    const double cal_gain = std::hypot(s1, s2) / c1_mag;
    const double cal_phase = std::atan2(s1, s2) + std::arg(demod.c1());

    return hold_systematics{zoh_gain / cal_gain, zoh_phase - cal_phase};
}

/// Point-estimate phase with an honest full-circle interval, used whenever
/// the eq. (5) uncertainty box encloses the origin (amplitude too small to
/// pin the phase): the deep-stopband output case and the dead-stimulus
/// calibration case share this exact convention.
eval::phase_measurement fallback_phase(const eval::signature_result& sig) {
    const eval::demod_reference demod(sig.harmonic_k, sig.n_per_period);
    eval::phase_measurement phase;
    phase.harmonic_k = sig.harmonic_k;
    phase.radians = wrap_phase(std::atan2(sig.i1, sig.i2) + std::arg(demod.c1()));
    phase.bounds_radians = interval::centered(phase.radians, pi);
    return phase;
}

} // namespace

stimulus_calibration make_stimulus_calibration(const eval::harmonic_measurement& harmonic) {
    if (harmonic.phase.has_value()) {
        return stimulus_calibration{harmonic.amplitude, *harmonic.phase};
    }
    // Amplitude too small to pin the phase (a healthy stimulus never gets
    // here, but a catastrophically faulted die can): report the point
    // estimate with an honest full-circle interval instead of aborting, so
    // lot screening records the die as failing and moves on.
    return stimulus_calibration{harmonic.amplitude, fallback_phase(harmonic.signature)};
}

frequency_point assemble_frequency_point(hertz f_wave, const stimulus_calibration& input,
                                         const eval::harmonic_measurement& output,
                                         bool hold_compensation,
                                         const dut::device_under_test& dut) {
    // Deep in the stopband the eq. (5) box may reach the origin; report the
    // point estimate with an honest full-circle interval (the huge error
    // bands of the paper's Fig. 10b beyond the DUT's resolvable range).
    const eval::phase_measurement output_phase =
        output.phase.has_value() ? *output.phase : fallback_phase(output.signature);

    frequency_point point;
    point.f_wave = f_wave;

    // Gain: ratio of output to input amplitude (interval quotient, eq. (4)).
    // A stimulus whose guaranteed amplitude interval reaches zero (a dead
    // calibration path on a hard-faulted die) admits no finite gain bound;
    // report the honest unbounded interval rather than aborting.
    const double gain = output.amplitude.volts / input.amplitude.volts;
    const interval gain_bounds =
        input.amplitude.bounds_volts.lo() > 0.0
            ? output.amplitude.bounds_volts / input.amplitude.bounds_volts
            : interval(0.0, std::numeric_limits<double>::infinity());

    // Phase: difference of the two phase measurements (eq. (5)).
    double phase = output_phase.radians - input.phase.radians;
    interval phase_bounds = output_phase.bounds_radians - input.phase.bounds_radians;

    double gain_correction = 1.0;
    double phase_correction = 0.0;
    if (hold_compensation) {
        const auto hold = hold_effect(1);
        gain_correction = 1.0 / hold.gain;
        phase_correction = -hold.phase_rad;
    }
    point.gain_db = amplitude_ratio_to_db(gain * gain_correction);
    point.gain_db_bounds =
        interval(amplitude_ratio_to_db(gain_bounds.lo() * gain_correction),
                 amplitude_ratio_to_db(gain_bounds.hi() * gain_correction));

    phase += phase_correction;
    phase_bounds = phase_bounds + phase_correction;
    // Report phase unwrapped into (-2pi, 0] like a Bode plot of a stable
    // low-pass (0 to -180 degrees for a 2nd-order DUT).
    double wrapped = wrap_phase(phase);
    if (wrapped > 0.5) { // small positive noise near 0 stays near 0
        wrapped -= two_pi;
    }
    const double shift = wrapped - phase;
    point.phase_deg = rad_to_deg(wrapped);
    point.phase_deg_bounds = interval(rad_to_deg(phase_bounds.lo() + shift),
                                      rad_to_deg(phase_bounds.hi() + shift));

    // Ground truth from the drawn DUT instance.
    const auto ideal = dut.ideal_response(f_wave.value);
    point.ideal_gain_db = amplitude_ratio_to_db(std::abs(ideal));
    double ideal_phase = std::arg(ideal);
    if (ideal_phase > 0.5) {
        ideal_phase -= two_pi;
    }
    point.ideal_phase_deg = rad_to_deg(ideal_phase);
    return point;
}

network_analyzer::network_analyzer(demonstrator_board& board, analyzer_settings settings)
    : board_(board), settings_(settings), evaluator_(settings.evaluator) {}

stimulus_calibration network_analyzer::measure_stimulus(const sim::timebase& tb) {
    auto record = board_.render(tb, settings_.periods, signal_path::calibration,
                                settings_.settle_periods);
    const auto source = demonstrator_board::as_source(std::move(record));
    return make_stimulus_calibration(evaluator_.measure_harmonic(source, 1, settings_.periods));
}

const stimulus_calibration& network_analyzer::calibrate() {
    if (!calibration_) {
        // Clock-normalized system: any master clock yields the same DT
        // stimulus, so calibrate at a convenient one.
        const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
        calibration_ = measure_stimulus(tb);
    }
    return *calibration_;
}

frequency_point network_analyzer::measure_point(hertz f_wave) {
    const auto tb = sim::timebase::for_wave_frequency(f_wave);
    const stimulus_calibration input =
        settings_.recalibrate_per_point ? measure_stimulus(tb) : calibrate();

    auto record = board_.render(tb, settings_.periods, signal_path::through_dut,
                                settings_.settle_periods);
    const auto source = demonstrator_board::as_source(std::move(record));
    const auto output = evaluator_.measure_harmonic(source, 1, settings_.periods);
    return assemble_frequency_point(f_wave, input, output, settings_.hold_compensation,
                                    board_.dut());
}

std::vector<frequency_point> network_analyzer::bode_sweep(
    const std::vector<hertz>& frequencies) {
    std::vector<frequency_point> points;
    points.reserve(frequencies.size());
    for (hertz f : frequencies) {
        points.push_back(measure_point(f));
    }
    return points;
}

distortion_result network_analyzer::measure_distortion(hertz f_wave,
                                                       std::size_t max_harmonic) {
    BISTNA_EXPECTS(max_harmonic >= 2, "distortion needs at least harmonic 2");
    const auto tb = sim::timebase::for_wave_frequency(f_wave);
    auto record = board_.render(tb, settings_.distortion_periods, signal_path::through_dut,
                                settings_.settle_periods);
    const auto source = demonstrator_board::as_source(std::move(record));

    distortion_result result;
    result.f_wave = f_wave;

    std::vector<eval::amplitude_measurement> amplitudes;
    for (std::size_t k = 1; k <= max_harmonic; ++k) {
        if (!eval::demod_reference::alignment_ok(k, settings_.evaluator.n_per_period)) {
            continue;
        }
        amplitudes.push_back(
            evaluator_.measure_harmonic(source, k, settings_.distortion_periods).amplitude);
    }
    BISTNA_EXPECTS(amplitudes.size() >= 2, "not enough measurable harmonics");

    result.fundamental_volts = amplitudes.front().volts;
    const auto& fund = amplitudes.front();
    for (std::size_t i = 1; i < amplitudes.size(); ++i) {
        const auto& h = amplitudes[i];
        result.harmonic_dbc.push_back(amplitude_ratio_to_db(h.volts / fund.volts));
        result.harmonic_dbc_bounds.push_back(
            interval(amplitude_ratio_to_db(h.bounds_volts.lo() / fund.bounds_volts.hi()),
                     amplitude_ratio_to_db(h.bounds_volts.hi() / fund.bounds_volts.lo())));
    }
    result.thd_db = eval::compute_thd_lenient(amplitudes).db;
    return result;
}

} // namespace bistna::core
