#include "core/job_queue.hpp"

namespace bistna::core {

const char* job_state_name(job_state state) noexcept {
    switch (state) {
    case job_state::running:
        return "running";
    case job_state::succeeded:
        return "succeeded";
    case job_state::cancelled:
        return "cancelled";
    case job_state::failed:
        return "failed";
    }
    return "unknown";
}

namespace {

std::size_t resolve_threads(std::size_t threads) {
    if (threads != 0) {
        return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace

job_queue::job_queue(std::size_t threads) : threads_(resolve_threads(threads)) {}

job_queue::~job_queue() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Cancel whatever has not started: the remaining tasks still run
        // (each is a cheap skip under the cancel flag), so every channel
        // accounts for all of its items and every handle reaches a
        // terminal state -- nothing blocks forever on a dropped queue.
        for (const auto& job : jobs_) {
            job->request_cancel();
        }
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

std::size_t job_queue::jobs_submitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

std::size_t job_queue::jobs_pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

void job_queue::enqueue(std::shared_ptr<detail::job_record> record) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        BISTNA_EXPECTS(!stopping_, "submit on a destroyed job_queue");
        ++submitted_;
        jobs_.push_back(std::move(record));
        // Lazy spawn: a queue that never receives work never starts a
        // thread (many tests construct engines they use once or not at
        // all).  The pool is sized once and never shrinks until
        // destruction.
        while (workers_.size() < threads_) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }
    work_cv_.notify_all();
}

void job_queue::worker_loop() {
    for (;;) {
        std::shared_ptr<detail::job_record> job;
        std::size_t task = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                return; // stopping and drained
            }
            // Jobs drain in submission order; concurrent jobs interleave
            // only when the front job has no unclaimed tasks left (its
            // tail may still be in flight on other workers).
            job = jobs_.front();
            task = job->next_task++;
            if (job->next_task == job->task_count) {
                jobs_.pop_front();
            }
        }
        job->run_task(task);
    }
}

} // namespace bistna::core
