#include "core/job_queue.hpp"

#include <string>

#include "telemetry/metrics.hpp"

namespace bistna::core {

namespace {

// Interned once; recording through them is a no-op unless a registry is
// attached (see telemetry/metrics.hpp).
telemetry::metric_id depth_histogram() {
    static const telemetry::metric_id id =
        telemetry::histogram_id("job_queue.depth");
    return id;
}

telemetry::metric_id wait_histogram() {
    static const telemetry::metric_id id =
        telemetry::histogram_id("job_queue.task.wait_ns");
    return id;
}

telemetry::metric_id run_histogram() {
    static const telemetry::metric_id id =
        telemetry::histogram_id("job_queue.task.run_ns");
    return id;
}

telemetry::metric_id items_counter() {
    static const telemetry::metric_id id =
        telemetry::counter_id("job_queue.items_computed");
    return id;
}

} // namespace

void job_progress::items_done(std::size_t n) const noexcept {
    if (computed_ != nullptr) {
        computed_->fetch_add(n, std::memory_order_relaxed);
    }
    telemetry::counter_add(items_counter(), n);
}

const char* job_state_name(job_state state) noexcept {
    switch (state) {
    case job_state::running:
        return "running";
    case job_state::succeeded:
        return "succeeded";
    case job_state::cancelled:
        return "cancelled";
    case job_state::failed:
        return "failed";
    }
    return "unknown";
}

namespace {

std::size_t resolve_threads(std::size_t threads) {
    if (threads != 0) {
        return threads;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

} // namespace

job_queue::job_queue(std::size_t threads, job_schedule schedule)
    : threads_(resolve_threads(threads)), schedule_(schedule) {}

job_queue::~job_queue() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Cancel whatever has not started: the remaining tasks still run
        // (each is a cheap skip under the cancel flag), so every channel
        // accounts for all of its items and every handle reaches a
        // terminal state -- nothing blocks forever on a dropped queue.
        for (const auto& job : jobs_) {
            job->request_cancel();
        }
    }
    work_cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

std::size_t job_queue::jobs_submitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

std::size_t job_queue::jobs_pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

void job_queue::enqueue(std::shared_ptr<detail::job_record> record) {
    {
        if (telemetry::attached()) {
            record->enqueued_ns = telemetry::now_ns();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        BISTNA_EXPECTS(!stopping_, "submit on a destroyed job_queue");
        ++submitted_;
        jobs_.push_back(std::move(record));
        telemetry::histogram_record(depth_histogram(), jobs_.size());
        // Lazy spawn: a queue that never receives work never starts a
        // thread (many tests construct engines they use once or not at
        // all).  The pool is sized once and never shrinks until
        // destruction.
        while (workers_.size() < threads_) {
            const std::size_t index = workers_.size();
            workers_.emplace_back([this, index] { worker_loop(index); });
        }
    }
    work_cv_.notify_all();
}

void job_queue::worker_loop(std::size_t worker_index) {
    telemetry::set_thread_name("jq-worker-" + std::to_string(worker_index));
    for (;;) {
        std::shared_ptr<detail::job_record> job;
        std::size_t task = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
            if (jobs_.empty()) {
                return; // stopping and drained
            }
            // fifo drains jobs in submission order (concurrent jobs
            // interleave only when the front job has no unclaimed tasks
            // left); round_robin claims one task per job in rotation, so
            // every live job keeps making progress.
            std::size_t pick = 0;
            if (schedule_ == job_schedule::round_robin) {
                if (rr_cursor_ >= jobs_.size()) {
                    rr_cursor_ = 0;
                }
                pick = rr_cursor_;
            }
            job = jobs_[pick];
            task = job->next_task++;
            if (job->next_task == job->task_count) {
                // A drained job leaves the rotation; the cursor stays put,
                // so the job that slides into this slot is served next.
                jobs_.erase(jobs_.begin() +
                            static_cast<std::ptrdiff_t>(pick));
            } else if (schedule_ == job_schedule::round_robin) {
                ++rr_cursor_;
            }
        }
        // Clock reads only when a registry is listening: the detached hot
        // path stays one atomic load per task.
        const bool instrument = telemetry::attached();
        std::uint64_t claimed_ns = 0;
        if (instrument) {
            claimed_ns = telemetry::now_ns();
            if (job->enqueued_ns != 0 && claimed_ns >= job->enqueued_ns) {
                telemetry::histogram_record(wait_histogram(),
                                            claimed_ns - job->enqueued_ns);
            }
        }
        job->run_task(task);
        if (instrument) {
            telemetry::histogram_record(run_histogram(),
                                        telemetry::now_ns() - claimed_ns);
        }
    }
}

} // namespace bistna::core
