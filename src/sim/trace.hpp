// Signal trace recorder: captures a named sample stream during a
// simulation run and dumps it to CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace bistna::sim {

class trace {
public:
    trace() = default;
    explicit trace(std::string name, double sample_rate_hz = 0.0)
        : name_(std::move(name)), sample_rate_hz_(sample_rate_hz) {}

    void push(double value) { samples_.push_back(value); }
    void reserve(std::size_t n) { samples_.reserve(n); }
    void clear() noexcept { samples_.clear(); }

    const std::vector<double>& samples() const noexcept { return samples_; }
    std::size_t size() const noexcept { return samples_.size(); }
    bool empty() const noexcept { return samples_.empty(); }
    const std::string& name() const noexcept { return name_; }
    double sample_rate_hz() const noexcept { return sample_rate_hz_; }

    /// Write "time,value" rows; requires a sample rate.
    void write_csv(const std::string& path) const;

private:
    std::string name_;
    double sample_rate_hz_ = 0.0;
    std::vector<double> samples_;
};

} // namespace bistna::sim
