// Process-variation models.
//
// Capacitor ratios in 0.35 um CMOS match to roughly 0.1 %; op-amp gain and
// offsets vary with process corner.  These draws set the harmonic floor the
// paper measures (Fig. 8b: SFDR 70 dB), so they are explicit, seeded and
// documented rather than hidden constants.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace bistna::sim {

/// Process corner for behavioral parameter scaling.
enum class corner {
    typical,
    slow, ///< lower op-amp gain/bandwidth
    fast  ///< higher op-amp gain/bandwidth
};

/// Mismatch / variation magnitudes for a fabrication run.
struct process_params {
    double cap_mismatch_sigma = 1.0e-3;    ///< relative sigma of capacitor ratios (~0.1 %)
    double opamp_gain_sigma_db = 2.0;      ///< sigma of op-amp DC gain in dB
    double comparator_offset_sigma = 2e-3; ///< volts
    double opamp_offset_sigma = 1e-3;      ///< volts
    corner process_corner = corner::typical;

    /// An idealized process with no variation (for ground-truth runs).
    static process_params ideal();
    /// Defaults representative of the paper's 0.35 um technology.
    static process_params cmos035();
};

/// Draws per-instance component values for one fabricated die.
class process_sampler {
public:
    process_sampler(process_params params, rng generator);

    /// A capacitor ratio subject to matching error: nominal * (1 + delta).
    double matched_capacitor(double nominal);

    /// Draw a vector of matched capacitors sharing the same sigma.
    std::vector<double> matched_capacitors(const std::vector<double>& nominals);

    /// Op-amp DC gain in dB around a nominal, with corner shift.
    double opamp_gain_db(double nominal_db);

    /// Comparator input-referred offset (volts).
    double comparator_offset();

    /// Op-amp input-referred offset (volts).
    double opamp_offset();

    const process_params& params() const noexcept { return params_; }

private:
    process_params params_;
    rng rng_;
};

} // namespace bistna::sim
