#include "sim/trace.hpp"

#include "common/csv.hpp"
#include "common/error.hpp"

namespace bistna::sim {

void trace::write_csv(const std::string& path) const {
    BISTNA_EXPECTS(sample_rate_hz_ > 0.0, "trace needs a sample rate to write time axis");
    csv_writer writer(path);
    writer.header({"time_s", name_.empty() ? std::string("value") : name_});
    const double ts = 1.0 / sample_rate_hz_;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        writer.row({static_cast<double>(i) * ts, samples_[i]});
    }
}

} // namespace bistna::sim
