#include "sim/clock_divider.hpp"

// clock_divider is header-only; this translation unit anchors the library.
namespace bistna::sim {
namespace {
[[maybe_unused]] constexpr int anchor = 0;
} // namespace
} // namespace bistna::sim
