// Noise models for the behavioral analog substrate.
//
// The dominant noise in SC circuits is sampled thermal noise: every
// capacitor-sampling operation freezes kT/C volts (rms) onto the cap.  The
// lab measurements in the paper sit on this floor, so the simulator
// reproduces it with seeded Gaussian sources.
#pragma once

#include "common/rng.hpp"

namespace bistna::sim {

/// Boltzmann constant (J/K).
inline constexpr double boltzmann_k = 1.380649e-23;

/// rms voltage of kT/C sampling noise for a capacitance in farads.
double ktc_noise_rms(double capacitance_farad, double temperature_kelvin = 300.0);

/// A seeded Gaussian voltage-noise source.
class noise_source {
public:
    /// rms = 0 produces a silent source (ideal element).
    noise_source(double rms_volts, rng generator)
        : rms_(rms_volts), rng_(generator) {}

    /// One noise sample (volts).
    double sample() noexcept { return rms_ == 0.0 ? 0.0 : rng_.gaussian(0.0, rms_); }

    double rms() const noexcept { return rms_; }

private:
    double rms_;
    rng rng_;
};

} // namespace bistna::sim
