#include "sim/process.hpp"

namespace bistna::sim {

process_params process_params::ideal() {
    process_params p;
    p.cap_mismatch_sigma = 0.0;
    p.opamp_gain_sigma_db = 0.0;
    p.comparator_offset_sigma = 0.0;
    p.opamp_offset_sigma = 0.0;
    return p;
}

process_params process_params::cmos035() { return process_params{}; }

process_sampler::process_sampler(process_params params, rng generator)
    : params_(params), rng_(generator) {}

double process_sampler::matched_capacitor(double nominal) {
    return nominal * (1.0 + rng_.gaussian(0.0, params_.cap_mismatch_sigma));
}

std::vector<double> process_sampler::matched_capacitors(const std::vector<double>& nominals) {
    std::vector<double> drawn;
    drawn.reserve(nominals.size());
    for (double nominal : nominals) {
        drawn.push_back(matched_capacitor(nominal));
    }
    return drawn;
}

double process_sampler::opamp_gain_db(double nominal_db) {
    double corner_shift = 0.0;
    switch (params_.process_corner) {
    case corner::typical:
        break;
    case corner::slow:
        corner_shift = -4.0;
        break;
    case corner::fast:
        corner_shift = +3.0;
        break;
    }
    return nominal_db + corner_shift + rng_.gaussian(0.0, params_.opamp_gain_sigma_db);
}

double process_sampler::comparator_offset() {
    return rng_.gaussian(0.0, params_.comparator_offset_sigma);
}

double process_sampler::opamp_offset() {
    return rng_.gaussian(0.0, params_.opamp_offset_sigma);
}

} // namespace bistna::sim
