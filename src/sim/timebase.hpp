// The network analyzer's clocking scheme (paper Fig. 1).
//
// A single external master clock at f_eva drives everything:
//   - a 1:6 divider produces the generator clock  f_gen  = f_eva / 6
//   - the generator's 16-step sequence produces   f_wave = f_gen / 16
//   - hence the sigma-delta oversampling ratio    N      = f_eva / f_wave = 96
// is set *by construction*.  This "inherent synchronization" is the key
// architectural feature: sweeping the master clock moves f_wave without
// changing N, so evaluation accuracy is frequency-independent.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace bistna::sim {

class timebase {
public:
    /// Divider between master clock and generator clock (Fig. 1: "1/6").
    static constexpr std::size_t generator_divider = 6;
    /// Generator steps per output period (Fig. 2c: 16 * 1/f_gen).
    static constexpr std::size_t steps_per_period = 16;
    /// Oversampling ratio N = f_eva / f_wave fixed by construction.
    static constexpr std::size_t oversampling_ratio = generator_divider * steps_per_period;

    /// Build a timebase from the master clock; throws precondition_error on
    /// a non-positive frequency.
    explicit timebase(hertz master_clock);

    /// Build a timebase that produces the requested signal frequency
    /// (master = 96 * f_wave).
    static timebase for_wave_frequency(hertz f_wave);

    hertz master() const noexcept { return master_; }            ///< f_eva
    hertz generator_clock() const noexcept;                      ///< f_gen = f_eva/6
    hertz wave_frequency() const noexcept;                       ///< f_wave = f_eva/96
    seconds sample_period() const noexcept;                      ///< Ts = 1/f_eva
    seconds wave_period() const noexcept;                        ///< T = 1/f_wave

    /// Samples per signal period (= N = 96).
    static constexpr std::size_t samples_per_period() noexcept { return oversampling_ratio; }

    /// Number of master-clock samples covering M signal periods.
    std::size_t samples_for_periods(std::size_t m) const noexcept {
        return m * oversampling_ratio;
    }

private:
    hertz master_;
};

} // namespace bistna::sim
