#include "sim/noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bistna::sim {

double ktc_noise_rms(double capacitance_farad, double temperature_kelvin) {
    BISTNA_EXPECTS(capacitance_farad > 0.0, "capacitance must be positive");
    BISTNA_EXPECTS(temperature_kelvin > 0.0, "temperature must be positive");
    return std::sqrt(boltzmann_k * temperature_kelvin / capacitance_farad);
}

} // namespace bistna::sim
