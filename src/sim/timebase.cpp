#include "sim/timebase.hpp"

#include "common/error.hpp"

namespace bistna::sim {

timebase::timebase(hertz master_clock) : master_(master_clock) {
    BISTNA_EXPECTS(master_clock.value > 0.0, "master clock frequency must be positive");
}

timebase timebase::for_wave_frequency(hertz f_wave) {
    BISTNA_EXPECTS(f_wave.value > 0.0, "wave frequency must be positive");
    return timebase(hertz{f_wave.value * static_cast<double>(oversampling_ratio)});
}

hertz timebase::generator_clock() const noexcept {
    return master_ / static_cast<double>(generator_divider);
}

hertz timebase::wave_frequency() const noexcept {
    return master_ / static_cast<double>(oversampling_ratio);
}

seconds timebase::sample_period() const noexcept { return period_of(master_); }

seconds timebase::wave_period() const noexcept { return period_of(wave_frequency()); }

} // namespace bistna::sim
