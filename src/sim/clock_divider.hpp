// Integer clock divider (the Fig. 1 "1/6" block) and a two-phase
// non-overlapping clock sequencer for SC blocks.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace bistna::sim {

/// Divide an input tick stream by an integer ratio.  tick() is called once
/// per fast-clock cycle and returns true on the cycles where the divided
/// clock fires (once every `ratio` calls, on the first).
class clock_divider {
public:
    explicit clock_divider(std::size_t ratio) : ratio_(ratio) {
        BISTNA_EXPECTS(ratio > 0, "divider ratio must be positive");
    }

    /// Advance one fast-clock cycle; true when the slow clock fires.
    bool tick() noexcept {
        const bool fires = (count_ == 0);
        count_ = (count_ + 1) % ratio_;
        return fires;
    }

    void reset() noexcept { count_ = 0; }
    std::size_t ratio() const noexcept { return ratio_; }
    std::size_t phase() const noexcept { return count_; }

private:
    std::size_t ratio_;
    std::size_t count_ = 0;
};

/// Phases of a two-phase non-overlapping SC clock within one clock cycle.
enum class sc_phase {
    phase1, ///< sampling phase (psi_1 / phi_1)
    phase2  ///< charge-transfer phase (psi_2 / phi_2)
};

} // namespace bistna::sim
