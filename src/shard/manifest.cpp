#include "shard/manifest.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "diag/fault_model.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"
#include "sd/modulator.hpp"

namespace bistna::shard {

namespace {

// The strict JSON parser itself lives in common/json.hpp (shared with the
// telemetry trace tests); this file keeps only the manifest's typed field
// access on top of it.

// --- typed field access ----------------------------------------------------

[[noreturn]] void field_error(const std::string& key, const std::string& what) {
    throw configuration_error("manifest field \"" + key + "\": " + what);
}

double get_number(const json_value& v, const std::string& key) {
    if (v.type != json_value::kind::number) {
        field_error(key, "expected a number");
    }
    return v.num;
}

std::uint64_t get_u64(const json_value& v, const std::string& key) {
    const double num = get_number(v, key);
    if (!(num >= 0.0) || num != std::floor(num) || num > 9.007199254740992e15) {
        field_error(key, "expected a non-negative integer below 2^53");
    }
    return static_cast<std::uint64_t>(num);
}

bool get_bool(const json_value& v, const std::string& key) {
    if (v.type != json_value::kind::boolean) {
        field_error(key, "expected true/false");
    }
    return v.b;
}

std::string get_string(const json_value& v, const std::string& key) {
    if (v.type != json_value::kind::string) {
        field_error(key, "expected a string");
    }
    return v.str;
}

/// Walk an object with a per-key handler; unknown keys are rejected so a
/// typo in a hand-written manifest fails loudly instead of silently
/// running the defaults.
template <typename Handler>
void walk_object(const json_value& v, const std::string& what, Handler&& handler) {
    if (v.type != json_value::kind::object) {
        field_error(what, "expected an object");
    }
    for (const auto& [key, value] : v.members) {
        if (!handler(key, value)) {
            field_error(what + "." + key, "unknown key");
        }
    }
}

// Number formatting goes through the shared locale-safe writer
// (bistna::json_number, common/json.hpp): the former ostringstream
// formatting here emitted "0,03" under a comma-decimal global locale --
// invalid JSON that the strict parser then rejected on reload.

const char* offset_name(eval::offset_mode mode) {
    switch (mode) {
    case eval::offset_mode::none: return "none";
    case eval::offset_mode::calibrated: return "calibrated";
    case eval::offset_mode::chopped: return "chopped";
    }
    return "calibrated";
}

eval::offset_mode offset_from_name(const std::string& name) {
    if (name == "none") {
        return eval::offset_mode::none;
    }
    if (name == "calibrated") {
        return eval::offset_mode::calibrated;
    }
    if (name == "chopped") {
        return eval::offset_mode::chopped;
    }
    field_error("offset", "expected none|calibrated|chopped, got \"" + name + "\"");
}

const char* pipeline_name(core::sweep_pipeline pipeline) {
    return pipeline == core::sweep_pipeline::reference ? "reference" : "lane_major";
}

core::sweep_pipeline pipeline_from_name(const std::string& name) {
    if (name == "reference") {
        return core::sweep_pipeline::reference;
    }
    if (name == "lane_major") {
        return core::sweep_pipeline::lane_major;
    }
    field_error("engine.pipeline", "expected reference|lane_major, got \"" + name + "\"");
}

} // namespace

const char* workload_name(workload_kind kind) noexcept {
    return kind == workload_kind::screening ? "screening" : "dictionary";
}

std::uint64_t lot_manifest::total_units() const {
    if (workload == workload_kind::screening) {
        return dice;
    }
    return 1 + static_cast<std::uint64_t>(diag::default_catalog().size()) *
                   static_cast<std::uint64_t>(grid_points);
}

core::spec_mask lot_manifest::make_mask() const {
    core::spec_mask mask = core::spec_mask::paper_lowpass();
    if (!custom_limits.empty()) {
        mask.limits = custom_limits;
    }
    if (stimulus_volts_nominal) {
        mask.stimulus_volts_nominal = *stimulus_volts_nominal;
    }
    if (stimulus_tolerance) {
        mask.stimulus_tolerance = *stimulus_tolerance;
    }
    return mask;
}

core::analyzer_settings lot_manifest::make_settings() const {
    core::analyzer_settings settings;
    settings.periods = periods;
    settings.settle_periods = settle_periods;
    settings.distortion_periods = distortion_periods;
    settings.evaluator.calibration_periods = calibration_periods;
    settings.evaluator.offset = offset;
    settings.evaluator.seed = evaluator_seed;
    settings.evaluator.modulator = ideal_modulator ? sd::modulator_params::ideal()
                                                   : sd::modulator_params::cmos035();
    return settings;
}

core::screening_options lot_manifest::make_screening_options() const {
    core::screening_options screening;
    screening.measure_distortion = measure_distortion;
    screening.continue_after_self_test_failure = continue_after_self_test_failure;
    screening.distortion_max_harmonic = distortion_max_harmonic;
    screening.distortion_f_hz = distortion_f_hz;
    return screening;
}

core::board_factory lot_manifest::make_factory() const {
    const auto generator =
        ideal_generator ? gen::generator_params::ideal() : gen::generator_params{};
    const double sigma_copy = sigma;
    const double amplitude = amplitude_mv;
    return [generator, sigma_copy, amplitude](std::uint64_t seed) {
        core::demonstrator_board board(generator, dut::make_paper_dut(sigma_copy, seed));
        board.set_amplitude(millivolt(amplitude));
        return board;
    };
}

diag::die_design lot_manifest::make_die_design() const {
    diag::die_design design;
    if (ideal_generator) {
        design.generator = gen::generator_params::ideal();
    }
    design.dut_tolerance_sigma = sigma;
    design.amplitude_volts = amplitude_mv * 1e-3;
    return design;
}

core::sweep_engine_options lot_manifest::make_engine_options() const {
    core::sweep_engine_options options;
    options.threads = threads;
    options.batch_lanes = batch_lanes;
    options.pipeline = pipeline;
    return options;
}

std::string lot_manifest::to_json() const {
    std::ostringstream out;
    out << "{\n"
        << "  \"workload\": \"" << workload_name(workload) << "\",\n"
        << "  \"sigma\": " << json_number(sigma) << ",\n"
        << "  \"amplitude_mv\": " << json_number(amplitude_mv) << ",\n"
        << "  \"generator\": \"" << (ideal_generator ? "ideal" : "cmos035") << "\",\n"
        << "  \"modulator\": \"" << (ideal_modulator ? "ideal" : "cmos035") << "\",\n"
        << "  \"offset\": \"" << offset_name(offset) << "\",\n"
        << "  \"evaluator_seed\": " << evaluator_seed << ",\n"
        << "  \"periods\": " << periods << ",\n"
        << "  \"settle_periods\": " << settle_periods << ",\n"
        << "  \"distortion_periods\": " << distortion_periods << ",\n"
        << "  \"calibration_periods\": " << calibration_periods << ",\n";
    if (!custom_limits.empty()) {
        out << "  \"limits\": [";
        for (std::size_t i = 0; i < custom_limits.size(); ++i) {
            const auto& limit = custom_limits[i];
            out << (i == 0 ? "" : ", ") << "{\"f_hz\": " << json_number(limit.f_hz)
                << ", \"gain_db_min\": " << json_number(limit.gain_db_min)
                << ", \"gain_db_max\": " << json_number(limit.gain_db_max)
                << ", \"name\": \"" << json_escape(limit.name) << "\"}";
        }
        out << "],\n";
    }
    if (stimulus_volts_nominal) {
        out << "  \"stimulus_volts_nominal\": " << json_number(*stimulus_volts_nominal)
            << ",\n";
    }
    if (stimulus_tolerance) {
        out << "  \"stimulus_tolerance\": " << json_number(*stimulus_tolerance) << ",\n";
    }
    out << "  \"measure_distortion\": " << (measure_distortion ? "true" : "false")
        << ",\n"
        << "  \"continue_after_self_test_failure\": "
        << (continue_after_self_test_failure ? "true" : "false") << ",\n"
        << "  \"distortion_max_harmonic\": " << distortion_max_harmonic << ",\n"
        << "  \"distortion_f_hz\": " << json_number(distortion_f_hz) << ",\n"
        << "  \"dice\": " << dice << ",\n"
        << "  \"first_seed\": " << first_seed << ",\n"
        << "  \"dictionary\": {\"grid_points\": " << grid_points
        << ", \"thd_max_harmonic\": " << thd_max_harmonic
        << ", \"nominal_seed\": " << nominal_seed
        << ", \"eval_seed_base\": " << eval_seed_base << "},\n"
        << "  \"engine\": {\"threads\": " << threads << ", \"lanes\": " << batch_lanes
        << ", \"pipeline\": \"" << pipeline_name(pipeline) << "\"}\n"
        << "}\n";
    return out.str();
}

lot_manifest lot_manifest::from_json(std::string_view text) {
    return from_value(parse_json(text, "manifest JSON"));
}

lot_manifest lot_manifest::from_value(const json_value& root) {
    lot_manifest manifest;

    walk_object(root, "manifest", [&](const std::string& key, const json_value& v) {
        if (key == "workload") {
            const std::string name = get_string(v, key);
            if (name == "screening") {
                manifest.workload = workload_kind::screening;
            } else if (name == "dictionary") {
                manifest.workload = workload_kind::dictionary;
            } else {
                field_error(key, "expected screening|dictionary, got \"" + name + "\"");
            }
        } else if (key == "sigma") {
            manifest.sigma = get_number(v, key);
        } else if (key == "amplitude_mv") {
            manifest.amplitude_mv = get_number(v, key);
        } else if (key == "generator" || key == "modulator") {
            const std::string name = get_string(v, key);
            if (name != "ideal" && name != "cmos035") {
                field_error(key, "expected ideal|cmos035, got \"" + name + "\"");
            }
            (key == "generator" ? manifest.ideal_generator : manifest.ideal_modulator) =
                name == "ideal";
        } else if (key == "offset") {
            manifest.offset = offset_from_name(get_string(v, key));
        } else if (key == "evaluator_seed") {
            manifest.evaluator_seed = get_u64(v, key);
        } else if (key == "periods") {
            manifest.periods = get_u64(v, key);
        } else if (key == "settle_periods") {
            manifest.settle_periods = get_u64(v, key);
        } else if (key == "distortion_periods") {
            manifest.distortion_periods = get_u64(v, key);
        } else if (key == "calibration_periods") {
            manifest.calibration_periods = get_u64(v, key);
        } else if (key == "limits") {
            if (v.type != json_value::kind::array) {
                field_error(key, "expected an array");
            }
            for (const auto& element : v.elements) {
                core::gain_limit limit;
                walk_object(element, "limits[]",
                            [&](const std::string& k, const json_value& field) {
                                if (k == "f_hz") {
                                    limit.f_hz = get_number(field, k);
                                } else if (k == "gain_db_min") {
                                    limit.gain_db_min = get_number(field, k);
                                } else if (k == "gain_db_max") {
                                    limit.gain_db_max = get_number(field, k);
                                } else if (k == "name") {
                                    limit.name = get_string(field, k);
                                } else {
                                    return false;
                                }
                                return true;
                            });
                manifest.custom_limits.push_back(std::move(limit));
            }
        } else if (key == "stimulus_volts_nominal") {
            manifest.stimulus_volts_nominal = get_number(v, key);
        } else if (key == "stimulus_tolerance") {
            manifest.stimulus_tolerance = get_number(v, key);
        } else if (key == "measure_distortion") {
            manifest.measure_distortion = get_bool(v, key);
        } else if (key == "continue_after_self_test_failure") {
            manifest.continue_after_self_test_failure = get_bool(v, key);
        } else if (key == "distortion_max_harmonic") {
            manifest.distortion_max_harmonic = get_u64(v, key);
        } else if (key == "distortion_f_hz") {
            manifest.distortion_f_hz = get_number(v, key);
        } else if (key == "dice") {
            manifest.dice = get_u64(v, key);
        } else if (key == "first_seed") {
            manifest.first_seed = get_u64(v, key);
        } else if (key == "dictionary") {
            walk_object(v, key, [&](const std::string& k, const json_value& field) {
                if (k == "grid_points") {
                    manifest.grid_points = get_u64(field, k);
                } else if (k == "thd_max_harmonic") {
                    manifest.thd_max_harmonic = get_u64(field, k);
                } else if (k == "nominal_seed") {
                    manifest.nominal_seed = get_u64(field, k);
                } else if (k == "eval_seed_base") {
                    manifest.eval_seed_base = get_u64(field, k);
                } else {
                    return false;
                }
                return true;
            });
        } else if (key == "engine") {
            walk_object(v, key, [&](const std::string& k, const json_value& field) {
                if (k == "threads") {
                    manifest.threads = get_u64(field, k);
                } else if (k == "lanes") {
                    manifest.batch_lanes = get_u64(field, k);
                } else if (k == "pipeline") {
                    manifest.pipeline = pipeline_from_name(get_string(field, k));
                } else {
                    return false;
                }
                return true;
            });
        } else {
            return false;
        }
        return true;
    });

    if (manifest.grid_points == 0) {
        field_error("dictionary.grid_points", "must be >= 1");
    }
    return manifest;
}

lot_manifest lot_manifest::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw configuration_error("cannot open manifest '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return from_json(text.str());
}

void lot_manifest::save(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw configuration_error("cannot write manifest '" + path + "'");
    }
    out << to_json();
    if (!out.flush()) {
        throw configuration_error("failed writing manifest '" + path + "'");
    }
}

} // namespace bistna::shard
