#include "shard/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "shard/event_log.hpp"
#include "shard/unit_stream.hpp"
#include "store/lot_store.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot_record.hpp"
#include "telemetry/span.hpp"

namespace bistna::shard {

namespace {

/// Die like a worker killed mid-write: flush the valid prefix, append a
/// deliberately torn partial frame, and SIGKILL ourselves -- no unwinding,
/// no destructor flush, exactly the crash the store's tail recovery and
/// the supervisor's retry path exist for.
[[noreturn]] void die_mid_frame(store::lot_store& out) {
    out.flush();
    {
        std::ofstream torn(out.path(), std::ios::binary | std::ios::app);
        const char partial[] = "\x01\x00\x34\x12torn";
        torn.write(partial, sizeof(partial) - 1);
        torn.flush();
    }
    std::raise(SIGKILL);
    std::abort(); // unreachable; raise(SIGKILL) does not return
}

} // namespace

worker_shard_report run_worker_shard(const lot_manifest& manifest,
                                     const std::string& out_path,
                                     const worker_shard_options& options) {
    const std::uint64_t total = manifest.total_units();
    BISTNA_EXPECTS(options.first_unit <= total &&
                       options.units <= total - options.first_unit,
                   "shard range exceeds the manifest's unit count");

    if (options.stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options.stall_ms));
    }

    store::lot_store out =
        store::lot_store::create(out_path, {options.flush_interval});
    if (options.units == 0) {
        // A valid empty store: header only.  Happens legitimately when the
        // lot has fewer units than shards.
        out.flush();
        return worker_shard_report{0, out.bytes()};
    }

    const auto maybe_die = [&] {
        if (options.kill_after_records > 0 &&
            out.records_appended() >= options.kill_after_records) {
            die_mid_frame(out);
        }
    };

    telemetry::trace_span stream_span("shard.stream");
    stream_span.arg("first", static_cast<double>(options.first_unit));
    stream_span.arg("units", static_cast<double>(options.units));

    // The same manifest -> in-order-record pipeline the screening service
    // streams over its sockets (shard/unit_stream.hpp): one submission
    // seam means the merge contract and the service's bit-identity
    // guarantee are literally the same code.
    unit_stream stream(manifest, options.first_unit, options.units);
    while (auto item = stream.next()) {
        out.append(item->record);
        maybe_die();
    }
    if (auto error = stream.error()) {
        std::rethrow_exception(error);
    }

    out.flush();
    BISTNA_EXPECTS(out.records_appended() == options.units,
                   "shard worker lost records (job cancelled or failed)");
    return worker_shard_report{out.records_appended(), out.bytes()};
}

int worker_main(int argc, char** argv) {
    const std::string manifest_path = flag_text(argc, argv, "manifest");
    const std::string out_path = flag_text(argc, argv, "out");
    if (manifest_path.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "usage: shard_worker --manifest=lot.json --out=shard.store\n"
                     "  [--first=N] [--count=N] [--flush-interval=N] [--attempt=N]\n"
                     "  fault injection (tests): [--kill-after-records=N "
                     "--kill-attempt=N] [--stall-ms=N --stall-attempt=N]\n");
        return 2;
    }
    const auto shard_id =
        static_cast<std::size_t>(flag_value(argc, argv, "shard", 0.0));
    const auto attempt =
        static_cast<std::uint64_t>(flag_value(argc, argv, "attempt", 1.0));
    try {
        const lot_manifest manifest = lot_manifest::load(manifest_path);
        const std::uint64_t total = manifest.total_units();

        // A telemetry sidecar path turns this worker into a metered process:
        // attach for the run, then serialize the snapshot next to the shard
        // store so the coordinator can merge fleet-wide metrics and lanes.
        const std::string telemetry_path = flag_text(argc, argv, "telemetry");
        std::optional<telemetry::metric_registry> registry;
        if (!telemetry_path.empty()) {
            registry.emplace();
            registry->set_process_name("shard-" + std::to_string(shard_id));
            registry->attach();
            telemetry::set_thread_name("shard-main");
        }

        worker_shard_options options;
        options.first_unit =
            static_cast<std::uint64_t>(flag_value(argc, argv, "first", 0.0));
        const std::uint64_t rest =
            options.first_unit <= total ? total - options.first_unit : 0;
        options.units = static_cast<std::uint64_t>(
            flag_value(argc, argv, "count", static_cast<double>(rest)));
        options.flush_interval = static_cast<std::size_t>(
            flag_value(argc, argv, "flush-interval", 32.0));

        // Injected faults fire only on the attempt they target, so a
        // retried shard succeeds -- the shape every supervisor test needs.
        if (flag_present(argc, argv, "kill-after-records") &&
            attempt == static_cast<std::uint64_t>(
                           flag_value(argc, argv, "kill-attempt", 1.0))) {
            options.kill_after_records = static_cast<std::uint64_t>(
                flag_value(argc, argv, "kill-after-records", 0.0));
        }
        if (flag_present(argc, argv, "stall-ms") &&
            attempt == static_cast<std::uint64_t>(
                           flag_value(argc, argv, "stall-attempt", 1.0))) {
            options.stall_ms =
                static_cast<std::uint64_t>(flag_value(argc, argv, "stall-ms", 0.0));
        }

        std::printf("%s\n", event_line("start", shard_id, attempt)
                                .field("first", options.first_unit)
                                .field("count", options.units)
                                .str()
                                .c_str());
        std::fflush(stdout);

        const worker_shard_report report =
            run_worker_shard(manifest, out_path, options);

        if (registry) {
            registry->detach();
            telemetry::write_snapshot_store(telemetry_path,
                                            registry->snapshot());
        }
        std::printf("%s\n", event_line("done", shard_id, attempt)
                                .field("records", report.records)
                                .field("bytes", report.bytes)
                                .field("out", out_path)
                                .str()
                                .c_str());
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n",
                     event_line("error", shard_id, attempt)
                         .field("what", std::string(error.what()))
                         .str()
                         .c_str());
        return 1;
    }
}

} // namespace bistna::shard
