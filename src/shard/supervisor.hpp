// Shard supervisor: spawn one worker process per shard of a lot plan,
// babysit the fleet, and hand every surviving output file to the merger.
//
// Failure handling is the whole job:
//   * a worker that EXITS NONZERO or DIES ON A SIGNAL is retried (fresh
//     attempt number, fresh output file) up to max_attempts;
//   * a STRAGGLER -- still running past straggler_timeout_seconds -- is
//     SIGKILLed and retried the same way;
//   * every attempt's output file (including the torn partials of killed
//     attempts) is kept and reported, because the merger dedupes by
//     record id and verifies payload equality -- retry + dedupe is what
//     makes at-least-once process scheduling safe under the repo's
//     bit-identity contract.
// A shard that exhausts max_attempts fails the run with
// configuration_error: a lot with holes must not ship.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "shard/manifest.hpp"
#include "shard/plan.hpp"

namespace bistna::shard {

struct supervisor_options {
    /// argv prefix of the worker process, e.g. {"./shard_worker"} or
    /// {"/proc/self/exe", "--bistna-shard-worker=1"}.  The supervisor
    /// appends --manifest=/--out=/--first=/--count=/--flush-interval=/
    /// --attempt= for each spawn.
    std::vector<std::string> worker_command;
    /// Extra flags appended verbatim to every spawn (tests inject worker
    /// faults through these).
    std::vector<std::string> extra_worker_args;

    std::size_t shards = 4;
    /// Worker processes running at once; 0 runs all shards concurrently.
    std::size_t max_processes = 0;
    /// Kill + retry a worker still running after this long; 0 disables
    /// straggler detection.
    double straggler_timeout_seconds = 0.0;
    /// Total tries per shard (first attempt included).
    std::size_t max_attempts = 3;
    /// Directory for the manifest, the per-attempt shard stores and the
    /// per-attempt worker logs.  Created if missing.
    std::string shard_dir;
    /// Worker-side store flush cadence (forwarded as --flush-interval=).
    std::size_t flush_interval = 32;
    /// Ask every worker to write a telemetry-snapshot sidecar store next to
    /// its shard store (forwarded as --telemetry=).  The coordinator reads
    /// the sidecars of successful attempts to merge fleet-wide metrics and
    /// build one cross-process trace.
    bool telemetry_sidecars = false;
    /// Optional progress observer: structured one-line-per-event logs
    /// (`ts_us=... shard=... attempt=... event=...`).
    std::function<void(const std::string&)> on_event;
};

/// One spawned worker process, as observed at its end.
struct shard_attempt {
    std::size_t shard = 0;
    std::size_t attempt = 1;      ///< 1-based
    std::string store_path;
    std::string log_path;
    std::string telemetry_path;   ///< empty unless telemetry_sidecars was set
    int wait_status = 0;          ///< raw waitpid status
    bool timed_out = false;       ///< supervisor killed it as a straggler
    bool succeeded = false;       ///< exited 0
};

struct supervisor_result {
    std::vector<shard_range> plan;
    std::vector<shard_attempt> attempts; ///< every attempt, completion order
    /// Every attempt's store path, successful or not -- the merger's input
    /// (torn partials included on purpose; dedupe handles them).
    std::vector<std::string> shard_files;
    std::string manifest_path;
    std::size_t retries = 0; ///< attempts beyond each shard's first
};

/// Split manifest.total_units() into options.shards ranges, write the
/// manifest into shard_dir, run the fleet to completion.  Throws
/// configuration_error when any shard exhausts max_attempts (or the
/// worker binary cannot be spawned at all).
supervisor_result run_shards(const lot_manifest& manifest,
                             const supervisor_options& options);

} // namespace bistna::shard
