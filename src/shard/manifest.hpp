// Lot manifest: the complete, serializable description of one workload a
// shard fleet fans out -- die-seed range (or severity-grid item range),
// measurement program, process sigma, spec mask and per-worker engine
// configuration.  The coordinator writes it once as JSON; every worker
// process loads the same file and runs a contiguous unit range of it, so
// the fleet's combined output is a pure function of (manifest, unit range)
// and therefore bit-identical at any shard count.
//
// Two workloads are supported, the two heaviest in the tree:
//
//   * `screening`  -- a Monte Carlo screening lot: unit i is die seed
//     first_seed + i screened against the spec mask (the paper's
//     production-throughput story);
//   * `dictionary` -- a fault-trajectory severity-grid build: unit i is
//     acquisition item i of diag::make_dictionary_plan (item 0 the healthy
//     reference, then grid_points items per catalog fault).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "diag/fault_model.hpp"

namespace bistna::shard {

enum class workload_kind { screening, dictionary };

const char* workload_name(workload_kind kind) noexcept;

struct lot_manifest {
    workload_kind workload = workload_kind::screening;

    // --- board / DUT ------------------------------------------------------
    double sigma = 0.03;          ///< DUT component tolerance (process draw)
    double amplitude_mv = 150.0;  ///< programmed differential level V_A+ - V_A-
    bool ideal_generator = true;  ///< false: realistic 0.35 um generator draw

    // --- analyzer / evaluator --------------------------------------------
    std::size_t periods = 200;
    std::size_t settle_periods = 32;
    std::size_t distortion_periods = 400;
    std::size_t calibration_periods = 4096;
    eval::offset_mode offset = eval::offset_mode::calibrated;
    bool ideal_modulator = true; ///< false: cmos035 modulator pair
    std::uint64_t evaluator_seed = 42;

    // --- spec mask + measurement program ---------------------------------
    /// Empty uses core::spec_mask::paper_lowpass(); otherwise these limits
    /// replace it (the JSON "limits" array).
    std::vector<core::gain_limit> custom_limits;
    std::optional<double> stimulus_volts_nominal; ///< override mask default
    std::optional<double> stimulus_tolerance;     ///< override mask default
    bool measure_distortion = false;
    bool continue_after_self_test_failure = false;
    std::size_t distortion_max_harmonic = 3;
    double distortion_f_hz = 0.0; ///< 0 picks the first mask limit

    // --- screening workload ----------------------------------------------
    std::uint64_t dice = 64;
    std::uint64_t first_seed = 1;

    // --- dictionary workload ---------------------------------------------
    std::size_t grid_points = 9;
    std::size_t thd_max_harmonic = 3;
    std::uint64_t nominal_seed = 1;
    std::uint64_t eval_seed_base = 0xD1A65EEDULL;

    // --- per-worker engine ------------------------------------------------
    std::size_t threads = 1;
    std::size_t batch_lanes = 8;
    core::sweep_pipeline pipeline = core::sweep_pipeline::lane_major;

    /// Units the whole lot fans out: dice (screening) or acquisition items
    /// (dictionary -- 1 healthy reference + faults x grid_points).
    std::uint64_t total_units() const;

    /// The record id a worker stores for global unit `unit` (and the merge
    /// key): the die seed for screening, the item index for a dictionary.
    std::uint64_t record_id(std::uint64_t unit) const noexcept {
        return workload == workload_kind::screening ? first_seed + unit : unit;
    }

    // --- manifest -> engine wiring ---------------------------------------
    core::spec_mask make_mask() const;
    core::analyzer_settings make_settings() const;
    core::screening_options make_screening_options() const;
    core::board_factory make_factory() const;   ///< screening process draws
    diag::die_design make_die_design() const;   ///< dictionary nominal die
    core::sweep_engine_options make_engine_options() const;

    // --- serialization ----------------------------------------------------
    std::string to_json() const;
    /// Strict parse: malformed JSON, unknown keys and out-of-domain values
    /// all throw configuration_error naming the problem.
    static lot_manifest from_json(std::string_view text);
    /// The same strict schema applied to an already-parsed tree -- the
    /// service daemon hands the "manifest" member of a submit frame
    /// straight to this, so an offline shard lot and a submitted service
    /// job are parsed by the identical code (one schema, by construction).
    static lot_manifest from_value(const json_value& root);

    static lot_manifest load(const std::string& path);
    void save(const std::string& path) const;
};

} // namespace bistna::shard
