#include "shard/plan.hpp"

#include "common/error.hpp"

namespace bistna::shard {

std::vector<shard_range> plan_shards(std::uint64_t units, std::size_t shards) {
    BISTNA_EXPECTS(shards > 0, "shard plan needs at least one shard");
    std::vector<shard_range> plan;
    plan.reserve(shards);
    const std::uint64_t base = units / shards;
    const std::uint64_t extra = units % shards;
    std::uint64_t first = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::uint64_t count = base + (s < extra ? 1 : 0);
        plan.push_back(shard_range{s, first, count});
        first += count;
    }
    return plan;
}

} // namespace bistna::shard
