// Shard coordinator: the one-call multi-process lot runner.  Splits the
// manifest's lot into shards, runs the worker fleet under the supervisor
// (spawn, straggler kill, retry), then merges every attempt's output --
// duplicates deduped, torn tails dropped -- into one lot store whose bytes
// are identical to the store a single worker running the whole lot writes,
// at any shard count, worker count and completion order.
#pragma once

#include <string>
#include <vector>

#include "shard/manifest.hpp"
#include "shard/merger.hpp"
#include "shard/supervisor.hpp"
#include "telemetry/snapshot.hpp"

namespace bistna::shard {

struct coordinator_report {
    supervisor_result shards;
    merge_stats merge;
    /// One telemetry snapshot per successful worker attempt, read from the
    /// --telemetry sidecar stores; empty unless options.telemetry_sidecars
    /// was set.  Feed them (plus the coordinator's own snapshot) to
    /// merge_metrics / write_chrome_trace for a fleet-wide view.
    std::vector<telemetry::telemetry_snapshot> worker_snapshots;
};

/// Run the whole lot: supervise options.shards worker processes over the
/// manifest, then merge their stores into `out_path`.  The merge covers
/// ids [manifest.record_id(0), ... + total_units) exactly; any hole or
/// divergent duplicate throws, so a returned report is a complete,
/// verified lot.
coordinator_report run_lot(const lot_manifest& manifest,
                           const std::string& out_path,
                           const supervisor_options& options,
                           const merge_options& merge = {});

} // namespace bistna::shard
