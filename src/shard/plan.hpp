// Shard plan: split a lot of `units` work units into `shards` contiguous
// ranges.  Contiguity is what keeps a shard cheap to describe (two
// numbers) and keeps the merged store's frame order equal to the
// single-process order; balance is what keeps stragglers rare.
#pragma once

#include <cstdint>
#include <vector>

namespace bistna::shard {

/// One shard's slice of the lot: global units [first, first + units).
struct shard_range {
    std::size_t index = 0;    ///< shard number in the plan
    std::uint64_t first = 0;  ///< first global unit
    std::uint64_t units = 0;  ///< unit count (may be 0 when shards > units)
};

/// Split `units` into `shards` contiguous ranges differing by at most one
/// unit (the first units % shards ranges get the extra).  shards > units
/// yields trailing empty ranges -- a worker handed one writes a valid
/// empty store and exits cleanly.
std::vector<shard_range> plan_shards(std::uint64_t units, std::size_t shards);

} // namespace bistna::shard
