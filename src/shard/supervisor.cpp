#include "shard/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hpp"
#include "shard/event_log.hpp"
#include "telemetry/metrics.hpp"

extern char** environ;

namespace bistna::shard {

namespace {

using clock_type = std::chrono::steady_clock;

struct running_worker {
    pid_t pid = -1;
    std::size_t shard = 0;
    std::size_t attempt = 1;
    std::string store_path;
    std::string log_path;
    std::string telemetry_path;
    clock_type::time_point started;
    std::uint64_t started_ns = 0; ///< telemetry clock, for the attempt span
};

std::string attempt_file(const std::string& dir, std::size_t shard,
                         std::size_t attempt, const char* suffix) {
    return dir + "/shard-" + std::to_string(shard) + "-attempt-" +
           std::to_string(attempt) + suffix;
}

/// posix_spawn the worker with stdout+stderr redirected to its log file.
pid_t spawn_worker(const std::vector<std::string>& argv_strings,
                   const std::string& log_path) {
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (const auto& arg : argv_strings) {
        argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);

    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_addopen(&actions, STDOUT_FILENO, log_path.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_adddup2(&actions, STDOUT_FILENO, STDERR_FILENO);

    pid_t pid = -1;
    const int rc = posix_spawn(&pid, argv_strings.front().c_str(), &actions,
                               nullptr, argv.data(), environ);
    posix_spawn_file_actions_destroy(&actions);
    if (rc != 0) {
        throw configuration_error("shard supervisor: cannot spawn worker '" +
                                  argv_strings.front() +
                                  "': " + std::strerror(rc));
    }
    return pid;
}

/// Last bytes of a worker's log, newline-flattened, for inlining into a
/// shard-exhausted diagnostic.  Unreadable logs degrade to an empty tail.
std::string log_tail(const std::string& path, std::size_t max_bytes = 480) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {};
    }
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::uint64_t>(in.tellg());
    const std::uint64_t want = std::min<std::uint64_t>(size, max_bytes);
    in.seekg(static_cast<std::streamoff>(size - want));
    std::string tail(static_cast<std::size_t>(want), '\0');
    in.read(tail.data(), static_cast<std::streamsize>(want));
    if (!in) {
        return {};
    }
    std::replace_if(
        tail.begin(), tail.end(),
        [](char c) { return c == '\n' || c == '\r'; }, ' ');
    return tail;
}

std::string describe_status(int status) {
    if (WIFEXITED(status)) {
        return "exit " + std::to_string(WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        return std::string("signal ") + std::to_string(WTERMSIG(status));
    }
    return "status " + std::to_string(status);
}

} // namespace

supervisor_result run_shards(const lot_manifest& manifest,
                             const supervisor_options& options) {
    BISTNA_EXPECTS(!options.worker_command.empty(),
                   "shard supervisor needs a worker command");
    BISTNA_EXPECTS(options.shards > 0, "shard supervisor needs at least one shard");
    BISTNA_EXPECTS(options.max_attempts > 0,
                   "shard supervisor needs at least one attempt per shard");
    BISTNA_EXPECTS(!options.shard_dir.empty(),
                   "shard supervisor needs a shard directory");

    std::filesystem::create_directories(options.shard_dir);

    supervisor_result result;
    result.plan = plan_shards(manifest.total_units(), options.shards);
    result.manifest_path = options.shard_dir + "/manifest.json";
    manifest.save(result.manifest_path);

    const auto emit = [&](const std::string& line) {
        if (options.on_event) {
            options.on_event(line);
        }
    };

    const std::size_t max_processes =
        options.max_processes == 0 ? options.shards : options.max_processes;

    std::deque<std::pair<std::size_t, std::size_t>> pending; // {shard, attempt}
    for (const auto& range : result.plan) {
        pending.emplace_back(range.index, 1);
    }
    std::vector<running_worker> running;
    std::vector<bool> shard_done(result.plan.size(), false);

    const auto launch = [&](std::size_t shard, std::size_t attempt) {
        const shard_range& range = result.plan[shard];
        running_worker worker;
        worker.shard = shard;
        worker.attempt = attempt;
        worker.store_path =
            attempt_file(options.shard_dir, shard, attempt, ".store");
        worker.log_path = attempt_file(options.shard_dir, shard, attempt, ".log");

        std::vector<std::string> argv = options.worker_command;
        argv.push_back("--manifest=" + result.manifest_path);
        argv.push_back("--out=" + worker.store_path);
        argv.push_back("--first=" + std::to_string(range.first));
        argv.push_back("--count=" + std::to_string(range.units));
        argv.push_back("--flush-interval=" + std::to_string(options.flush_interval));
        argv.push_back("--attempt=" + std::to_string(attempt));
        // Unknown flags are ignored by workers, so the shard identity can
        // ride along unconditionally.
        argv.push_back("--shard=" + std::to_string(shard));
        if (options.telemetry_sidecars) {
            worker.telemetry_path =
                attempt_file(options.shard_dir, shard, attempt, ".telemetry");
            argv.push_back("--telemetry=" + worker.telemetry_path);
        }
        for (const auto& extra : options.extra_worker_args) {
            argv.push_back(extra);
        }

        worker.started = clock_type::now();
        worker.started_ns = telemetry::now_ns();
        worker.pid = spawn_worker(argv, worker.log_path);
        emit(event_line("spawned", shard, attempt)
                 .field("pid", static_cast<std::uint64_t>(worker.pid))
                 .field("first", range.first)
                 .field("count", range.units)
                 .str());
        result.shard_files.push_back(worker.store_path);
        running.push_back(std::move(worker));
    };

    const auto finish = [&](const running_worker& worker, int status,
                            bool timed_out) {
        shard_attempt attempt;
        attempt.shard = worker.shard;
        attempt.attempt = worker.attempt;
        attempt.store_path = worker.store_path;
        attempt.log_path = worker.log_path;
        attempt.telemetry_path = worker.telemetry_path;
        attempt.wait_status = status;
        attempt.timed_out = timed_out;
        attempt.succeeded =
            !timed_out && WIFEXITED(status) && WEXITSTATUS(status) == 0;
        result.attempts.push_back(attempt);

        // The attempt span lands in the coordinator's own trace lane; no-op
        // when the coordinator process isn't metered.
        telemetry::emit_span("shard.attempt", worker.started_ns,
                             telemetry::now_ns() - worker.started_ns, "shard",
                             static_cast<double>(worker.shard), "attempt",
                             static_cast<double>(worker.attempt));

        if (attempt.succeeded) {
            shard_done[worker.shard] = true;
            emit(event_line("completed", worker.shard, worker.attempt).str());
            return;
        }
        emit(event_line(timed_out ? "straggler_killed" : "worker_failed",
                        worker.shard, worker.attempt)
                 .field("status", describe_status(status))
                 .str());
        if (worker.attempt >= options.max_attempts) {
            const std::string tail = log_tail(worker.log_path);
            throw configuration_error(
                "shard supervisor: shard " + std::to_string(worker.shard) +
                " failed after " + std::to_string(worker.attempt) +
                " attempts (last: " +
                (timed_out ? std::string("straggler timeout")
                           : describe_status(status)) +
                "; see " + worker.log_path +
                (tail.empty() ? std::string()
                              : "; log tail: " + tail) +
                ")");
        }
        ++result.retries;
        pending.emplace_back(worker.shard, worker.attempt + 1);
    };

    try {
    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < max_processes) {
            const auto [shard, attempt] = pending.front();
            pending.pop_front();
            launch(shard, attempt);
        }

        bool progressed = false;
        for (std::size_t i = 0; i < running.size();) {
            running_worker& worker = running[i];
            int status = 0;
            const pid_t waited = waitpid(worker.pid, &status, WNOHANG);
            if (waited == worker.pid) {
                const running_worker finished_worker = std::move(worker);
                running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
                finish(finished_worker, status, /*timed_out=*/false);
                progressed = true;
                continue;
            }

            if (options.straggler_timeout_seconds > 0.0) {
                const double elapsed =
                    std::chrono::duration<double>(clock_type::now() -
                                                  worker.started)
                        .count();
                if (elapsed > options.straggler_timeout_seconds) {
                    kill(worker.pid, SIGKILL);
                    waitpid(worker.pid, &status, 0);
                    const running_worker killed_worker = std::move(worker);
                    running.erase(running.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                    finish(killed_worker, status, /*timed_out=*/true);
                    progressed = true;
                    continue;
                }
            }
            ++i;
        }

        if (!progressed && !running.empty()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    } catch (...) {
        // A fatal shard (or spawn failure) must not leak the rest of the
        // fleet: kill and reap every worker still running, then rethrow.
        for (const auto& worker : running) {
            kill(worker.pid, SIGKILL);
            waitpid(worker.pid, nullptr, 0);
        }
        throw;
    }

    for (bool done : shard_done) {
        BISTNA_EXPECTS(done, "shard supervisor: drained with an unfinished shard");
    }
    return result;
}

} // namespace bistna::shard
