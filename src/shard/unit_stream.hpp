// Unit stream: one contiguous unit range of a lot manifest, run through a
// sweep-engine session and delivered as store records in GLOBAL UNIT
// ORDER -- the single seam behind every front-end that turns a manifest
// into frames.
//
// The shard worker (shard/worker.cpp) consumes it blocking and appends to
// a store file; the screening service (svc/server.cpp) consumes it
// non-blocking from its event loop and frames the records onto sockets.
// Because both run the *same* submission code -- same engine wiring, same
// per-unit record ids, same in-order delivery -- a service client's
// streamed records are bit-identical to the offline store path's by
// construction, not by parallel maintenance of two pipelines.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>

#include "core/job_queue.hpp"
#include "shard/manifest.hpp"
#include "store/format.hpp"

namespace bistna::shard {

/// One delivered unit: its global index in the lot plus the exact record
/// the offline store path would have appended for it.
struct unit_record {
    std::uint64_t unit = 0; ///< global unit index within the manifest
    store::record record;
};

class unit_stream {
public:
    /// Submit units [first_unit, first_unit + units) of the manifest's
    /// workload.  `queue` shares a worker pool across streams (the service
    /// daemon's shape); null gives the engine a private pool sized by the
    /// manifest.  `on_item` -- if set -- is a publication notifier invoked
    /// from worker threads AFTER newly completed items (or the terminal
    /// state) become visible to try_next()/finished(), at least once per
    /// publication and possibly coalescing several items into one call (no
    /// locks held; must be cheap and thread-safe): an event loop uses it
    /// to wake its poll, and a wake never races ahead of the state it
    /// advertises.
    unit_stream(const lot_manifest& manifest, std::uint64_t first_unit,
                std::uint64_t units, std::shared_ptr<core::job_queue> queue = nullptr,
                std::function<void()> on_item = nullptr);

    /// Cancels and drains the underlying job, so worker closures never
    /// outlive the engine this stream owns.  Non-blocking when the job is
    /// already terminal -- an event loop that destroys streams only once
    /// finished() holds never stalls here.
    ~unit_stream();

    unit_stream(const unit_stream&) = delete;
    unit_stream& operator=(const unit_stream&) = delete;

    std::uint64_t total_units() const noexcept { return units_; }

    /// Blocking pull of the next unit in global order; nullopt once every
    /// unit was delivered or -- after a cancel/failure -- at the first
    /// unit that will never complete.  Check error() when short.
    std::optional<unit_record> next();

    /// Non-blocking variant: nullopt when the next in-order unit has not
    /// completed yet OR never will.  Combine with finished(): terminal
    /// state + nullopt here means the stream is over.
    std::optional<unit_record> try_next();

    /// Units delivered through next()/try_next() so far.
    std::uint64_t delivered() const noexcept { return delivered_; }

    /// Items the engine has finished computing (>= delivered; moves while
    /// a consumer is slow -- the service's progress frames read this).
    std::uint64_t completed_items() const;

    /// True once the underlying job is terminal (or the range was empty).
    bool finished() const;

    /// Request cooperative cancellation (idempotent, any thread).
    void cancel() noexcept;

    /// The first worker exception, if any.
    std::exception_ptr error() const;

private:
    struct impl;
    std::unique_ptr<impl> impl_;
    std::uint64_t units_ = 0;
    std::uint64_t delivered_ = 0;
};

} // namespace bistna::shard
