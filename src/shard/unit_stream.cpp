#include "shard/unit_stream.hpp"

#include <iterator>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/sweep_engine.hpp"
#include "diag/fault_dictionary.hpp"
#include "diag/trajectory_builder.hpp"
#include "store/records.hpp"

namespace bistna::shard {

// The engine must be declared before the handle: handles hold job
// channels whose worker closures reference the engine, and the
// destructor's cancel+wait runs before either member dies.
struct unit_stream::impl {
    lot_manifest manifest;
    std::uint64_t first_unit = 0;
    std::unique_ptr<core::sweep_engine> engine;
    core::job_handle<core::screening_report> screening;
    core::job_handle<core::sweep_engine::acquisition_result> acquisition;

    store::record to_unit_record(std::uint64_t unit,
                                 const core::screening_report& report) const {
        return store::to_record(report, manifest.record_id(unit));
    }
    store::record
    to_unit_record(std::uint64_t unit,
                   const core::sweep_engine::acquisition_result& result) const {
        return store::to_record(result, manifest.record_id(unit));
    }
};

unit_stream::unit_stream(const lot_manifest& manifest, std::uint64_t first_unit,
                         std::uint64_t units, std::shared_ptr<core::job_queue> queue,
                         std::function<void()> on_item)
    : impl_(std::make_unique<impl>()), units_(units) {
    const std::uint64_t total = manifest.total_units();
    BISTNA_EXPECTS(first_unit <= total && units <= total - first_unit,
                   "unit range exceeds the manifest's unit count");
    impl_->manifest = manifest;
    impl_->first_unit = first_unit;
    if (units == 0) {
        return; // an empty range never builds an engine
    }

    core::sweep_engine_options options = manifest.make_engine_options();
    options.queue = std::move(queue);

    if (manifest.workload == workload_kind::screening) {
        impl_->engine = std::make_unique<core::sweep_engine>(
            manifest.make_factory(), manifest.make_settings(), options);
        // The notifier rides as the submit-time post-publish callback, so
        // a consumer it wakes always finds the advertised items (or
        // terminal state) visible, with no registration gap -- the
        // event-loop daemon sleeps on exactly this signal.
        impl_->screening = impl_->engine->submit_screening(
            manifest.make_mask(), static_cast<std::size_t>(units),
            manifest.first_seed + first_unit, manifest.make_screening_options(),
            nullptr, std::move(on_item));
    } else {
        // Construct the FULL deterministic plan and submit only the
        // subrange: every item owns its global-index-derived evaluator
        // seed and render key at construction, so a subrange acquisition
        // is bit-identical per item to acquiring the whole list.
        diag::trajectory_build_options build;
        build.grid_points = manifest.grid_points;
        build.nominal_seed = manifest.nominal_seed;
        build.eval_seed_base = manifest.eval_seed_base;
        const auto space = diag::signature_space::from_mask(
            manifest.make_mask(), manifest.thd_max_harmonic);
        diag::dictionary_plan plan =
            diag::make_dictionary_plan(manifest.make_die_design(),
                                       manifest.make_settings(), space,
                                       diag::default_catalog(), build);

        std::vector<core::sweep_engine::acquisition_item> slice(
            std::make_move_iterator(plan.items.begin() +
                                    static_cast<std::ptrdiff_t>(first_unit)),
            std::make_move_iterator(plan.items.begin() +
                                    static_cast<std::ptrdiff_t>(first_unit + units)));
        impl_->engine = std::make_unique<core::sweep_engine>(
            manifest.make_die_design().factory(), manifest.make_settings(), options);
        impl_->acquisition = impl_->engine->submit_acquisition(
            std::move(slice), std::move(plan.program), nullptr, std::move(on_item));
    }
}

unit_stream::~unit_stream() {
    cancel();
    if (impl_->screening.valid()) {
        impl_->screening.wait();
    }
    if (impl_->acquisition.valid()) {
        impl_->acquisition.wait();
    }
}

std::optional<unit_record> unit_stream::next() {
    if (impl_->screening.valid()) {
        if (auto item = impl_->screening.next_in_order()) {
            const std::uint64_t unit = impl_->first_unit + item->index;
            ++delivered_;
            return unit_record{unit, impl_->to_unit_record(unit, item->value)};
        }
        return std::nullopt;
    }
    if (impl_->acquisition.valid()) {
        if (auto item = impl_->acquisition.next_in_order()) {
            const std::uint64_t unit = impl_->first_unit + item->index;
            ++delivered_;
            return unit_record{unit, impl_->to_unit_record(unit, item->value)};
        }
    }
    return std::nullopt;
}

std::optional<unit_record> unit_stream::try_next() {
    if (impl_->screening.valid()) {
        if (auto item = impl_->screening.try_next_in_order()) {
            const std::uint64_t unit = impl_->first_unit + item->index;
            ++delivered_;
            return unit_record{unit, impl_->to_unit_record(unit, item->value)};
        }
        return std::nullopt;
    }
    if (impl_->acquisition.valid()) {
        if (auto item = impl_->acquisition.try_next_in_order()) {
            const std::uint64_t unit = impl_->first_unit + item->index;
            ++delivered_;
            return unit_record{unit, impl_->to_unit_record(unit, item->value)};
        }
    }
    return std::nullopt;
}

std::uint64_t unit_stream::completed_items() const {
    if (impl_->screening.valid()) {
        return impl_->screening.completed_items();
    }
    if (impl_->acquisition.valid()) {
        return impl_->acquisition.completed_items();
    }
    return 0;
}

bool unit_stream::finished() const {
    if (impl_->screening.valid()) {
        return impl_->screening.finished();
    }
    if (impl_->acquisition.valid()) {
        return impl_->acquisition.finished();
    }
    return true; // empty range: terminal from birth
}

void unit_stream::cancel() noexcept {
    if (impl_->screening.valid()) {
        impl_->screening.cancel();
    }
    if (impl_->acquisition.valid()) {
        impl_->acquisition.cancel();
    }
}

std::exception_ptr unit_stream::error() const {
    if (impl_->screening.valid()) {
        return impl_->screening.error();
    }
    if (impl_->acquisition.valid()) {
        return impl_->acquisition.error();
    }
    return nullptr;
}

} // namespace bistna::shard
