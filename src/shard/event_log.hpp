// Structured one-line-per-event log format shared by shard workers and
// the supervisor.
//
// Every event is a single line of space-separated key=value fields,
// leading with a monotonic timestamp and the shard identity:
//
//   ts_us=123456 shard=2 attempt=1 event=spawned pid=4711 first=500 last=1000
//
// The timestamp is integer microseconds of CLOCK_MONOTONIC (per-boot, so
// lines from the supervisor and every worker on one machine sort onto one
// timeline), formatted without locale involvement.  Values never contain
// spaces or newlines -- free-text (error messages) is sanitized -- so the
// lines stay machine-splittable with nothing smarter than a whitespace
// tokenizer.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/metrics.hpp"

namespace bistna::shard {

/// Builder for one structured event line.
class event_line {
public:
    event_line(const char* event, std::size_t shard, std::size_t attempt) {
        line_ = "ts_us=" + std::to_string(telemetry::now_ns() / 1000) +
                " shard=" + std::to_string(shard) +
                " attempt=" + std::to_string(attempt) + " event=" + event;
    }

    event_line& field(const char* key, const std::string& value) {
        line_ += ' ';
        line_ += key;
        line_ += '=';
        for (char c : value) {
            line_ += (c == ' ' || c == '\n' || c == '\r' || c == '\t' ||
                      c == '=')
                         ? '_'
                         : c;
        }
        return *this;
    }

    event_line& field(const char* key, std::uint64_t value) {
        line_ += ' ';
        line_ += key;
        line_ += '=';
        line_ += std::to_string(value);
        return *this;
    }

    const std::string& str() const noexcept { return line_; }

private:
    std::string line_;
};

} // namespace bistna::shard
