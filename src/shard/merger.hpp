// Shard-store merger: fold the per-shard (and per-attempt) record stores a
// worker fleet produced back into one lot store, bit-identical to the
// store a single worker running the whole lot would have written.
//
// The inputs are messy by design -- that is the point of a supervisor that
// retries: an attempt file may have a torn tail (worker killed mid-frame),
// may duplicate another attempt's records (straggler killed after partial
// progress, then retried wholesale), may be empty (shards > units) or may
// arrive in any order.  The merger scans every file leniently (valid
// prefix kept, torn tails counted, never trusted), dedupes by the leading
// u64 record id with payload-equality verification -- two attempts of the
// same unit MUST have produced identical bytes, anything else is a
// determinism bug worth crashing on -- and writes the output in id order.
// Missing ids throw: a lot with holes must fail loudly, not ship.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bistna::shard {

struct merge_options {
    /// Output-store flush cadence (the merge is one shot; per-record
    /// flushing would only slow it down).
    std::size_t flush_interval = 256;
};

struct merge_stats {
    std::size_t files = 0;               ///< input files scanned (missing skipped)
    std::size_t torn_files = 0;          ///< inputs with a truncated/corrupt tail
    std::uint64_t records_seen = 0;      ///< valid frames across all inputs
    std::uint64_t duplicates_dropped = 0; ///< verified-identical re-deliveries
    std::uint64_t records_merged = 0;    ///< frames written (== id_count)
    std::uint64_t bytes_written = 0;     ///< final output size
};

/// Merge `shard_files` into a fresh store at `out_path` covering exactly
/// the ids [first_id, first_id + id_count), written in ascending id order.
/// Files that do not exist are skipped (an attempt killed before its
/// create()).  Throws configuration_error on an id outside the range, a
/// duplicate id whose payload differs, or a missing id;
/// serialization_error on an input that is not a record store at all.
merge_stats merge_shard_stores(const std::vector<std::string>& shard_files,
                               const std::string& out_path,
                               std::uint64_t first_id, std::uint64_t id_count,
                               const merge_options& options = {});

} // namespace bistna::shard
