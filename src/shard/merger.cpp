#include "shard/merger.hpp"

#include <filesystem>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "store/lot_store.hpp"
#include "store/record_io.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace bistna::shard {

namespace {

/// The merge key: both payload kinds a worker streams (screening_report,
/// acquisition_result) lead with the u64 global id, little-endian.
std::uint64_t leading_id(const store::record& r) {
    if (r.payload.size() < 8) {
        throw configuration_error(
            "shard merge: record payload too short to carry an id");
    }
    std::uint64_t id = 0;
    for (std::size_t b = 0; b < 8; ++b) {
        id |= static_cast<std::uint64_t>(r.payload[b]) << (8 * b);
    }
    return id;
}

/// Lenient scan: every CRC-valid frame of the file's prefix; a torn or
/// corrupt tail stops the scan and sets `torn` instead of throwing.  A
/// file whose 16-byte header is already wrong is not a shard store at all
/// and does throw -- the coordinator never feeds the merger arbitrary
/// files, so that is a wiring bug, not a crash artifact.
std::vector<store::record> lenient_scan(const std::string& path, bool& torn) {
    store::record_reader reader(path);
    std::vector<store::record> records;
    try {
        while (auto r = reader.next()) {
            records.push_back(std::move(*r));
        }
    } catch (const serialization_error&) {
        torn = true;
    }
    return records;
}

} // namespace

merge_stats merge_shard_stores(const std::vector<std::string>& shard_files,
                               const std::string& out_path,
                               std::uint64_t first_id, std::uint64_t id_count,
                               const merge_options& options) {
    telemetry::trace_span span("shard.merge");
    span.arg("files", static_cast<double>(shard_files.size()));
    span.arg("ids", static_cast<double>(id_count));
    merge_stats stats;
    std::map<std::uint64_t, store::record> by_id;

    for (const auto& path : shard_files) {
        std::error_code ec;
        if (!std::filesystem::exists(path, ec) || ec) {
            continue; // attempt killed before its create() -- nothing to scan
        }
        ++stats.files;
        bool torn = false;
        for (auto& r : lenient_scan(path, torn)) {
            const std::uint64_t id = leading_id(r);
            if (id < first_id || id - first_id >= id_count) {
                throw configuration_error(
                    "shard merge: " + path + " carries record id " +
                    std::to_string(id) + " outside the lot's id range [" +
                    std::to_string(first_id) + ", " +
                    std::to_string(first_id + id_count) + ")");
            }
            ++stats.records_seen;
            const auto it = by_id.find(id);
            if (it != by_id.end()) {
                // A re-delivered unit (retried straggler, duplicate shard
                // delivery).  Deterministic workers make this harmless --
                // and verifiable: the bytes must match exactly, or some
                // worker broke the bit-identity contract.
                if (it->second.type != r.type || it->second.payload != r.payload) {
                    throw configuration_error(
                        "shard merge: conflicting duplicate for record id " +
                        std::to_string(id) + " in " + path +
                        " -- shard outputs are not bit-identical");
                }
                ++stats.duplicates_dropped;
                continue;
            }
            by_id.emplace(id, std::move(r));
        }
        if (torn) {
            ++stats.torn_files;
        }
    }

    // Coverage: every id of the lot, exactly once.
    if (by_id.size() != id_count) {
        for (std::uint64_t id = first_id; id < first_id + id_count; ++id) {
            if (!by_id.contains(id)) {
                throw configuration_error(
                    "shard merge: lot is missing record id " + std::to_string(id) +
                    " (" + std::to_string(id_count - by_id.size()) +
                    " missing in total) -- a shard never delivered");
            }
        }
    }

    store::lot_store out =
        store::lot_store::create(out_path, {options.flush_interval});
    for (const auto& [id, r] : by_id) {
        out.append(r);
    }
    out.flush();
    stats.records_merged = out.records_appended();
    stats.bytes_written = out.bytes();
    // Registry mirrors of the returned struct (the merge.* taxonomy); the
    // struct stays the API, the registry is how a fleet snapshot sees it.
    static const telemetry::metric_id seen_id =
        telemetry::counter_id("merge.records_seen");
    static const telemetry::metric_id duplicates_id =
        telemetry::counter_id("merge.duplicates_dropped");
    static const telemetry::metric_id merged_id =
        telemetry::counter_id("merge.records_merged");
    static const telemetry::metric_id torn_id =
        telemetry::counter_id("merge.torn_files");
    static const telemetry::metric_id bytes_id =
        telemetry::counter_id("merge.bytes_written");
    telemetry::counter_add(seen_id, stats.records_seen);
    telemetry::counter_add(duplicates_id, stats.duplicates_dropped);
    telemetry::counter_add(merged_id, stats.records_merged);
    telemetry::counter_add(torn_id, stats.torn_files);
    telemetry::counter_add(bytes_id, stats.bytes_written);
    return stats;
}

} // namespace bistna::shard
