// Shard worker: run one contiguous unit range of a lot manifest through
// the sweep engine and stream the results to a record store, frames in
// global-id order.
//
// The in-order framing is the merge contract: because every worker emits
// its range's frames sorted by global id, the coordinator's merge is a
// pure id-ordered concatenation and the merged file's bytes equal the
// file one worker writing the whole lot would have produced -- at any
// shard count, worker count or completion order.
//
// run_worker_shard is the in-process form (tests drive it directly);
// worker_main wraps it in the --manifest/--out/--first/--count CLI the
// coordinator spawns, plus the fault-injection flags the supervisor tests
// use to manufacture dead and straggler workers on demand.
#pragma once

#include <cstdint>
#include <string>

#include "shard/manifest.hpp"

namespace bistna::shard {

struct worker_shard_options {
    std::uint64_t first_unit = 0; ///< first global unit of this shard
    std::uint64_t units = 0;      ///< unit count (0 writes a valid empty store)
    /// Store flush cadence (records between forced flushes; see
    /// store::lot_store_options).  Workers default to batched flushing --
    /// a killed worker's shard is retried wholesale, so per-record
    /// durability buys nothing here.
    std::size_t flush_interval = 32;

    // --- fault injection (supervisor tests / bench only) -----------------
    /// > 0: after appending this many records, append a deliberately torn
    /// partial frame and die by SIGKILL -- a worker crashing mid-write.
    std::uint64_t kill_after_records = 0;
    /// > 0: sleep this long before doing any work -- a straggler for the
    /// supervisor's timeout to catch.
    std::uint64_t stall_ms = 0;
};

struct worker_shard_report {
    std::uint64_t records = 0; ///< frames appended (== options.units)
    std::uint64_t bytes = 0;   ///< final store size
};

/// Run units [first_unit, first_unit + units) of the manifest's workload
/// and write their records to a fresh store at `out_path`, in global-id
/// order.  Record ids are manifest.record_id(unit): the die seed for a
/// screening lot, the plan item index for a dictionary build.
worker_shard_report run_worker_shard(const lot_manifest& manifest,
                                     const std::string& out_path,
                                     const worker_shard_options& options);

/// The worker executable's main: parse --manifest=/--out=/--first=/
/// --count=/--flush-interval= (plus --attempt= and the fault-injection
/// flags --kill-after-records=/--kill-attempt=/--stall-ms=/--stall-attempt=,
/// which only fire when --attempt matches), run the shard, print a one-line
/// summary.  Unknown flags are ignored, so a host main can carry its own
/// dispatch sentinel.  Returns the process exit code.
int worker_main(int argc, char** argv);

} // namespace bistna::shard
