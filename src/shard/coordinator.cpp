#include "shard/coordinator.hpp"

namespace bistna::shard {

coordinator_report run_lot(const lot_manifest& manifest,
                           const std::string& out_path,
                           const supervisor_options& options,
                           const merge_options& merge) {
    coordinator_report report;
    report.shards = run_shards(manifest, options);
    report.merge =
        merge_shard_stores(report.shards.shard_files, out_path,
                           manifest.record_id(0), manifest.total_units(), merge);
    return report;
}

} // namespace bistna::shard
