#include "shard/coordinator.hpp"

#include <iterator>

#include "telemetry/snapshot_record.hpp"

namespace bistna::shard {

coordinator_report run_lot(const lot_manifest& manifest,
                           const std::string& out_path,
                           const supervisor_options& options,
                           const merge_options& merge) {
    coordinator_report report;
    report.shards = run_shards(manifest, options);
    report.merge =
        merge_shard_stores(report.shards.shard_files, out_path,
                           manifest.record_id(0), manifest.total_units(), merge);
    if (options.telemetry_sidecars) {
        // Sidecars are observability, not lot data: a worker that produced
        // a complete shard store but a missing/torn sidecar (e.g. killed
        // between flushes on a retried attempt) must not fail the lot.
        for (const auto& attempt : report.shards.attempts) {
            if (!attempt.succeeded || attempt.telemetry_path.empty()) {
                continue;
            }
            try {
                auto snapshots =
                    telemetry::read_snapshot_store(attempt.telemetry_path);
                report.worker_snapshots.insert(
                    report.worker_snapshots.end(),
                    std::make_move_iterator(snapshots.begin()),
                    std::make_move_iterator(snapshots.end()));
            } catch (const std::exception&) {
                // leave the lot report intact; the sidecar is best-effort
            }
        }
    }
    return report;
}

} // namespace bistna::shard
