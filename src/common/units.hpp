// Strong unit types and decibel conversions.
//
// The network analyzer manipulates frequencies (master clock, generator
// clock, signal frequency), voltages (references, amplitudes) and times.
// Mixing them up silently is a classic source of test-bench bugs, so the
// public APIs take strong types (Core Guidelines I.4).  Internals that do
// pure arithmetic use `double` and convert at the boundary.
#pragma once

#include <compare>

namespace bistna {

/// Frequency in hertz.
struct hertz {
    double value = 0.0;

    constexpr hertz() = default;
    constexpr explicit hertz(double hz) : value(hz) {}

    friend constexpr auto operator<=>(hertz, hertz) = default;
    constexpr hertz operator*(double k) const { return hertz{value * k}; }
    constexpr hertz operator/(double k) const { return hertz{value / k}; }
    constexpr double operator/(hertz other) const { return value / other.value; }
};

constexpr hertz operator*(double k, hertz f) { return hertz{k * f.value}; }

constexpr hertz kilohertz(double khz) { return hertz{khz * 1e3}; }
constexpr hertz megahertz(double mhz) { return hertz{mhz * 1e6}; }

/// Voltage in volts.
struct volt {
    double value = 0.0;

    constexpr volt() = default;
    constexpr explicit volt(double v) : value(v) {}

    friend constexpr auto operator<=>(volt, volt) = default;
    constexpr volt operator+(volt other) const { return volt{value + other.value}; }
    constexpr volt operator-(volt other) const { return volt{value - other.value}; }
    constexpr volt operator-() const { return volt{-value}; }
    constexpr volt operator*(double k) const { return volt{value * k}; }
    constexpr double operator/(volt other) const { return value / other.value; }
};

constexpr volt operator*(double k, volt v) { return volt{k * v.value}; }

constexpr volt millivolt(double mv) { return volt{mv * 1e-3}; }

/// Time in seconds.
struct seconds {
    double value = 0.0;

    constexpr seconds() = default;
    constexpr explicit seconds(double s) : value(s) {}

    friend constexpr auto operator<=>(seconds, seconds) = default;
};

/// Period of a frequency.
constexpr seconds period_of(hertz f) { return seconds{1.0 / f.value}; }

// ---------------------------------------------------------------------------
// Decibel conversions.
// ---------------------------------------------------------------------------

/// 20*log10(|amplitude ratio|); returns -infinity for a zero ratio.
double amplitude_ratio_to_db(double ratio) noexcept;

/// Inverse of amplitude_ratio_to_db.
double db_to_amplitude_ratio(double db) noexcept;

/// 10*log10(power ratio); returns -infinity for zero.
double power_ratio_to_db(double ratio) noexcept;

/// Amplitude expressed in dB relative to a full-scale amplitude.
/// The paper's Fig. 9 axis ("dBm") is dB relative to the modulator full
/// scale of ~0.7 V; see bistna::eval::full_scale_reference.
double amplitude_to_dbfs(double amplitude, double full_scale) noexcept;

} // namespace bistna
