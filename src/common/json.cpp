#include "common/json.hpp"

#include <cctype>

#include "common/error.hpp"

namespace bistna {

namespace {

class json_parser {
public:
    json_parser(std::string_view text, const std::string& context)
        : text_(text), context_(context) {}

    json_value parse() {
        json_value value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw configuration_error(context_ + ": " + what + " at byte " +
                                  std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    json_value parse_value() {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
            json_value v;
            v.type = json_value::kind::string;
            v.str = parse_string();
            return v;
        }
        case 't':
        case 'f': {
            json_value v;
            v.type = json_value::kind::boolean;
            if (consume_literal("true")) {
                v.b = true;
            } else if (consume_literal("false")) {
                v.b = false;
            } else {
                fail("malformed literal");
            }
            return v;
        }
        case 'n':
            if (!consume_literal("null")) {
                fail("malformed literal");
            }
            return {};
        default: return parse_number();
        }
    }

    json_value parse_object() {
        expect('{');
        json_value v;
        v.type = json_value::kind::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            if (v.find(key) != nullptr) {
                fail("duplicate key \"" + key + "\"");
            }
            skip_ws();
            expect(':');
            v.members.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    json_value parse_array() {
        expect('[');
        json_value v;
        v.type = json_value::kind::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.elements.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            default: fail("unsupported string escape");
            }
        }
    }

    json_value parse_number() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        try {
            std::size_t consumed = 0;
            json_value v;
            v.type = json_value::kind::number;
            v.num = std::stod(token, &consumed);
            if (consumed != token.size() || token.empty()) {
                throw std::invalid_argument(token);
            }
            return v;
        } catch (const std::exception&) {
            pos_ = start;
            fail("malformed number");
        }
    }

    std::string_view text_;
    const std::string& context_;
    std::size_t pos_ = 0;
};

} // namespace

json_value parse_json(std::string_view text, const std::string& context) {
    return json_parser(text, context).parse();
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

} // namespace bistna
