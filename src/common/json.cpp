#include "common/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace bistna {

namespace {

class json_parser {
public:
    json_parser(std::string_view text, const std::string& context)
        : text_(text), context_(context) {}

    json_value parse() {
        json_value value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw configuration_error(context_ + ": " + what + " at byte " +
                                  std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) {
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    json_value parse_value() {
        skip_ws();
        switch (peek()) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': {
            json_value v;
            v.type = json_value::kind::string;
            v.str = parse_string();
            return v;
        }
        case 't':
        case 'f': {
            json_value v;
            v.type = json_value::kind::boolean;
            if (consume_literal("true")) {
                v.b = true;
            } else if (consume_literal("false")) {
                v.b = false;
            } else {
                fail("malformed literal");
            }
            return v;
        }
        case 'n':
            if (!consume_literal("null")) {
                fail("malformed literal");
            }
            return {};
        default: return parse_number();
        }
    }

    json_value parse_object() {
        expect('{');
        json_value v;
        v.type = json_value::kind::object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            if (v.find(key) != nullptr) {
                fail("duplicate key \"" + key + "\"");
            }
            skip_ws();
            expect(':');
            v.members.emplace_back(std::move(key), parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    json_value parse_array() {
        expect('[');
        json_value v;
        v.type = json_value::kind::array;
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.elements.push_back(parse_value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            default: fail("unsupported string escape");
            }
        }
    }

    json_value parse_number() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        try {
            std::size_t consumed = 0;
            json_value v;
            v.type = json_value::kind::number;
            v.num = std::stod(token, &consumed);
            if (consumed != token.size() || token.empty()) {
                throw std::invalid_argument(token);
            }
            return v;
        } catch (const std::exception&) {
            pos_ = start;
            fail("malformed number");
        }
    }

    std::string_view text_;
    const std::string& context_;
    std::size_t pos_ = 0;
};

} // namespace

json_value parse_json(std::string_view text, const std::string& context) {
    return json_parser(text, context).parse();
}

std::string json_number(double value) {
    if (!std::isfinite(value)) {
        throw configuration_error("json_number: JSON cannot represent NaN or infinity");
    }
    // Integral doubles below 2^53 print as plain integers: "42", not
    // "4.2e1" or "42.0" -- seeds and counts must survive a round trip
    // through get_u64-style strict readers.  Negative zero is excluded:
    // the integer cast would drop its sign bit.
    if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15 &&
        !(value == 0.0 && std::signbit(value))) {
        std::array<char, 32> buf{};
        const auto r = std::to_chars(buf.data(), buf.data() + buf.size(),
                                     static_cast<long long>(value));
        return std::string(buf.data(), r.ptr);
    }
    // Shortest representation that round-trips to the same bit pattern;
    // to_chars is locale-independent by specification.
    std::array<char, 64> buf{};
    const auto r = std::to_chars(buf.data(), buf.data() + buf.size(), value);
    return std::string(buf.data(), r.ptr);
}

namespace {

void write_value(std::string& out, const json_value& v) {
    switch (v.type) {
    case json_value::kind::null: out += "null"; return;
    case json_value::kind::boolean: out += v.b ? "true" : "false"; return;
    case json_value::kind::number: out += json_number(v.num); return;
    case json_value::kind::string:
        out += '"';
        out += json_escape(v.str);
        out += '"';
        return;
    case json_value::kind::object: {
        out += '{';
        bool first = true;
        for (const auto& [key, member] : v.members) {
            if (!first) {
                out += ',';
            }
            first = false;
            out += '"';
            out += json_escape(key);
            out += "\":";
            write_value(out, member);
        }
        out += '}';
        return;
    }
    case json_value::kind::array: {
        out += '[';
        for (std::size_t i = 0; i < v.elements.size(); ++i) {
            if (i != 0) {
                out += ',';
            }
            write_value(out, v.elements[i]);
        }
        out += ']';
        return;
    }
    }
}

} // namespace

std::string to_json(const json_value& value) {
    std::string out;
    write_value(out, value);
    return out;
}

bool json_equal(const json_value& a, const json_value& b) {
    if (a.type != b.type) {
        return false;
    }
    switch (a.type) {
    case json_value::kind::null: return true;
    case json_value::kind::boolean: return a.b == b.b;
    case json_value::kind::number:
        // Bit-pattern compare: -0.0 vs 0.0 must mismatch (the writer
        // distinguishes them), and there are no NaNs to worry about (the
        // parser cannot produce one).
        return std::memcmp(&a.num, &b.num, sizeof(double)) == 0;
    case json_value::kind::string: return a.str == b.str;
    case json_value::kind::object:
        if (a.members.size() != b.members.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a.members.size(); ++i) {
            if (a.members[i].first != b.members[i].first ||
                !json_equal(a.members[i].second, b.members[i].second)) {
                return false;
            }
        }
        return true;
    case json_value::kind::array:
        if (a.elements.size() != b.elements.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a.elements.size(); ++i) {
            if (!json_equal(a.elements[i], b.elements[i])) {
                return false;
            }
        }
        return true;
    }
    return false;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default: out.push_back(c);
        }
    }
    return out;
}

} // namespace bistna
