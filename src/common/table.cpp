#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace bistna {

ascii_table::ascii_table(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
    BISTNA_EXPECTS(!columns_.empty(), "table must have at least one column");
}

void ascii_table::add_row(std::vector<std::string> cells) {
    BISTNA_EXPECTS(cells.size() == columns_.size(), "row width must match column count");
    rows_.push_back(std::move(cells));
}

void ascii_table::add_row(const std::vector<double>& values, int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        cells.push_back(format_fixed(v, precision));
    }
    add_row(std::move(cells));
}

void ascii_table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
        os << "| ";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
            os << (c + 1 == cells.size() ? " |" : " | ");
        }
        os << '\n';
    };
    print_row(columns_);
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string format_fixed(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string format_sci(double value, int precision) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << value;
    return os.str();
}

} // namespace bistna
