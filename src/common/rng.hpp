// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (kT/C noise, capacitor
// mismatch, comparator offset, initial integrator states) draws from an
// explicitly seeded generator so experiments are exactly reproducible.
// The engine is xoshiro256** (Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <array>
#include <cstdint>

namespace bistna {

/// xoshiro256** engine with convenience distributions.
class rng {
public:
    /// Seeded generator; the same seed always yields the same stream.
    explicit rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /// Raw 64 random bits.
    std::uint64_t next_u64() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be > 0.
    std::uint64_t uniform_int(std::uint64_t n) noexcept;

    /// Standard normal deviate (Box-Muller with caching).
    double gaussian() noexcept;

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double stddev) noexcept;

    /// Bernoulli trial with probability p of returning true.
    bool bernoulli(double p) noexcept;

    /// Derive an independent child generator (for per-run streams).
    rng spawn() noexcept;

    /// Exact stream-position equality (state and Box-Muller cache): two
    /// equal generators produce identical streams forever.  Lets the
    /// calibration-transplant fast path verify a snapshot matches before
    /// adopting it.
    bool operator==(const rng&) const noexcept = default;

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/// Seed of the `stream_id`-th independent child stream rooted at `seed`
/// (splitmix64 finalizer over the tagged root, the same construction as
/// core::sweep_item_seed).  Unlike chained rng::spawn() calls, two distinct
/// stream ids never alias each other's stream, so consumers that need
/// several uncorrelated streams from one seed (process draw vs. op-amp
/// noise, per-item batch seeds) tag each use with its own id.
std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream_id) noexcept;

} // namespace bistna
