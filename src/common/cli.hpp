// Tiny argv helpers shared by the example programs and the shard/service
// executables: "--name=value" flags, nothing more.  Extracted from the
// (formerly duplicated) copies in examples/screening_lot.cpp and
// examples/fault_diagnosis.cpp so every command-line front end parses
// flags the same way.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace bistna {

/// Parse "--name=value" from argv; returns fallback when absent.
inline double flag_value(int argc, char** argv, const char* name, double fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::strtod(argv[i] + prefix.size(), nullptr);
        }
    }
    return fallback;
}

/// Parse a string-valued "--name=value" flag; empty when absent.
inline std::string flag_text(int argc, char** argv, const char* name) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::string(argv[i] + prefix.size());
        }
    }
    return {};
}

/// Parse a string-valued "--name=value" flag with a default: the flag's
/// value when present, `fallback` when the flag is absent entirely.  An
/// explicit empty value ("--listen=") throws configuration_error -- for
/// the flags this exists for (socket paths, file names) an empty string
/// is never a usable value, and silently substituting the default would
/// hide the typo.
inline std::string flag_string(int argc, char** argv, const char* name,
                               const std::string& fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            std::string value(argv[i] + prefix.size());
            if (value.empty()) {
                throw configuration_error(std::string("flag --") + name +
                                          " requires a non-empty value");
            }
            return value;
        }
    }
    return fallback;
}

/// Strictly parse an unsigned-integer "--name=value" flag: the whole value
/// must be decimal digits ("8", not "8x" or "-1" or "0.5"); malformed
/// values throw configuration_error naming the flag instead of being
/// silently read as 0 the way flag_value's strtod would.
inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) {
            continue;
        }
        const char* text = argv[i] + prefix.size();
        if (*text == '\0') {
            throw configuration_error(std::string("flag --") + name +
                                      " requires a value");
        }
        std::uint64_t value = 0;
        for (const char* p = text; *p != '\0'; ++p) {
            const bool digit = *p >= '0' && *p <= '9';
            const std::uint64_t d = digit ? static_cast<std::uint64_t>(*p - '0') : 0;
            if (!digit || value > UINT64_MAX / 10 ||
                (value == UINT64_MAX / 10 && d > UINT64_MAX % 10)) {
                throw configuration_error(std::string("flag --") + name + "=" + text +
                                          ": expected a non-negative integer");
            }
            value = value * 10 + d;
        }
        return value;
    }
    return fallback;
}

/// True when "--name=value" appears in argv at all.
inline bool flag_present(int argc, char** argv, const char* name) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return true;
        }
    }
    return false;
}

/// True for a bare boolean switch: "--name" exactly, or "--name=value".
inline bool flag_switch(int argc, char** argv, const char* name) {
    const std::string bare = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (bare == argv[i]) {
            return true;
        }
    }
    return flag_present(argc, argv, name);
}

} // namespace bistna
