// Tiny argv helpers shared by the example programs and the shard
// executables: "--name=value" flags, nothing more.  Extracted from the
// (formerly duplicated) copies in examples/screening_lot.cpp and
// examples/fault_diagnosis.cpp so every command-line front end parses
// flags the same way.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>

namespace bistna {

/// Parse "--name=value" from argv; returns fallback when absent.
inline double flag_value(int argc, char** argv, const char* name, double fallback) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::strtod(argv[i] + prefix.size(), nullptr);
        }
    }
    return fallback;
}

/// Parse a string-valued "--name=value" flag; empty when absent.
inline std::string flag_text(int argc, char** argv, const char* name) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return std::string(argv[i] + prefix.size());
        }
    }
    return {};
}

/// True when "--name=value" appears in argv at all.
inline bool flag_present(int argc, char** argv, const char* name) {
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
            return true;
        }
    }
    return false;
}

/// True for a bare boolean switch: "--name" exactly, or "--name=value".
inline bool flag_switch(int argc, char** argv, const char* name) {
    const std::string bare = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (bare == argv[i]) {
            return true;
        }
    }
    return flag_present(argc, argv, name);
}

} // namespace bistna
