#include "common/math_util.hpp"

#include <algorithm>

namespace bistna {

double wrap_phase(double radians) noexcept {
    double wrapped = std::remainder(radians, two_pi);
    if (wrapped <= -pi) {
        wrapped += two_pi;
    }
    return wrapped;
}

double unwrap_step(double previous_unwrapped, double wrapped) noexcept {
    const double delta = wrap_phase(wrapped - previous_unwrapped);
    return previous_unwrapped + delta;
}

double sinc(double x) noexcept {
    if (std::abs(x) < 1e-12) {
        return 1.0;
    }
    const double px = pi * x;
    return std::sin(px) / px;
}

bool almost_equal(double a, double b, double abs_tol, double rel_tol) noexcept {
    const double scale = std::max(std::abs(a), std::abs(b));
    return std::abs(a - b) <= abs_tol + rel_tol * scale;
}

std::size_t next_power_of_two(std::size_t n) noexcept {
    if (n <= 1) {
        return 1;
    }
    std::size_t p = 1;
    while (p < n) {
        p <<= 1U;
    }
    return p;
}

} // namespace bistna
