#include "common/interval.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna {

interval::interval(double lo, double hi) : lo_(lo), hi_(hi) {
    BISTNA_EXPECTS(lo <= hi, "interval endpoints must satisfy lo <= hi");
}

interval interval::from_unordered(double a, double b) {
    return a <= b ? interval(a, b) : interval(b, a);
}

interval interval::centered(double center, double radius) {
    BISTNA_EXPECTS(radius >= 0.0, "interval radius must be non-negative");
    return interval(center - radius, center + radius);
}

interval interval::operator+(const interval& other) const {
    return interval(lo_ + other.lo_, hi_ + other.hi_);
}

interval interval::operator-(const interval& other) const {
    return interval(lo_ - other.hi_, hi_ - other.lo_);
}

interval interval::operator*(const interval& other) const {
    const double p1 = lo_ * other.lo_;
    const double p2 = lo_ * other.hi_;
    const double p3 = hi_ * other.lo_;
    const double p4 = hi_ * other.hi_;
    return interval(std::min(std::min(p1, p2), std::min(p3, p4)),
                    std::max(std::max(p1, p2), std::max(p3, p4)));
}

interval interval::operator+(double x) const { return interval(lo_ + x, hi_ + x); }
interval interval::operator-(double x) const { return interval(lo_ - x, hi_ - x); }

interval interval::operator*(double k) const {
    return k >= 0.0 ? interval(lo_ * k, hi_ * k) : interval(hi_ * k, lo_ * k);
}

interval interval::operator/(double k) const {
    BISTNA_EXPECTS(k != 0.0, "division of interval by zero scalar");
    return *this * (1.0 / k);
}

interval interval::operator-() const { return interval(-hi_, -lo_); }

interval interval::operator/(const interval& divisor) const {
    if (divisor.contains_zero()) {
        throw configuration_error("interval quotient is unbounded: divisor contains zero");
    }
    return *this * interval(1.0 / divisor.hi_, 1.0 / divisor.lo_);
}

interval operator*(double k, const interval& iv) { return iv * k; }
interval operator+(double x, const interval& iv) { return iv + x; }

interval hull(const interval& a, const interval& b) {
    return interval(std::min(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
}

interval intersect(const interval& a, const interval& b) {
    const double lo = std::max(a.lo(), b.lo());
    const double hi = std::min(a.hi(), b.hi());
    if (lo > hi) {
        throw configuration_error("interval intersection is empty");
    }
    return interval(lo, hi);
}

interval sqrt(const interval& iv) {
    BISTNA_EXPECTS(iv.lo() >= 0.0, "sqrt of interval requires non-negative lower bound");
    return interval(std::sqrt(iv.lo()), std::sqrt(iv.hi()));
}

interval square(const interval& iv) {
    const double a = iv.lo() * iv.lo();
    const double b = iv.hi() * iv.hi();
    if (iv.contains_zero()) {
        return interval(0.0, std::max(a, b));
    }
    return interval::from_unordered(a, b);
}

interval hypot(const interval& a, const interval& b) {
    // |.| is monotone in |a| and |b| separately, so the extrema of
    // sqrt(a^2+b^2) over the box are attained at extrema of a^2 and b^2.
    const interval a2 = square(a);
    const interval b2 = square(b);
    return interval(std::sqrt(a2.lo() + b2.lo()), std::sqrt(a2.hi() + b2.hi()));
}

interval atan(const interval& iv) { return interval(std::atan(iv.lo()), std::atan(iv.hi())); }

interval atan2_box(const interval& sin_axis, const interval& cos_axis) {
    if (sin_axis.contains_zero() && cos_axis.contains_zero()) {
        throw configuration_error("atan2_box: uncertainty box encloses the origin; "
                                  "phase is undetermined (increase M to shrink the box)");
    }
    const double corners_s[2] = {sin_axis.lo(), sin_axis.hi()};
    const double corners_c[2] = {cos_axis.lo(), cos_axis.hi()};
    // Hull of corner phases, unwrapped relative to the box-center phase so a
    // box near the +/-pi seam does not blow up to the whole circle.
    const double center = std::atan2(sin_axis.midpoint(), cos_axis.midpoint());
    double lo = center;
    double hi = center;
    for (double s : corners_s) {
        for (double c : corners_c) {
            const double phase = unwrap_step(center, std::atan2(s, c));
            lo = std::min(lo, phase);
            hi = std::max(hi, phase);
        }
    }
    return interval(lo, hi);
}

std::ostream& operator<<(std::ostream& os, const interval& iv) {
    return os << '[' << iv.lo() << ", " << iv.hi() << ']';
}

} // namespace bistna
