#include "common/arena.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace bistna {

arena::arena(std::size_t initial_bytes)
    : initial_bytes_(std::max<std::size_t>(initial_bytes, alignment)) {}

std::span<double> arena::allocate_zeroed(std::size_t count) {
    auto out = allocate<double>(count);
    std::memset(out.data(), 0, out.size_bytes());
    return out;
}

void arena::reset() noexcept {
    for (block& b : blocks_) {
        b.offset = 0;
    }
    active_ = 0;
    used_ = 0;
}

void arena::shrink() noexcept {
    blocks_.clear();
    active_ = 0;
    used_ = 0;
    capacity_ = 0;
}

void* arena::allocate_bytes(std::size_t bytes) {
    // Zero-size allocations still get a unique, aligned, valid pointer.
    const std::size_t rounded = std::max<std::size_t>(
        alignment, (bytes + alignment - 1) / alignment * alignment);
    BISTNA_EXPECTS(rounded >= bytes, "arena allocation size overflow");

    while (active_ < blocks_.size()) {
        block& b = blocks_[active_];
        if (b.size - b.offset >= rounded) {
            void* p = b.base + b.offset;
            b.offset += rounded;
            used_ += rounded;
            high_water_ = std::max(high_water_, used_);
            return p;
        }
        // This block is (effectively) full; never backtrack into it until
        // the next reset.  Later blocks were sized for earlier overflows,
        // so the scan is O(blocks) worst case and blocks stays tiny.
        ++active_;
    }
    block& b = grow(rounded);
    void* p = b.base + b.offset;
    b.offset += rounded;
    used_ += rounded;
    high_water_ = std::max(high_water_, used_);
    return p;
}

arena::block& arena::grow(std::size_t min_bytes) {
    const std::size_t last = blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    const std::size_t size = std::max(min_bytes, last);

    block b;
    b.storage = std::make_unique<unsigned char[]>(size + alignment);
    const auto addr = reinterpret_cast<std::uintptr_t>(b.storage.get());
    const std::uintptr_t aligned = (addr + alignment - 1) / alignment * alignment;
    b.base = b.storage.get() + (aligned - addr);
    b.size = size;
    b.offset = 0;
    capacity_ += size;
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
    return blocks_.back();
}

} // namespace bistna
