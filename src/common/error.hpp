// Contract-violation machinery for the bistna library.
//
// Following the C++ Core Guidelines (I.5/I.6: state and check preconditions,
// I.10: use exceptions to signal failure), precondition violations throw
// bistna::precondition_error carrying the failed condition and its location.
#pragma once

#include <stdexcept>
#include <string>

namespace bistna {

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::logic_error {
public:
    explicit precondition_error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a configuration is internally inconsistent (e.g. a timing
/// scheme that cannot be realized with the requested clock ratios).
class configuration_error : public std::runtime_error {
public:
    explicit configuration_error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* condition, const char* file, int line,
                                     const std::string& message);
} // namespace detail

} // namespace bistna

/// Check a precondition; throws bistna::precondition_error on failure.
/// Usage: BISTNA_EXPECTS(m > 0, "number of periods must be positive");
#define BISTNA_EXPECTS(cond, msg)                                                        \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::bistna::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg));      \
        }                                                                                \
    } while (false)
