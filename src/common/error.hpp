// Contract-violation machinery for the bistna library.
//
// Following the C++ Core Guidelines (I.5/I.6: state and check preconditions,
// I.10: use exceptions to signal failure), precondition violations throw
// bistna::precondition_error carrying the failed condition and its location.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace bistna {

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::logic_error {
public:
    explicit precondition_error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a configuration is internally inconsistent (e.g. a timing
/// scheme that cannot be realized with the requested clock ratios).
class configuration_error : public std::runtime_error {
public:
    explicit configuration_error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a persisted artifact (binary record store, framed
/// dictionary) is malformed: wrong magic/version, torn frame, CRC
/// mismatch, payload underrun.  Carries the byte offset of the first
/// offending byte so a corrupt shard can be localized (and a torn tail
/// truncated) without re-parsing.
class serialization_error : public std::runtime_error {
public:
    serialization_error(const std::string& what, std::uint64_t byte_offset)
        : std::runtime_error(what + " (byte offset " + std::to_string(byte_offset) + ")"),
          byte_offset_(byte_offset) {}

    /// Offset of the first invalid byte in the file/buffer.
    std::uint64_t byte_offset() const noexcept { return byte_offset_; }

private:
    std::uint64_t byte_offset_ = 0;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* condition, const char* file, int line,
                                     const std::string& message);
} // namespace detail

} // namespace bistna

/// Check a precondition; throws bistna::precondition_error on failure.
/// Usage: BISTNA_EXPECTS(m > 0, "number of periods must be positive");
#define BISTNA_EXPECTS(cond, msg)                                                        \
    do {                                                                                 \
        if (!(cond)) {                                                                   \
            ::bistna::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg));      \
        }                                                                                \
    } while (false)
