// Shared attribute macro for the lane-major hot kernels (extension).
//
// The SoA kernels (sd::modulator_bank, dut::state_space_bank,
// dsp::goertzel_lanes) are compiled twice where the toolchain supports it:
// a baseline clone and an AVX2 clone picked at load time via ifunc.  AVX2
// widens the lane vectors to 4 doubles and does NOT enable FMA
// contraction, so every clone produces identical IEEE 754 results -- the
// bit-identity contract survives runtime dispatch.
//
// Sanitizer builds fall back to the plain function: target_clones emits an
// ifunc resolver that runs during relocation, before the ASan/TSan
// runtimes initialize (TSan crashes outright at startup).
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define BISTNA_KERNEL_CLONES __attribute__((target_clones("default", "avx2")))
#else
#define BISTNA_KERNEL_CLONES
#endif
