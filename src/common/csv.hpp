// Minimal CSV writer for experiment artifacts.
//
// Benches dump every reproduced figure/table as CSV next to the console
// report so results can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace bistna {

class csv_writer {
public:
    /// Opens (truncates) the file; throws configuration_error on failure.
    explicit csv_writer(const std::string& path);

    /// Write a header row of column names.
    void header(std::initializer_list<std::string> names);
    void header(const std::vector<std::string>& names);

    /// Write a data row of doubles (formatted with max_digits10 precision).
    void row(std::initializer_list<double> values);
    void row(const std::vector<double>& values);

    /// Write a row of preformatted cells.
    void text_row(const std::vector<std::string>& cells);

    const std::string& path() const noexcept { return path_; }

private:
    void write_cells(const std::vector<std::string>& cells);

    std::string path_;
    std::ofstream out_;
};

/// Quote a cell if it contains separators/quotes per RFC 4180.
std::string csv_escape(const std::string& cell);

} // namespace bistna
