// Minimal CSV writer for experiment artifacts.
//
// Benches dump every reproduced figure/table as CSV next to the console
// report so results can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace bistna {

class csv_writer {
public:
    /// Opens (truncates) the file; throws configuration_error on failure.
    explicit csv_writer(const std::string& path);

    /// Write a header row of column names.
    void header(std::initializer_list<std::string> names);
    void header(const std::vector<std::string>& names);

    /// Write a data row of doubles.  Cells are formatted with
    /// std::to_chars (locale-independent shortest round-trip form, so the
    /// text survives a host program that set a comma-decimal locale);
    /// NaN/inf become "nan"/"inf" with their sign.
    void row(std::initializer_list<double> values);
    void row(const std::vector<double>& values);

    /// Write a row of preformatted cells.
    void text_row(const std::vector<std::string>& cells);

    const std::string& path() const noexcept { return path_; }

private:
    void write_cells(const std::vector<std::string>& cells);

    std::string path_;
    std::ofstream out_;
};

/// Quote a cell if it contains separators/quotes per RFC 4180.
std::string csv_escape(const std::string& cell);

/// A parsed CSV file: header row (may be empty) + data rows as doubles.
struct csv_document {
    std::vector<std::string> header;
    std::vector<std::vector<double>> rows;

    std::size_t columns() const noexcept { return header.size(); }

    /// Index of a named column; throws configuration_error when absent.
    std::size_t column(const std::string& name) const;
};

/// Parse one CSV line into cells, honouring RFC 4180 quoting (the inverse
/// of csv_escape; embedded newlines are not supported).
std::vector<std::string> csv_split(const std::string& line);

/// Read a CSV written by csv_writer back in.  The first row is treated as
/// the header when `has_header`; every remaining cell must parse as a
/// double via from_chars (throws configuration_error otherwise), with
/// "nan"/"inf" cells restored to the canonical quiet NaN / infinity of
/// the written sign.  Round-trips csv_writer's to_chars formatting
/// bit-exactly, independent of the global locale.  Files written on
/// Windows are tolerated: CRLF line endings are stripped and one trailing
/// empty cell per row (a trailing comma) is dropped.
csv_document csv_read(const std::string& path, bool has_header = true);

/// Write a whole document (the exact inverse of csv_read): header row when
/// non-empty, then every data row in to_chars shortest round-trip form, so
/// csv_read(csv_write(doc)) == doc bit-exactly (NaN sign preserved, NaN
/// payloads canonicalized -- the binary record store keeps payload bits
/// too).  Serialization entry point for artifacts that ship across
/// machines (diag fault dictionaries, screening-report shards).
void csv_write(const csv_document& doc, const std::string& path);

} // namespace bistna
