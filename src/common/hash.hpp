// Tiny shared hashing helpers (FNV-1a) for cache keys and fingerprints.
//
// The stimulus cache's key (core/stimulus_cache) is assembled from hashes
// computed in several translation units (generator fingerprint, amplitude
// bits, key folding); keeping the mixing and the double canonicalization in
// one place guarantees they cannot drift apart.
#pragma once

#include <bit>
#include <cstdint>

namespace bistna {

inline constexpr std::uint64_t fnv1a_offset_basis = 0xCBF29CE484222325ULL;

/// One FNV-1a accumulation step over a raw 64-bit word.
inline void fnv1a_mix(std::uint64_t& hash, std::uint64_t word) noexcept {
    hash ^= word;
    hash *= 0x100000001B3ULL;
}

/// Bit pattern of a double with -0.0 folded onto 0.0, so the two equal
/// values can never produce distinct hashes/keys.
inline std::uint64_t canonical_double_bits(double value) noexcept {
    return std::bit_cast<std::uint64_t>(value == 0.0 ? 0.0 : value);
}

/// FNV-1a accumulation of a double by canonical bit pattern.
inline void fnv1a_mix(std::uint64_t& hash, double value) noexcept {
    fnv1a_mix(hash, canonical_double_bits(value));
}

} // namespace bistna
