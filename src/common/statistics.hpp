// Streaming and batch statistics used by the experiment harnesses
// (Fig. 9 repeatability runs, Monte Carlo sweeps, error-bound checks).
#pragma once

#include <cstddef>
#include <vector>

namespace bistna {

/// Numerically stable streaming mean/variance/min/max (Welford).
class running_stats {
public:
    void add(double x) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }
    /// max - min; 0 when empty.
    double range() const noexcept;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Summary of a batch of samples.
struct summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p05 = 0.0; ///< 5th percentile
    double p95 = 0.0; ///< 95th percentile
};

/// Compute a summary; throws precondition_error on an empty batch.
summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a batch; q in [0, 1].
double percentile(std::vector<double> samples, double q);

/// Root-mean-square of a batch (0 for empty input).
double rms(const std::vector<double>& samples) noexcept;

/// Maximum absolute value in a batch (0 for empty input).
double peak_abs(const std::vector<double>& samples) noexcept;

} // namespace bistna
