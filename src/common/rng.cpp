#include "common/rng.hpp"

#include <cmath>

#include "common/math_util.hpp"

namespace bistna {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

} // namespace

rng::rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
        state_[0] = 1;
    }
}

std::uint64_t rng::next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() noexcept {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t rng::uniform_int(std::uint64_t n) noexcept {
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        const std::uint64_t r = next_u64();
        if (r >= threshold) {
            return r % n;
        }
    }
}

double rng::gaussian() noexcept {
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    cached_gaussian_ = radius * std::sin(two_pi * u2);
    has_cached_gaussian_ = true;
    return radius * std::cos(two_pi * u2);
}

double rng::gaussian(double mean, double stddev) noexcept { return mean + stddev * gaussian(); }

bool rng::bernoulli(double p) noexcept { return uniform() < p; }

rng rng::spawn() noexcept { return rng(next_u64()); }

std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream_id) noexcept {
    // splitmix64 finalizer over the (seed, stream id) pair; the golden-ratio
    // stride keeps consecutive stream ids far apart in the input domain.
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace bistna
