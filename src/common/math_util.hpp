// Small numeric helpers shared across the library.
#pragma once

#include <cmath>
#include <cstdint>

namespace bistna {

inline constexpr double pi = 3.14159265358979323846;
inline constexpr double two_pi = 2.0 * pi;
inline constexpr double half_pi = 0.5 * pi;

/// Convert radians to degrees.
constexpr double rad_to_deg(double radians) noexcept { return radians * (180.0 / pi); }

/// Convert degrees to radians.
constexpr double deg_to_rad(double degrees) noexcept { return degrees * (pi / 180.0); }

/// Wrap a phase into (-pi, pi].
double wrap_phase(double radians) noexcept;

/// Unwrap a phase sequence in place so consecutive samples differ by < pi.
/// Returns the unwrapped value given the previous unwrapped sample.
double unwrap_step(double previous_unwrapped, double wrapped) noexcept;

/// Normalized sinc: sinc(0) = 1, sinc(x) = sin(pi x)/(pi x).
double sinc(double x) noexcept;

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool almost_equal(double a, double b, double abs_tol = 1e-12, double rel_tol = 1e-9) noexcept;

/// Integer power of two check.
constexpr bool is_power_of_two(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n must be nonzero and representable).
std::size_t next_power_of_two(std::size_t n) noexcept;

/// Linear interpolation between a and b.
constexpr double lerp(double a, double b, double t) noexcept { return a + t * (b - a); }

/// Square helper (clearer than std::pow(x, 2) in hot paths).
constexpr double square(double x) noexcept { return x * x; }

} // namespace bistna
