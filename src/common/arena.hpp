// Monotonic buffer arena for the render->measure hot path (extension).
//
// A screening lot renders and measures hundreds of thousands of large
// records (tens of kB each), and before this arena every pipeline stage
// churned a fresh std::vector<double> per die per stage -- the allocator
// and the page faults behind it showed up right next to the arithmetic in
// the lot profile.  The arena replaces that churn with bump allocation
// over blocks that are *kept* across reset(): a sweep worker allocates
// whatever its work item needs, resets between items, and after the first
// item never touches the heap again.
//
// Semantics:
//   * allocate<T>(count) bump-allocates count T's (64-byte aligned, so
//     lane-major kernel rows start on cache lines / AVX vectors).
//     Trivially-destructible T only: reset() never runs destructors.
//   * reset() makes the full capacity reusable without releasing it --
//     the same sequence of allocations after a reset lands in the same
//     blocks (test-pinned), so steady-state workers are allocation-free.
//   * Exhaustion grows the arena by appending a block at least as large
//     as the request and >= twice the previous block (geometric, so a
//     worker converges to one block after warm-up); existing allocations
//     are never moved or invalidated by growth.
//   * Not thread-safe by design: one arena per worker.  shrink() releases
//     everything (for tests and idle trimming).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace bistna {

class arena {
public:
    /// `initial_bytes` sizes the first block, allocated lazily on first use.
    explicit arena(std::size_t initial_bytes = default_initial_bytes);

    arena(const arena&) = delete;
    arena& operator=(const arena&) = delete;
    arena(arena&&) noexcept = default;
    arena& operator=(arena&&) noexcept = default;

    /// Bump-allocate `count` elements of a trivially destructible type,
    /// 64-byte aligned, *uninitialized*.  Valid until reset()/shrink().
    template <typename T>
    std::span<T> allocate(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without running destructors");
        static_assert(alignof(T) <= alignment, "over-aligned type");
        void* p = allocate_bytes(count * sizeof(T));
        return {static_cast<T*>(p), count};
    }

    /// allocate<double> + zero fill (accumulator rows).
    std::span<double> allocate_zeroed(std::size_t count);

    /// Reclaim every allocation while *keeping* the capacity: the next
    /// allocation sequence reuses the existing blocks front to back.
    void reset() noexcept;

    /// Release all blocks back to the heap (capacity drops to zero).
    void shrink() noexcept;

    /// Bytes currently handed out (since construction or the last reset).
    std::size_t used_bytes() const noexcept { return used_; }
    /// Bytes of block capacity owned (survives reset, grows on demand).
    std::size_t capacity_bytes() const noexcept { return capacity_; }
    /// Largest used_bytes() ever observed -- the worker's working set.
    std::size_t high_water_bytes() const noexcept { return high_water_; }
    /// Blocks owned; converges to 1 once the first block fits a whole item.
    std::size_t blocks() const noexcept { return blocks_.size(); }

    static constexpr std::size_t alignment = 64;
    static constexpr std::size_t default_initial_bytes = std::size_t{1} << 20;

private:
    struct block {
        std::unique_ptr<unsigned char[]> storage;
        std::size_t size = 0;    ///< usable bytes (aligned base)
        std::size_t offset = 0;  ///< bump pointer within the block
        unsigned char* base = nullptr;
    };

    void* allocate_bytes(std::size_t bytes);
    block& grow(std::size_t min_bytes);

    std::vector<block> blocks_;
    std::size_t active_ = 0; ///< block the bump pointer lives in
    std::size_t initial_bytes_;
    std::size_t used_ = 0;
    std::size_t capacity_ = 0;
    std::size_t high_water_ = 0;
};

} // namespace bistna
