#include "common/error.hpp"

#include <sstream>

namespace bistna::detail {

void throw_precondition(const char* condition, const char* file, int line,
                        const std::string& message) {
    std::ostringstream os;
    os << "precondition failed: " << message << " [" << condition << "] at " << file << ':'
       << line;
    throw precondition_error(os.str());
}

} // namespace bistna::detail
