// Minimal strict JSON: objects, arrays, strings (basic escapes), numbers,
// booleans, null.  Anything else -- trailing garbage, unknown escapes,
// duplicate object keys, unterminated anything -- throws
// configuration_error naming the byte offset.
//
// Extracted from the shard manifest parser once a second consumer appeared
// (the telemetry trace-export round-trip tests): the container ships no
// JSON library, and two hand-rolled parsers drifting apart would be worse
// than one deliberately small one.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bistna {

struct json_value {
    enum class kind { null, boolean, number, string, object, array };
    kind type = kind::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<std::pair<std::string, json_value>> members; ///< insertion order
    std::vector<json_value> elements;

    const json_value* find(const std::string& key) const {
        for (const auto& [name, value] : members) {
            if (name == key) {
                return &value;
            }
        }
        return nullptr;
    }
};

/// Parse one complete JSON document.  `context` prefixes every error
/// message ("manifest JSON", "trace JSON", ...), so a failure names both
/// the document kind and the byte offset of the first offending byte.
json_value parse_json(std::string_view text, const std::string& context = "JSON");

/// Escape a string for embedding between JSON double quotes (the inverse
/// of the parser's basic-escape handling).
std::string json_escape(const std::string& s);

/// Format a finite double as a JSON number: shortest exact round-trip via
/// std::to_chars, so the output is locale-independent (an ostream under a
/// comma-decimal locale would emit "0,03" -- invalid JSON) and parses back
/// to the identical bit pattern.  Integral values below 2^53 print without
/// an exponent or trailing ".0" so seeds stay readable.  Throws
/// configuration_error on NaN/inf -- JSON has no spelling for them, and a
/// writer that silently emitted "null" would break the strict round trip.
std::string json_number(double value);

/// Serialize a json_value as one compact JSON document -- the exact
/// inverse of parse_json: to_json(parse_json(t)) reparses to an equal
/// tree, and parse_json(to_json(v)) == v for any tree the writer accepts
/// (finite numbers only).  Object members keep insertion order.
std::string to_json(const json_value& value);

/// True when two parsed trees are structurally equal (same kinds, member
/// order, string bytes; numbers compared by bit pattern so -0.0 != 0.0
/// mirrors the round-trip guarantee).
bool json_equal(const json_value& a, const json_value& b);

} // namespace bistna
