// ASCII table rendering for bench reports.
//
// Every bench prints its reproduced figure/table as an aligned text table
// (paper value vs measured value side by side), mirroring how the paper
// reports its results.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bistna {

class ascii_table {
public:
    explicit ascii_table(std::vector<std::string> column_names);

    /// Append a preformatted row; must match the column count.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with the given precision.
    void add_row(const std::vector<double>& values, int precision = 4);

    /// Render with column alignment and a header separator.
    void print(std::ostream& os) const;

    std::size_t rows() const noexcept { return rows_.size(); }
    std::size_t columns() const noexcept { return columns_.size(); }

private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed text/number rows).
std::string format_fixed(double value, int precision = 3);

/// Format a double in scientific notation.
std::string format_sci(double value, int precision = 3);

} // namespace bistna
