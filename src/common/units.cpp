#include "common/units.hpp"

#include <cmath>
#include <limits>

namespace bistna {

double amplitude_ratio_to_db(double ratio) noexcept {
    const double magnitude = std::abs(ratio);
    if (magnitude == 0.0) {
        return -std::numeric_limits<double>::infinity();
    }
    return 20.0 * std::log10(magnitude);
}

double db_to_amplitude_ratio(double db) noexcept { return std::pow(10.0, db / 20.0); }

double power_ratio_to_db(double ratio) noexcept {
    if (ratio <= 0.0) {
        return -std::numeric_limits<double>::infinity();
    }
    return 10.0 * std::log10(ratio);
}

double amplitude_to_dbfs(double amplitude, double full_scale) noexcept {
    return amplitude_ratio_to_db(amplitude / full_scale);
}

} // namespace bistna
