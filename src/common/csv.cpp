#include "common/csv.hpp"

#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace bistna {

csv_writer::csv_writer(const std::string& path) : path_(path), out_(path) {
    if (!out_) {
        throw configuration_error("csv_writer: cannot open '" + path + "' for writing");
    }
}

void csv_writer::header(std::initializer_list<std::string> names) {
    header(std::vector<std::string>(names));
}

void csv_writer::header(const std::vector<std::string>& names) { write_cells(names); }

void csv_writer::row(std::initializer_list<double> values) {
    row(std::vector<double>(values));
}

void csv_writer::row(const std::vector<double>& values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        std::ostringstream os;
        os.precision(std::numeric_limits<double>::max_digits10);
        os << v;
        cells.push_back(os.str());
    }
    write_cells(cells);
}

void csv_writer::text_row(const std::vector<std::string>& cells) { write_cells(cells); }

void csv_writer::write_cells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            out_ << ',';
        }
        out_ << csv_escape(cells[i]);
    }
    out_ << '\n';
}

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace bistna
