#include "common/csv.hpp"

#include <charconv>
#include <system_error>

#include "common/error.hpp"

namespace bistna {

namespace {

/// Locale-independent double formatting via to_chars (shortest form that
/// round-trips bit-exactly).  An ostream would consult the global locale:
/// under a comma-decimal locale (de_DE etc.) it writes "3,14", which both
/// corrupts the cell separation and can never be parsed back -- shards
/// written on one machine must load on any other, whatever locale the
/// host program set.  NaN/inf format as "nan"/"-nan"/"inf"/"-inf",
/// exactly what from_chars accepts.
std::string format_cell(double v) {
    char buf[64];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc{}) {
        throw configuration_error("csv_writer: cannot format double cell");
    }
    return std::string(buf, end);
}

} // namespace

csv_writer::csv_writer(const std::string& path) : path_(path), out_(path) {
    if (!out_) {
        throw configuration_error("csv_writer: cannot open '" + path + "' for writing");
    }
}

void csv_writer::header(std::initializer_list<std::string> names) {
    header(std::vector<std::string>(names));
}

void csv_writer::header(const std::vector<std::string>& names) { write_cells(names); }

void csv_writer::row(std::initializer_list<double> values) {
    row(std::vector<double>(values));
}

void csv_writer::row(const std::vector<double>& values) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values) {
        cells.push_back(format_cell(v));
    }
    write_cells(cells);
}

void csv_writer::text_row(const std::vector<std::string>& cells) { write_cells(cells); }

void csv_writer::write_cells(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) {
            out_ << ',';
        }
        out_ << csv_escape(cells[i]);
    }
    out_ << '\n';
}

std::string csv_escape(const std::string& cell) {
    const bool needs_quotes =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::size_t csv_document::column(const std::string& name) const {
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name) {
            return i;
        }
    }
    throw configuration_error("csv_document: no column named '" + name + "'");
}

std::vector<std::string> csv_split(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    cell += '"'; // escaped quote
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                cell += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    if (quoted) {
        throw configuration_error("csv_split: unterminated quote in '" + line + "'");
    }
    cells.push_back(std::move(cell));
    return cells;
}

csv_document csv_read(const std::string& path, bool has_header) {
    std::ifstream in(path);
    if (!in) {
        throw configuration_error("csv_read: cannot open '" + path + "' for reading");
    }

    csv_document doc;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty()) {
            continue;
        }
        auto cells = csv_split(line);
        // Tolerate a Windows-style trailing comma: "1,2," means two
        // values, not two values and an unparseable empty cell.  Only one
        // trailing empty cell is dropped, and only when the row has other
        // cells -- interior empties still fail loudly below.
        if (cells.size() > 1 && cells.back().empty()) {
            cells.pop_back();
        }
        if (first && has_header) {
            doc.header = std::move(cells);
            first = false;
            continue;
        }
        first = false;
        std::vector<double> values;
        values.reserve(cells.size());
        for (const auto& cell : cells) {
            // from_chars, not strtod: locale-independent, so the round trip
            // survives a host program that set LC_NUMERIC.  "nan"/"inf"
            // cells (e.g. an unmeasured thd_db) parse to the canonical
            // quiet NaN / infinity with their sign preserved.
            double value = 0.0;
            const char* end = cell.data() + cell.size();
            const auto [ptr, ec] = std::from_chars(cell.data(), end, value);
            if (ec != std::errc{} || ptr != end) {
                throw configuration_error("csv_read: non-numeric cell '" + cell + "' in '" +
                                          path + "'");
            }
            values.push_back(value);
        }
        doc.rows.push_back(std::move(values));
    }
    return doc;
}

void csv_write(const csv_document& doc, const std::string& path) {
    csv_writer writer(path);
    if (!doc.header.empty()) {
        writer.header(doc.header);
    }
    for (const auto& row : doc.rows) {
        writer.row(row);
    }
}

} // namespace bistna
