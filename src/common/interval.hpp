// Closed-interval arithmetic.
//
// The evaluator's signature processing (paper eqs. (3)-(5)) reports every
// measurement as a *bounded interval*: the signatures carry quantization
// error terms eps in [-4, 4], and the DSP propagates those bounds through
// sqrt/hypot/ratio/atan.  This header provides the interval type used for
// that propagation.
#pragma once

#include <iosfwd>

namespace bistna {

/// A closed interval [lo, hi] on the real line.  Invariant: lo <= hi.
class interval {
public:
    /// The degenerate interval [0, 0].
    constexpr interval() = default;

    /// The degenerate interval [x, x].
    constexpr explicit interval(double x) : lo_(x), hi_(x) {}

    /// The interval [lo, hi]; throws precondition_error if lo > hi.
    interval(double lo, double hi);

    /// Build from two unordered endpoints.
    static interval from_unordered(double a, double b);

    /// [center - radius, center + radius]; radius must be >= 0.
    static interval centered(double center, double radius);

    constexpr double lo() const noexcept { return lo_; }
    constexpr double hi() const noexcept { return hi_; }
    constexpr double width() const noexcept { return hi_ - lo_; }
    constexpr double midpoint() const noexcept { return 0.5 * (lo_ + hi_); }
    constexpr double radius() const noexcept { return 0.5 * (hi_ - lo_); }

    constexpr bool contains(double x) const noexcept { return lo_ <= x && x <= hi_; }
    constexpr bool contains(const interval& other) const noexcept {
        return lo_ <= other.lo_ && other.hi_ <= hi_;
    }
    constexpr bool intersects(const interval& other) const noexcept {
        return lo_ <= other.hi_ && other.lo_ <= hi_;
    }
    /// True when the whole interval is strictly positive (lo > 0).
    constexpr bool strictly_positive() const noexcept { return lo_ > 0.0; }
    /// True when 0 is in the interval.
    constexpr bool contains_zero() const noexcept { return contains(0.0); }

    friend constexpr bool operator==(const interval&, const interval&) = default;

    interval operator+(const interval& other) const;
    interval operator-(const interval& other) const;
    interval operator*(const interval& other) const;
    interval operator+(double x) const;
    interval operator-(double x) const;
    interval operator*(double k) const;
    interval operator/(double k) const;
    interval operator-() const;

    /// Interval quotient; throws configuration_error when the divisor
    /// contains zero (the quotient would be unbounded).
    interval operator/(const interval& divisor) const;

private:
    double lo_ = 0.0;
    double hi_ = 0.0;
};

interval operator*(double k, const interval& iv);
interval operator+(double x, const interval& iv);

/// Smallest interval containing both arguments.
interval hull(const interval& a, const interval& b);

/// Intersection; throws configuration_error when empty.
interval intersect(const interval& a, const interval& b);

/// Image of the interval under sqrt; requires lo >= 0.
interval sqrt(const interval& iv);

/// Image under x -> x^2 (handles sign-straddling intervals).
interval square(const interval& iv);

/// Tight enclosure of hypot(a, b) = sqrt(a^2 + b^2) over the box a x b.
/// This is the exact form used by paper eq. (4): min/max of
/// sqrt((I1+eps1)^2 + (I2+eps2)^2) over eps in [-4,4]^2.
interval hypot(const interval& a, const interval& b);

/// Image under atan (monotonic).
interval atan(const interval& iv);

/// Phase interval (radians) of the point set {(c, s) : c in cos_axis, s in
/// sin_axis} via atan2, assuming the set does not enclose the origin; the
/// result is the hull of the four corner phases (suitable for the small
/// uncertainty boxes produced by eq. (5)).  Throws configuration_error when
/// both intervals contain zero.
interval atan2_box(const interval& sin_axis, const interval& cos_axis);

std::ostream& operator<<(std::ostream& os, const interval& iv);

} // namespace bistna
