#include "common/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bistna {

void running_stats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::range() const noexcept { return count_ == 0 ? 0.0 : max_ - min_; }

double percentile(std::vector<double> samples, double q) {
    BISTNA_EXPECTS(!samples.empty(), "percentile of empty batch");
    BISTNA_EXPECTS(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
    std::sort(samples.begin(), samples.end());
    const double position = q * static_cast<double>(samples.size() - 1);
    const auto lower = static_cast<std::size_t>(position);
    const double fraction = position - static_cast<double>(lower);
    if (lower + 1 >= samples.size()) {
        return samples.back();
    }
    return samples[lower] + fraction * (samples[lower + 1] - samples[lower]);
}

summary summarize(std::vector<double> samples) {
    BISTNA_EXPECTS(!samples.empty(), "summarize of empty batch");
    running_stats stats;
    for (double x : samples) {
        stats.add(x);
    }
    summary result;
    result.count = stats.count();
    result.mean = stats.mean();
    result.stddev = stats.stddev();
    result.min = stats.min();
    result.max = stats.max();
    result.median = percentile(samples, 0.5);
    result.p05 = percentile(samples, 0.05);
    result.p95 = percentile(std::move(samples), 0.95);
    return result;
}

double rms(const std::vector<double>& samples) noexcept {
    if (samples.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (double x : samples) {
        acc += x * x;
    }
    return std::sqrt(acc / static_cast<double>(samples.size()));
}

double peak_abs(const std::vector<double>& samples) noexcept {
    double peak = 0.0;
    for (double x : samples) {
        peak = std::max(peak, std::abs(x));
    }
    return peak;
}

} // namespace bistna
