// Clocked comparator (dynamic latch) used by the sigma-delta modulator.
//
// Behavioral non-idealities: input-referred offset and hysteresis.  Both
// fold into the modulator's effective offset/dead-zone; the signature
// arithmetic cancels the offset (paper section II) and the +/-4 bound
// absorbs the rest, which the ablation benches verify.
#pragma once

namespace bistna::sd {

class comparator {
public:
    comparator(double offset_volts = 0.0, double hysteresis_volts = 0.0)
        : offset_(offset_volts), hysteresis_(hysteresis_volts) {}

    /// Latch decision: returns +1 or -1.
    int decide(double input) noexcept {
        const double threshold =
            offset_ + (last_decision_ > 0 ? -hysteresis_ : +hysteresis_) * 0.5;
        last_decision_ = input >= threshold ? +1 : -1;
        return last_decision_;
    }

    void reset() noexcept { last_decision_ = +1; }

    double offset() const noexcept { return offset_; }
    double hysteresis() const noexcept { return hysteresis_; }

private:
    double offset_;
    double hysteresis_;
    int last_decision_ = +1;
};

} // namespace bistna::sd
