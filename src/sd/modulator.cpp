#include "sd/modulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace bistna::sd {

modulator_params modulator_params::ideal() {
    modulator_params p;
    p.dc_gain_db = 300.0;
    p.settling_error = 0.0;
    p.integrator_swing = 1e9;
    p.input_offset = 0.0;
    p.comparator_offset = 0.0;
    p.comparator_hysteresis = 0.0;
    p.noise_rms = 0.0;
    return p;
}

double modulator_params::integrator_leak() const noexcept {
    return 1.0 - ci_over_cf / std::pow(10.0, dc_gain_db / 20.0);
}

double modulator_params::dc_gain_db_for_leak(double leak, double ci_over_cf) noexcept {
    return 20.0 * std::log10(ci_over_cf / leak);
}

modulator_params modulator_params::cmos035() {
    modulator_params p;
    p.dc_gain_db = 72.0;
    p.settling_error = 2e-5;
    p.integrator_swing = 2.0;
    p.input_offset = 1.2e-3; // representative op-amp offset
    p.comparator_offset = 2.0e-3;
    p.comparator_hysteresis = 0.5e-3;
    p.noise_rms = 60.0e-6;
    return p;
}

sd_modulator::sd_modulator(modulator_params params, bistna::rng noise_rng)
    : params_(params),
      comparator_(params.comparator_offset, params.comparator_hysteresis),
      rng_(noise_rng) {
    BISTNA_EXPECTS(params.ci_over_cf > 0.0, "CI/CF must be positive");
    BISTNA_EXPECTS(params.vref > 0.0, "Vref must be positive");
    // Finite DC gain makes the integrator lossy.
    leak_ = params.integrator_leak();
    has_noise_ = params.noise_rms > 0.0;
}

int sd_modulator::step(double input, bool modulation_positive) {
    // Comparator decides on the current state; 1-bit DAC feeds back.
    const int bit = comparator_.decide(state_);

    const double modulated = (modulation_positive ? input : -input) + params_.input_offset;
    // The noiseless path never touches the RNG (the ideal proof-object
    // modulator pays nothing for randomness it discards).
    const double increment =
        has_noise_ ? params_.ci_over_cf * (modulated + rng_.gaussian(0.0, params_.noise_rms) -
                                           static_cast<double>(bit) * params_.vref)
                   : params_.ci_over_cf *
                         (modulated - static_cast<double>(bit) * params_.vref);

    double next = leak_ * state_ + increment * (1.0 - params_.settling_error);
    const double clipped = std::clamp(next, -params_.integrator_swing, params_.integrator_swing);
    if (clipped != next) {
        ++clip_events_;
    }
    state_ = clipped;
    return bit;
}

void sd_modulator::reset(double initial_state) {
    state_ = initial_state;
    comparator_.reset();
    clip_events_ = 0;
}

} // namespace bistna::sd
