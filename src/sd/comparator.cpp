#include "sd/comparator.hpp"

// comparator is header-only; this translation unit anchors the library.
namespace bistna::sd {
namespace {
[[maybe_unused]] constexpr int anchor = 0;
} // namespace
} // namespace bistna::sd
