#include "sd/bitstream.hpp"

#include "common/error.hpp"

namespace bistna::sd {

long long accumulate_bits(const std::vector<int>& bits) {
    long long acc = 0;
    for (int b : bits) {
        acc += b;
    }
    return acc;
}

std::vector<long long> running_sum(const std::vector<int>& bits) {
    std::vector<long long> out;
    out.reserve(bits.size());
    long long acc = 0;
    for (int b : bits) {
        acc += b;
        out.push_back(acc);
    }
    return out;
}

double bitstream_mean_volts(const std::vector<int>& bits, double vref) {
    BISTNA_EXPECTS(!bits.empty(), "bitstream mean of empty stream");
    return vref * static_cast<double>(accumulate_bits(bits)) /
           static_cast<double>(bits.size());
}

std::vector<double> boxcar_decode(const std::vector<int>& bits, std::size_t window,
                                  double vref) {
    BISTNA_EXPECTS(window > 0, "boxcar window must be positive");
    BISTNA_EXPECTS(bits.size() >= window, "bitstream shorter than boxcar window");
    std::vector<double> out;
    out.reserve(bits.size() - window + 1);
    long long acc = 0;
    for (std::size_t i = 0; i < window; ++i) {
        acc += bits[i];
    }
    out.push_back(vref * static_cast<double>(acc) / static_cast<double>(window));
    for (std::size_t i = window; i < bits.size(); ++i) {
        acc += bits[i] - bits[i - window];
        out.push_back(vref * static_cast<double>(acc) / static_cast<double>(window));
    }
    return out;
}

} // namespace bistna::sd
