// Lockstep structure-of-arrays bank of first-order sigma-delta modulators.
//
// Screening a production lot evaluates many independent dice whose
// modulators execute the *same* instruction sequence on different data --
// the ideal SIMD shape.  The bank keeps N modulators' state, leak, offset
// and comparator lanes in contiguous arrays and advances all of them in one
// straight-line inner loop the compiler can vectorize across lanes.
//
// Contract with the scalar reference (sd_modulator):
//   * lane l constructed via add_lane(params, rng) produces the exact
//     bit/state/clip sequence of sd_modulator(params, rng) fed the same
//     inputs -- per-lane arithmetic is straight-line, never reassociated,
//     and lanes never interact (so any lane count and any lane permutation
//     yields the same per-lane results);
//   * each lane owns its own clip counter and noise RNG stream;
//   * lanes with noise_rms == 0 never draw from their RNG, and a bank whose
//     lanes are all noiseless runs a branch-free inner loop with the check
//     hoisted out entirely.
#pragma once

#include <cstddef>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "sd/modulator.hpp"

namespace bistna::sd {

class modulator_bank {
public:
    modulator_bank() = default;

    /// Append a lane that behaves exactly like sd_modulator(params,
    /// noise_rng); returns the lane index.
    std::size_t add_lane(const modulator_params& params,
                         bistna::rng noise_rng = bistna::rng(0));

    std::size_t lanes() const noexcept { return state_.size(); }

    /// One lockstep master-clock sample: lane l consumes inputs[l], the
    /// shared modulation sign applies to every lane, and bits_out[l]
    /// receives the lane's output bit as +1.0 / -1.0.
    void step(const double* inputs, bool modulation_positive, double* bits_out) noexcept;

    /// Lockstep acquisition over `count` samples: lane l consumes
    /// records[l][n] with modulation control qs[n] (nonzero = positive,
    /// shared across lanes) and accumulates acc[l] += acc_signs[n] * bit --
    /// the eqs. (3)-(5) signature counters of every lane in one pass.  The
    /// +/-1 sums are exact in double up to 2^53 counts.
    void accumulate(const double* const* records, const unsigned char* qs,
                    const double* acc_signs, std::size_t count, double* acc) noexcept;

    /// accumulate() over records that are already *lane-major*: sample n's
    /// inputs live at xs[n * lanes() .. n * lanes() + lanes()), exactly the
    /// layout dut::state_space_bank emits, so the whole render->measure
    /// pipeline runs without a transpose.  qsigns[n] / acc_signs[n] are the
    /// shared modulation and accumulation signs as exact +/-1 doubles
    /// (eval's cached demod tables).  Bit-identical per lane to the scalar
    /// modulator fed the same per-lane sample sequence.
    void accumulate_lane_major(const double* xs, const double* qsigns,
                               const double* acc_signs, std::size_t count,
                               double* acc) noexcept;

    /// accumulate() over one record shared by every lane (the cache-shared
    /// calibration staircase): lane l consumes record[n] for all l, with no
    /// transpose and no lane-major copy of the broadcast input.
    void accumulate_shared(const double* record, const double* qsigns,
                           const double* acc_signs, std::size_t count,
                           double* acc) noexcept;

    /// accumulate() with the transpose scratch bump-allocated from `scratch`
    /// instead of the heap (the sweep workers' per-item arena).
    void accumulate(const double* const* records, const unsigned char* qs,
                    const double* acc_signs, std::size_t count, double* acc,
                    arena& scratch) noexcept;

    /// Grounded-input lockstep run (input 0, positive modulation, unit
    /// accumulation sign): the offset-calibration hot loop.
    void accumulate_grounded(std::size_t count, double* acc) noexcept;

    /// Restart lane `lane` like sd_modulator::reset.
    void reset_lane(std::size_t lane, double initial_state = 0.0);

    /// Integrator state of one lane (for bound verification and tests).
    double state(std::size_t lane) const;
    std::size_t clip_events(std::size_t lane) const;
    const modulator_params& params(std::size_t lane) const;

private:
    // SoA lanes.  Comparator decisions and clip counters are kept as
    // doubles (+1/-1 and exact small integers) so the inner loop stays in
    // one vector domain.
    std::vector<double> state_;
    std::vector<double> last_;        ///< comparator last decision, +1/-1
    std::vector<double> leak_;
    std::vector<double> b_;           ///< CI/CF
    std::vector<double> vref_;
    std::vector<double> input_offset_;
    std::vector<double> settle_gain_; ///< 1 - settling_error
    std::vector<double> swing_;
    std::vector<double> cmp_offset_;
    std::vector<double> cmp_hyst_;
    std::vector<double> noise_rms_;
    std::vector<double> clip_;        ///< per-lane clip event count
    std::vector<bistna::rng> rng_;
    std::vector<modulator_params> params_;
    bool any_noise_ = false;
};

} // namespace bistna::sd
