#include "sd/modulator_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/kernel.hpp"

namespace bistna::sd {

namespace {

// Restrict-qualified views of the lane arrays: the hot loops below are the
// whole point of the bank, and without the no-alias promise the compiler
// must assume acc/records overlap the state lanes and give up on
// vectorizing.
struct lane_view {
    double* __restrict state;
    double* __restrict last;
    const double* __restrict leak;
    const double* __restrict b;
    const double* __restrict vref;
    const double* __restrict input_offset;
    const double* __restrict settle_gain;
    const double* __restrict swing;
    const double* __restrict cmp_offset;
    const double* __restrict cmp_hyst;
    const double* __restrict noise_rms;
    double* __restrict clip;
};

/// One lane's master-clock sample: the exact arithmetic of
/// sd_modulator::step (comparator decide, input modulation, leaky
/// integrator update, swing clip), straight-line per lane.  WithNoise lanes
/// keep the per-sample draw conditional on their own noise_rms so a
/// noiseless lane in a mixed bank still matches its scalar counterpart bit
/// for bit.
template <bool WithNoise>
inline double advance_lane(const lane_view& v, bistna::rng* rngs, std::size_t l, double x,
                           bool modulation_positive) noexcept {
    const double s = v.state[l];
    const double threshold =
        v.cmp_offset[l] + (v.last[l] > 0.0 ? -v.cmp_hyst[l] : +v.cmp_hyst[l]) * 0.5;
    const double bit = s >= threshold ? 1.0 : -1.0;
    v.last[l] = bit;

    const double modulated = (modulation_positive ? x : -x) + v.input_offset[l];
    double increment;
    if constexpr (WithNoise) {
        increment = v.noise_rms[l] > 0.0
                        ? v.b[l] * (modulated + rngs[l].gaussian(0.0, v.noise_rms[l]) -
                                    bit * v.vref[l])
                        : v.b[l] * (modulated - bit * v.vref[l]);
    } else {
        increment = v.b[l] * (modulated - bit * v.vref[l]);
    }

    const double next = v.leak[l] * s + increment * v.settle_gain[l];
    const double clipped = std::clamp(next, -v.swing[l], v.swing[l]);
    v.clip[l] += clipped != next ? 1.0 : 0.0;
    v.state[l] = clipped;
    return bit;
}

// ---------------------------------------------------------------------------
// Branchless all-noiseless kernels: the arithmetic is the sd_modulator::step
// sequence with the two per-lane ternaries replaced by exact sign flips --
// (last > 0 ? -h : +h) == (-last) * h and (q ? x : -x) == qsign * x when
// last/qsign are exactly +/-1 (multiplication by +/-1.0 is exact in IEEE
// 754) -- so every lane stays bit-identical to its scalar counterpart while
// the loop body becomes pure straight-line selects the compiler vectorizes
// across lanes.
// ---------------------------------------------------------------------------

// Runtime-dispatched AVX2 clones where the toolchain supports them (see
// common/kernel.hpp for why sanitizer builds fall back to the plain
// kernel and why the clones stay bit-identical).
#define BISTNA_BANK_KERNEL BISTNA_KERNEL_CLONES

/// A block of lockstep samples over all lanes: xs is lane-major (sample
/// j's inputs at xs[j * n_lanes], transposed by the caller), qsigns[j] /
/// signs[j] the shared modulation and accumulation signs as exact +/-1.
/// The sample loop lives inside the kernel so a dispatched clone is
/// entered once per block, not once per sample.
BISTNA_BANK_KERNEL
void noiseless_block(std::size_t samples, std::size_t n_lanes, const double* __restrict xs,
                     const double* __restrict qsigns, const double* __restrict signs,
                     double* __restrict acc, double* __restrict state,
                     double* __restrict last, const double* __restrict leak,
                     const double* __restrict b, const double* __restrict vref,
                     const double* __restrict input_offset,
                     const double* __restrict settle_gain, const double* __restrict swing,
                     const double* __restrict cmp_offset, const double* __restrict cmp_hyst,
                     double* __restrict clip) noexcept {
    for (std::size_t j = 0; j < samples; ++j) {
        const double qsign = qsigns[j];
        const double sign = signs[j];
        const double* __restrict x_row = xs + j * n_lanes;
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double s = state[l];
            const double threshold = cmp_offset[l] + (-last[l]) * cmp_hyst[l] * 0.5;
            const double bit = s >= threshold ? 1.0 : -1.0;
            last[l] = bit;
            const double modulated = qsign * x_row[l] + input_offset[l];
            const double increment = b[l] * (modulated - bit * vref[l]);
            const double next = leak[l] * s + increment * settle_gain[l];
            const double lo = -swing[l];
            const double hi = swing[l];
            const double clipped = next < lo ? lo : (next > hi ? hi : next);
            clip[l] += clipped != next ? 1.0 : 0.0;
            state[l] = clipped;
            acc[l] += sign * bit;
        }
    }
}

/// Broadcast variant: every lane consumes the *same* record (the
/// cache-shared calibration staircase), so the per-sample input is one
/// scalar load splat across the lane vectors instead of a lane-major row
/// -- no transpose, no broadcast copy.
BISTNA_BANK_KERNEL
void noiseless_block_shared(std::size_t samples, std::size_t n_lanes,
                            const double* __restrict xs, const double* __restrict qsigns,
                            const double* __restrict signs, double* __restrict acc,
                            double* __restrict state, double* __restrict last,
                            const double* __restrict leak, const double* __restrict b,
                            const double* __restrict vref,
                            const double* __restrict input_offset,
                            const double* __restrict settle_gain,
                            const double* __restrict swing,
                            const double* __restrict cmp_offset,
                            const double* __restrict cmp_hyst,
                            double* __restrict clip) noexcept {
    for (std::size_t j = 0; j < samples; ++j) {
        const double modulated_x = qsigns[j] * xs[j];
        const double sign = signs[j];
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double s = state[l];
            const double threshold = cmp_offset[l] + (-last[l]) * cmp_hyst[l] * 0.5;
            const double bit = s >= threshold ? 1.0 : -1.0;
            last[l] = bit;
            const double modulated = modulated_x + input_offset[l];
            const double increment = b[l] * (modulated - bit * vref[l]);
            const double next = leak[l] * s + increment * settle_gain[l];
            const double lo = -swing[l];
            const double hi = swing[l];
            const double clipped = next < lo ? lo : (next > hi ? hi : next);
            clip[l] += clipped != next ? 1.0 : 0.0;
            state[l] = clipped;
            acc[l] += sign * bit;
        }
    }
}

/// Grounded-input variant (x = 0, positive modulation, unit accumulation):
/// the offset-calibration hot loop, with the input load folded away.
BISTNA_BANK_KERNEL
void noiseless_grounded_run(std::size_t count, std::size_t n_lanes, double* __restrict acc,
                            double* __restrict state, double* __restrict last,
                            const double* __restrict leak, const double* __restrict b,
                            const double* __restrict vref,
                            const double* __restrict input_offset,
                            const double* __restrict settle_gain,
                            const double* __restrict swing,
                            const double* __restrict cmp_offset,
                            const double* __restrict cmp_hyst,
                            double* __restrict clip) noexcept {
    for (std::size_t n = 0; n < count; ++n) {
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double s = state[l];
            const double threshold = cmp_offset[l] + (-last[l]) * cmp_hyst[l] * 0.5;
            const double bit = s >= threshold ? 1.0 : -1.0;
            last[l] = bit;
            const double modulated = input_offset[l]; // (q ? 0.0 : -0.0) + offset
            const double increment = b[l] * (modulated - bit * vref[l]);
            const double next = leak[l] * s + increment * settle_gain[l];
            const double lo = -swing[l];
            const double hi = swing[l];
            const double clipped = next < lo ? lo : (next > hi ? hi : next);
            clip[l] += clipped != next ? 1.0 : 0.0;
            state[l] = clipped;
            acc[l] += bit;
        }
    }
}

} // namespace

std::size_t modulator_bank::add_lane(const modulator_params& params, bistna::rng noise_rng) {
    BISTNA_EXPECTS(params.ci_over_cf > 0.0, "CI/CF must be positive");
    BISTNA_EXPECTS(params.vref > 0.0, "Vref must be positive");

    state_.push_back(0.0);
    last_.push_back(1.0);
    leak_.push_back(params.integrator_leak());
    b_.push_back(params.ci_over_cf);
    vref_.push_back(params.vref);
    input_offset_.push_back(params.input_offset);
    settle_gain_.push_back(1.0 - params.settling_error);
    swing_.push_back(params.integrator_swing);
    cmp_offset_.push_back(params.comparator_offset);
    cmp_hyst_.push_back(params.comparator_hysteresis);
    noise_rms_.push_back(params.noise_rms);
    clip_.push_back(0.0);
    rng_.push_back(noise_rng);
    params_.push_back(params);
    any_noise_ = any_noise_ || params.noise_rms > 0.0;
    return state_.size() - 1;
}

void modulator_bank::step(const double* inputs, bool modulation_positive,
                          double* bits_out) noexcept {
    const lane_view v{state_.data(),       last_.data(),      leak_.data(),
                      b_.data(),           vref_.data(),      input_offset_.data(),
                      settle_gain_.data(), swing_.data(),     cmp_offset_.data(),
                      cmp_hyst_.data(),    noise_rms_.data(), clip_.data()};
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        for (std::size_t l = 0; l < n_lanes; ++l) {
            bits_out[l] = advance_lane<true>(v, rng_.data(), l, inputs[l], modulation_positive);
        }
    } else {
        for (std::size_t l = 0; l < n_lanes; ++l) {
            bits_out[l] =
                advance_lane<false>(v, rng_.data(), l, inputs[l], modulation_positive);
        }
    }
}

void modulator_bank::accumulate_lane_major(const double* xs, const double* qsigns,
                                           const double* acc_signs, std::size_t count,
                                           double* acc) noexcept {
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        const lane_view v{state_.data(),       last_.data(),      leak_.data(),
                          b_.data(),           vref_.data(),      input_offset_.data(),
                          settle_gain_.data(), swing_.data(),     cmp_offset_.data(),
                          cmp_hyst_.data(),    noise_rms_.data(), clip_.data()};
        for (std::size_t n = 0; n < count; ++n) {
            const bool q = qsigns[n] > 0.0;
            const double sign = acc_signs[n];
            const double* row = xs + n * n_lanes;
            for (std::size_t l = 0; l < n_lanes; ++l) {
                acc[l] += sign * advance_lane<true>(v, rng_.data(), l, row[l], q);
            }
        }
        return;
    }
    // The record is already lane-major: the lockstep kernel consumes it
    // directly, with no per-call transpose at all.
    noiseless_block(count, n_lanes, xs, qsigns, acc_signs, acc, state_.data(),
                    last_.data(), leak_.data(), b_.data(), vref_.data(),
                    input_offset_.data(), settle_gain_.data(), swing_.data(),
                    cmp_offset_.data(), cmp_hyst_.data(), clip_.data());
}

void modulator_bank::accumulate_shared(const double* record, const double* qsigns,
                                       const double* acc_signs, std::size_t count,
                                       double* acc) noexcept {
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        const lane_view v{state_.data(),       last_.data(),      leak_.data(),
                          b_.data(),           vref_.data(),      input_offset_.data(),
                          settle_gain_.data(), swing_.data(),     cmp_offset_.data(),
                          cmp_hyst_.data(),    noise_rms_.data(), clip_.data()};
        for (std::size_t n = 0; n < count; ++n) {
            const bool q = qsigns[n] > 0.0;
            const double sign = acc_signs[n];
            for (std::size_t l = 0; l < n_lanes; ++l) {
                acc[l] += sign * advance_lane<true>(v, rng_.data(), l, record[n], q);
            }
        }
        return;
    }
    noiseless_block_shared(count, n_lanes, record, qsigns, acc_signs, acc, state_.data(),
                           last_.data(), leak_.data(), b_.data(), vref_.data(),
                           input_offset_.data(), settle_gain_.data(), swing_.data(),
                           cmp_offset_.data(), cmp_hyst_.data(), clip_.data());
}

void modulator_bank::accumulate(const double* const* records, const unsigned char* qs,
                                const double* acc_signs, std::size_t count, double* acc,
                                arena& scratch) noexcept {
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        accumulate(records, qs, acc_signs, count, acc);
        return;
    }
    // Same blocked transpose as the allocating overload, with the scratch
    // rows bump-allocated from the worker's arena instead of the heap.
    constexpr std::size_t block = 128;
    const auto transposed = scratch.allocate<double>(block * n_lanes);
    const auto qsigns = scratch.allocate<double>(block);
    for (std::size_t n0 = 0; n0 < count; n0 += block) {
        const std::size_t samples = std::min(block, count - n0);
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double* __restrict record = records[l] + n0;
            double* __restrict column = transposed.data() + l;
            for (std::size_t j = 0; j < samples; ++j) {
                column[j * n_lanes] = record[j];
            }
        }
        for (std::size_t j = 0; j < samples; ++j) {
            qsigns[j] = qs[n0 + j] != 0 ? 1.0 : -1.0;
        }
        noiseless_block(samples, n_lanes, transposed.data(), qsigns.data(), acc_signs + n0,
                        acc, state_.data(), last_.data(), leak_.data(), b_.data(),
                        vref_.data(), input_offset_.data(), settle_gain_.data(),
                        swing_.data(), cmp_offset_.data(), cmp_hyst_.data(), clip_.data());
    }
}

void modulator_bank::accumulate(const double* const* records, const unsigned char* qs,
                                const double* acc_signs, std::size_t count,
                                double* acc) noexcept {
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        const lane_view v{state_.data(),       last_.data(),      leak_.data(),
                          b_.data(),           vref_.data(),      input_offset_.data(),
                          settle_gain_.data(), swing_.data(),     cmp_offset_.data(),
                          cmp_hyst_.data(),    noise_rms_.data(), clip_.data()};
        for (std::size_t n = 0; n < count; ++n) {
            const bool q = qs[n] != 0;
            const double sign = acc_signs[n];
            for (std::size_t l = 0; l < n_lanes; ++l) {
                acc[l] += sign * advance_lane<true>(v, rng_.data(), l, records[l][n], q);
            }
        }
        return;
    }

    // Noiseless fast path: transpose the per-lane records into lane-major
    // blocks so the lockstep kernel reads one contiguous row per sample
    // (the compiler cannot vectorize the records[l][n] pointer-chase).
    constexpr std::size_t block = 128;
    std::vector<double> transposed(block * n_lanes);
    std::vector<double> qsigns(block);
    for (std::size_t n0 = 0; n0 < count; n0 += block) {
        const std::size_t samples = std::min(block, count - n0);
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double* __restrict record = records[l] + n0;
            double* __restrict column = transposed.data() + l;
            for (std::size_t j = 0; j < samples; ++j) {
                column[j * n_lanes] = record[j];
            }
        }
        for (std::size_t j = 0; j < samples; ++j) {
            qsigns[j] = qs[n0 + j] != 0 ? 1.0 : -1.0;
        }
        noiseless_block(samples, n_lanes, transposed.data(), qsigns.data(), acc_signs + n0,
                        acc, state_.data(), last_.data(), leak_.data(), b_.data(),
                        vref_.data(), input_offset_.data(), settle_gain_.data(),
                        swing_.data(), cmp_offset_.data(), cmp_hyst_.data(), clip_.data());
    }
}

void modulator_bank::accumulate_grounded(std::size_t count, double* acc) noexcept {
    const std::size_t n_lanes = lanes();
    if (any_noise_) {
        const lane_view v{state_.data(),       last_.data(),      leak_.data(),
                          b_.data(),           vref_.data(),      input_offset_.data(),
                          settle_gain_.data(), swing_.data(),     cmp_offset_.data(),
                          cmp_hyst_.data(),    noise_rms_.data(), clip_.data()};
        for (std::size_t n = 0; n < count; ++n) {
            for (std::size_t l = 0; l < n_lanes; ++l) {
                acc[l] += advance_lane<true>(v, rng_.data(), l, 0.0, true);
            }
        }
        return;
    }
    noiseless_grounded_run(count, n_lanes, acc, state_.data(), last_.data(), leak_.data(),
                           b_.data(), vref_.data(), input_offset_.data(),
                           settle_gain_.data(), swing_.data(), cmp_offset_.data(),
                           cmp_hyst_.data(), clip_.data());
}

void modulator_bank::reset_lane(std::size_t lane, double initial_state) {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    state_[lane] = initial_state;
    last_[lane] = 1.0;
    clip_[lane] = 0.0;
}

double modulator_bank::state(std::size_t lane) const {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return state_[lane];
}

std::size_t modulator_bank::clip_events(std::size_t lane) const {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return static_cast<std::size_t>(clip_[lane]);
}

const modulator_params& modulator_bank::params(std::size_t lane) const {
    BISTNA_EXPECTS(lane < lanes(), "lane index out of range");
    return params_[lane];
}

} // namespace bistna::sd
