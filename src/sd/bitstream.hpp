// Bitstream utilities: the digital side of the evaluator front-end.
//
// Bits are stored as +1/-1 integers (the counter hardware sums them
// directly; an up/down counter in the paper's 300x300 um digital block).
#pragma once

#include <cstdint>
#include <vector>

namespace bistna::sd {

/// Sum of a +/-1 bitstream (what the signature counters compute).
long long accumulate_bits(const std::vector<int>& bits);

/// Running integral of a bitstream (for convergence plots).
std::vector<long long> running_sum(const std::vector<int>& bits);

/// Mean of the bitstream scaled to volts: vref * sum/len.
double bitstream_mean_volts(const std::vector<int>& bits, double vref);

/// Reconstruct the low-frequency content with a boxcar (moving-average)
/// filter of the given length -- a quick-look decimator for debugging and
/// for the oscilloscope baseline to consume modulator output.
std::vector<double> boxcar_decode(const std::vector<int>& bits, std::size_t window,
                                  double vref);

} // namespace bistna::sd
