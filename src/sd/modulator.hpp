// First-order sigma-delta modulator with square-wave input modulation
// (paper Fig. 5).
//
// The input sampling network is switched by the digital control q_k: the
// sampled input charge enters with positive or negative weight, performing
// the square-wave multiplication *inside* the modulator.  Discrete-time
// behaviour per sample (b = CI/CF = 0.4):
//
//     y[n] = q[n] * x[n]                      (input modulation)
//     d[n] = sign(w[n])                       (comparator)
//     w[n+1] = p*w[n] + b*(y[n] + off - d[n]*Vref) + noise
//
// The paper's dynamic-range engine is the bounded-state property: with
// |y| <= Vref the integrator state stays within +/-2b*Vref, hence
// |sum(y)/Vref - sum(d)| <= 2*(2b*Vref)/(b*Vref) = 4 -- the eps in eqs.
// (3)-(5).  CI/CF = 0.4 was chosen in the paper to avoid amplifier
// saturation while keeping integrator gain; bench_ablation_cicf sweeps it.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sd/comparator.hpp"

namespace bistna::sd {

struct modulator_params {
    double ci_over_cf = 0.4;      ///< input/feedback capacitor ratio (paper: 0.4)
    double vref = 0.7;            ///< reference amplitude; modulator full scale
    double dc_gain_db = 72.0;     ///< integrator op-amp DC gain (leak)
    double settling_error = 2e-5; ///< incomplete settling of each transfer
    double integrator_swing = 2.0;///< integrator output clips here (volts)
    double input_offset = 0.0;    ///< modulator input-referred offset (volts)
    double comparator_offset = 0.0;
    double comparator_hysteresis = 0.0;
    double noise_rms = 0.0;       ///< per-sample sampled noise (volts rms)

    /// Bit-true ideal modulator (the eqs. (3)-(5) proof object).
    static modulator_params ideal();
    /// Behavioral defaults for the 0.35 um prototype.
    static modulator_params cmos035();

    /// Lossy-integrator pole from the finite DC gain: p = 1 - b/A to first
    /// order.  Shared by the scalar modulator and the bank so the two can
    /// never diverge.
    double integrator_leak() const noexcept;

    /// DC gain (dB) that produces a given per-sample leak 1 - p = b/A --
    /// the inverse of integrator_leak(), used by the diag fault model to
    /// express an integrator-leak fault directly on its severity axis.
    static double dc_gain_db_for_leak(double leak, double ci_over_cf = 0.4) noexcept;

    /// Exact (bitwise-value) equality: two equal params drive bit-identical
    /// modulators from equal RNG streams, the precondition of the
    /// calibration-transplant fast path.
    bool operator==(const modulator_params&) const noexcept = default;
};

class sd_modulator {
public:
    explicit sd_modulator(modulator_params params, bistna::rng noise_rng = bistna::rng(0));

    /// One master-clock sample.  `modulation_positive` is the q_k control
    /// (the square-wave sign).  Returns the output bit as +1/-1.
    int step(double input, bool modulation_positive);

    /// Integrator state (for bound verification and tests).
    double state() const noexcept { return state_; }

    /// Restart with a given initial integrator state (e.g. a random residue
    /// from a previous conversion, as happens on silicon).
    void reset(double initial_state = 0.0);

    const modulator_params& params() const noexcept { return params_; }
    std::size_t clip_events() const noexcept { return clip_events_; }

private:
    modulator_params params_;
    comparator comparator_;
    bistna::rng rng_;
    double state_ = 0.0;
    double leak_ = 1.0;
    bool has_noise_ = false; ///< noise_rms > 0, hoisted out of step()
    std::size_t clip_events_ = 0;
};

} // namespace bistna::sd
