#include "ate/capture.hpp"

namespace bistna::ate {

std::vector<double> capture_waveform(const eval::sample_source& source, std::size_t count) {
    std::vector<double> record;
    record.reserve(count);
    for (std::size_t n = 0; n < count; ++n) {
        record.push_back(source(n));
    }
    return record;
}

std::vector<int> capture_bitstream(sd::sd_modulator& modulator,
                                   const eval::sample_source& source, std::size_t count) {
    std::vector<int> bits;
    bits.reserve(count);
    for (std::size_t n = 0; n < count; ++n) {
        bits.push_back(modulator.step(source(n), true));
    }
    return bits;
}

} // namespace bistna::ate
