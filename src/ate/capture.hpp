// Digital acquisition (the ATE's bitstream-capture role in Fig. 7).
//
// Captures modulator bitstreams and board waveforms into memory for
// off-chip processing -- exactly the split the paper uses: only the analog
// part is integrated, the counters/DSP run on the tester.
#pragma once

#include <cstddef>
#include <vector>

#include "eval/signature.hpp"
#include "sd/modulator.hpp"

namespace bistna::ate {

/// Record a waveform from a sample source.
std::vector<double> capture_waveform(const eval::sample_source& source, std::size_t count);

/// Run a modulator over a source and capture the raw bitstream
/// (q = always-positive; used by debugging flows and the decimation demo).
std::vector<int> capture_bitstream(sd::sd_modulator& modulator,
                                   const eval::sample_source& source, std::size_t count);

} // namespace bistna::ate
