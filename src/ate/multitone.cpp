#include "ate/multitone.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::ate {

multitone_source::multitone_source(std::vector<tone> tones, std::size_t n_per_period,
                                   double dc)
    : tones_(std::move(tones)), n_(n_per_period), dc_(dc) {
    BISTNA_EXPECTS(n_per_period > 0, "oversampling ratio must be positive");
    for (const tone& t : tones_) {
        BISTNA_EXPECTS(t.amplitude >= 0.0, "tone amplitude must be non-negative");
        BISTNA_EXPECTS(2 * t.harmonic < n_per_period,
                       "tone harmonic exceeds the Nyquist limit of the sample grid");
    }
}

void multitone_source::set_noise(double rms_volts, std::uint64_t seed) {
    BISTNA_EXPECTS(rms_volts >= 0.0, "noise rms must be non-negative");
    noise_rms_ = rms_volts;
    noise_rng_ = bistna::rng(seed);
}

double multitone_source::sample(std::size_t n) const {
    double x = dc_;
    const double base = two_pi * static_cast<double>(n) / static_cast<double>(n_);
    for (const tone& t : tones_) {
        x += t.amplitude * std::sin(static_cast<double>(t.harmonic) * base + t.phase_rad);
    }
    if (noise_rms_ > 0.0) {
        x += noise_rng_.gaussian(0.0, noise_rms_);
    }
    return x;
}

eval::sample_source multitone_source::as_source() const {
    return [this](std::size_t n) { return sample(n); };
}

multitone_source multitone_source::fig9_stimulus(std::size_t n_per_period, double phase1,
                                                 double phase2, double phase3) {
    return multitone_source({tone{1, 0.2, phase1}, tone{2, 0.02, phase2},
                             tone{3, 0.002, phase3}},
                            n_per_period);
}

} // namespace bistna::ate
