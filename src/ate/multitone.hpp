// ATE-generated analog stimuli (the Agilent 93000's role in Fig. 7/Fig. 9).
//
// The Fig. 9 experiment feeds the evaluator a multitone built from
// harmonics of the wave frequency: x[n] = dc + sum_i A_i sin(2 pi k_i n/N
// + phi_i), plus optional source noise.  Tones are specified on the
// master-clock grid so acquisitions stay coherent by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "eval/signature.hpp"

namespace bistna::ate {

struct tone {
    std::size_t harmonic = 1; ///< multiple of f_wave (0 allowed for DC via `dc` instead)
    double amplitude = 0.0;   ///< volts
    double phase_rad = 0.0;
};

class multitone_source {
public:
    /// n_per_period = oversampling ratio N (96 on the demonstrator board).
    multitone_source(std::vector<tone> tones, std::size_t n_per_period, double dc = 0.0);

    /// Additive white Gaussian source noise (ATE output + board pickup).
    void set_noise(double rms_volts, std::uint64_t seed);

    /// Sample at master-clock index n.
    double sample(std::size_t n) const;

    /// Adapt to the evaluator's streaming interface.
    eval::sample_source as_source() const;

    /// Paper Fig. 9 stimulus: A1 = 0.2 V, A2 = 0.02 V, A3 = 0.002 V.
    static multitone_source fig9_stimulus(std::size_t n_per_period = 96,
                                          double phase1 = 0.3, double phase2 = 1.1,
                                          double phase3 = 2.2);

    const std::vector<tone>& tones() const noexcept { return tones_; }
    double dc() const noexcept { return dc_; }

private:
    std::vector<tone> tones_;
    std::size_t n_;
    double dc_;
    double noise_rms_ = 0.0;
    mutable bistna::rng noise_rng_{0};
};

} // namespace bistna::ate
