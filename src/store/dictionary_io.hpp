// Binary fault-dictionary files: a two-frame store whose second frame is
// one contiguous f64 matrix, laid out for mmap loading.
//
//   file_header
//   frame[dictionary_header]  space component names, healthy signature,
//                             per-trajectory (kind, point count), padded
//                             so the next frame's payload is 8-aligned
//   frame[dictionary_matrix]  row-major doubles: one row per trajectory
//                             point, row = severity, signature[dims];
//                             trajectories concatenated in order
//
// write_dictionary/read_dictionary are the copying round trip (the
// binary siblings of fault_dictionary::write_csv/read_csv, exposed on the
// struct as write_binary/read_binary).  mapped_dictionary validates the
// same file once, then serves classifier-sized matrices as spans straight
// out of the page cache -- no parse, no copy, safe to share read-only
// across processes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "diag/fault_dictionary.hpp"

namespace bistna::store {

void write_dictionary(const diag::fault_dictionary& dictionary, const std::string& path);
diag::fault_dictionary read_dictionary(const std::string& path);

/// Zero-copy view of a binary dictionary file.  Construction maps the
/// file read-only, verifies both frame CRCs and the shape metadata, and
/// resolves the matrix pointer; afterwards every accessor is O(1) into
/// the mapping.  Move-only; the mapping lives as long as the object.
class mapped_dictionary {
public:
    explicit mapped_dictionary(const std::string& path);
    ~mapped_dictionary();

    mapped_dictionary(mapped_dictionary&& other) noexcept;
    mapped_dictionary& operator=(mapped_dictionary&& other) noexcept;
    mapped_dictionary(const mapped_dictionary&) = delete;
    mapped_dictionary& operator=(const mapped_dictionary&) = delete;

    const diag::signature_space& space() const noexcept { return space_; }
    std::size_t dimensions() const noexcept { return dims_; }
    /// Empty when the dictionary recorded no healthy signature.
    std::span<const double> healthy() const noexcept { return healthy_; }

    std::size_t trajectory_count() const noexcept { return kinds_.size(); }
    diag::fault_kind kind(std::size_t trajectory) const;
    std::size_t points(std::size_t trajectory) const;

    /// All rows of all trajectories, straight out of the mapping
    /// (row-major, stride 1 + dimensions()).
    std::span<const double> matrix() const noexcept;
    std::size_t rows() const noexcept { return total_points_; }
    /// One trajectory point's row: [severity, signature...].
    std::span<const double> row(std::size_t trajectory, std::size_t point) const;

    /// Deep copy back into the ordinary in-memory struct (bit-identical
    /// to what read_dictionary returns).
    diag::fault_dictionary materialize() const;

private:
    void unmap() noexcept;

    void* map_ = nullptr;
    std::size_t map_size_ = 0;
    diag::signature_space space_;
    std::size_t dims_ = 0;
    std::vector<double> healthy_;
    std::vector<diag::fault_kind> kinds_;
    std::vector<std::size_t> point_counts_;
    std::vector<std::size_t> row_offsets_; ///< first row index per trajectory
    const double* matrix_ = nullptr;
    std::size_t total_points_ = 0;
};

} // namespace bistna::store
