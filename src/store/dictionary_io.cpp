#include "store/dictionary_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "diag/fault_model.hpp"
#include "store/crc32.hpp"
#include "store/record_io.hpp"
#include "store/records.hpp"

namespace bistna::store {

namespace {

/// Shape metadata decoded from a dictionary_header payload.
struct dictionary_meta {
    diag::signature_space space;
    std::vector<double> healthy;
    std::vector<diag::fault_kind> kinds;
    std::vector<std::size_t> point_counts;
    std::size_t total_points = 0;
};

dictionary_meta parse_meta(std::span<const std::uint8_t> payload,
                           std::uint64_t payload_offset) {
    byte_reader reader(payload, payload_offset);
    dictionary_meta meta;
    const std::uint32_t components = reader.u32();
    std::vector<std::string> names;
    names.reserve(components);
    for (std::uint32_t c = 0; c < components; ++c) {
        names.push_back(reader.str());
    }
    meta.space = diag::signature_space::parse(names);
    meta.healthy = reader.f64_vector();
    const std::size_t dims = meta.space.dimensions();
    if (!meta.healthy.empty() && meta.healthy.size() != dims) {
        throw serialization_error("dictionary healthy signature dimension mismatch",
                                  payload_offset);
    }
    const std::uint32_t trajectories = reader.u32();
    reader.require(static_cast<std::size_t>(trajectories) * 8, "trajectory shapes");
    meta.kinds.reserve(trajectories);
    meta.point_counts.reserve(trajectories);
    for (std::uint32_t t = 0; t < trajectories; ++t) {
        const std::int32_t kind = reader.i32();
        if (kind < 0 || kind >= static_cast<std::int32_t>(diag::fault_kind_count)) {
            throw serialization_error("dictionary trajectory fault kind out of range",
                                      reader.offset() - 4);
        }
        meta.kinds.push_back(static_cast<diag::fault_kind>(kind));
        const std::uint32_t points = reader.u32();
        meta.point_counts.push_back(points);
        meta.total_points += points;
    }
    return meta;
}

std::vector<std::uint8_t> encode_meta(const diag::fault_dictionary& dictionary) {
    byte_writer w;
    const auto names = dictionary.space.component_names();
    w.u32(static_cast<std::uint32_t>(names.size()));
    for (const auto& name : names) {
        w.str(name);
    }
    w.f64_span(dictionary.healthy);
    w.u32(static_cast<std::uint32_t>(dictionary.trajectories.size()));
    for (const auto& trajectory : dictionary.trajectories) {
        w.i32(static_cast<std::int32_t>(trajectory.kind));
        w.u32(static_cast<std::uint32_t>(trajectory.points.size()));
    }
    // Pad so the NEXT frame's doubles land 8-aligned for the mmap path:
    // matrix doubles start at 16 (file header) + 8 (this frame's header)
    // + L (this payload) + 4 (crc) + 8 (matrix frame header) + 8 (row
    // count + pad), which is 8-aligned iff L % 8 == 4.
    while (w.size() % 8 != 4) {
        w.pad(1);
    }
    return w.take();
}

/// The matrix payload: row count, explicit alignment pad, then the rows.
std::vector<std::uint8_t> encode_matrix(const diag::fault_dictionary& dictionary,
                                        std::size_t dims) {
    byte_writer w;
    std::size_t rows = 0;
    for (const auto& trajectory : dictionary.trajectories) {
        rows += trajectory.points.size();
    }
    w.u32(static_cast<std::uint32_t>(rows));
    w.u32(0);
    for (const auto& trajectory : dictionary.trajectories) {
        for (const auto& point : trajectory.points) {
            BISTNA_EXPECTS(point.signature.size() == dims,
                           "dictionary signature does not match its space");
            w.f64(point.severity);
            w.bytes(point.signature.data(), dims * sizeof(double));
        }
    }
    return w.take();
}

constexpr std::size_t matrix_prefix = 8; ///< row count u32 + pad u32

} // namespace

void write_dictionary(const diag::fault_dictionary& dictionary, const std::string& path) {
    record_writer writer(path);
    writer.append(record_type::dictionary_header, encode_meta(dictionary));
    writer.append(record_type::dictionary_matrix,
                  encode_matrix(dictionary, dictionary.space.dimensions()));
    writer.flush();
}

diag::fault_dictionary read_dictionary(const std::string& path) {
    record_reader reader(path);
    const std::uint64_t meta_offset = reader.offset() + frame_header_size;
    auto meta_record = reader.next();
    if (!meta_record) {
        throw serialization_error("dictionary file has no records", meta_offset);
    }
    expect_type(*meta_record, record_type::dictionary_header, meta_offset);
    const auto meta = parse_meta(meta_record->payload, meta_offset);

    const std::uint64_t matrix_offset = reader.offset() + frame_header_size;
    auto matrix_record = reader.next();
    if (!matrix_record) {
        throw serialization_error("dictionary file has no matrix record", matrix_offset);
    }
    expect_type(*matrix_record, record_type::dictionary_matrix, matrix_offset);

    const std::size_t dims = meta.space.dimensions();
    const std::size_t stride = 1 + dims;
    byte_reader matrix(matrix_record->payload, matrix_offset);
    const std::uint32_t rows = matrix.u32();
    matrix.u32(); // alignment pad
    if (rows != meta.total_points) {
        throw serialization_error("dictionary matrix row count disagrees with header",
                                  matrix_offset);
    }
    matrix.require(static_cast<std::size_t>(rows) * stride * sizeof(double),
                   "dictionary matrix rows");

    diag::fault_dictionary dictionary;
    dictionary.space = meta.space;
    dictionary.healthy = meta.healthy;
    dictionary.trajectories.reserve(meta.kinds.size());
    for (std::size_t t = 0; t < meta.kinds.size(); ++t) {
        diag::fault_trajectory trajectory;
        trajectory.kind = meta.kinds[t];
        trajectory.points.reserve(meta.point_counts[t]);
        for (std::size_t p = 0; p < meta.point_counts[t]; ++p) {
            diag::trajectory_point point;
            point.severity = matrix.f64();
            point.signature.resize(dims);
            for (std::size_t d = 0; d < dims; ++d) {
                point.signature[d] = matrix.f64();
            }
            trajectory.points.push_back(std::move(point));
        }
        dictionary.trajectories.push_back(std::move(trajectory));
    }
    return dictionary;
}

mapped_dictionary::mapped_dictionary(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        throw configuration_error("mapped_dictionary: cannot open '" + path + "'");
    }
    struct ::stat st {};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw configuration_error("mapped_dictionary: cannot stat '" + path + "'");
    }
    map_size_ = static_cast<std::size_t>(st.st_size);
    if (map_size_ == 0) {
        ::close(fd);
        throw serialization_error("zero-length store file (missing header)", 0);
    }
    map_ = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map_ == MAP_FAILED) {
        map_ = nullptr;
        throw configuration_error("mapped_dictionary: mmap of '" + path + "' failed");
    }

    try {
        const auto* base = static_cast<const std::uint8_t*>(map_);
        const std::span<const std::uint8_t> file(base, map_size_);
        validate_file_header(file.subspan(0, std::min(map_size_, file_header_size)),
                             map_size_);

        // Walk the two frames in place, verifying each CRC exactly like
        // the streaming reader would.
        std::size_t offset = file_header_size;
        const auto next_frame = [&](record_type expected)
            -> std::pair<std::span<const std::uint8_t>, std::uint64_t> {
            const std::uint64_t frame_offset = offset;
            if (map_size_ - offset < frame_header_size + frame_trailer_size) {
                throw serialization_error("truncated frame header (torn final frame)",
                                          frame_offset);
            }
            std::uint16_t type_raw = 0;
            std::uint32_t length = 0;
            std::memcpy(&type_raw, base + offset, 2);
            std::memcpy(&length, base + offset + 4, 4);
            if (length > max_frame_payload ||
                frame_offset + frame_header_size + length + frame_trailer_size >
                    map_size_) {
                throw serialization_error("implausible frame length " +
                                              std::to_string(length),
                                          frame_offset + 4);
            }
            std::uint32_t stored_crc = 0;
            std::memcpy(&stored_crc, base + offset + frame_header_size + length, 4);
            if (crc32(base + offset, frame_header_size + length) != stored_crc) {
                throw serialization_error("frame CRC mismatch (corrupt record)",
                                          frame_offset);
            }
            if (static_cast<record_type>(type_raw) != expected) {
                throw serialization_error(
                    "unexpected record type " + std::to_string(type_raw), frame_offset);
            }
            offset += frame_header_size + length + frame_trailer_size;
            return {file.subspan(frame_offset + frame_header_size, length),
                    frame_offset + frame_header_size};
        };

        const auto [meta_payload, meta_offset] =
            next_frame(record_type::dictionary_header);
        auto meta = parse_meta(meta_payload, meta_offset);
        space_ = std::move(meta.space);
        dims_ = space_.dimensions();
        healthy_ = std::move(meta.healthy);
        kinds_ = std::move(meta.kinds);
        point_counts_ = std::move(meta.point_counts);
        total_points_ = meta.total_points;
        row_offsets_.reserve(kinds_.size());
        std::size_t first_row = 0;
        for (const std::size_t count : point_counts_) {
            row_offsets_.push_back(first_row);
            first_row += count;
        }

        const auto [matrix_payload, matrix_offset] =
            next_frame(record_type::dictionary_matrix);
        byte_reader prefix(matrix_payload, matrix_offset);
        const std::uint32_t rows = prefix.u32();
        if (rows != total_points_) {
            throw serialization_error("dictionary matrix row count disagrees with header",
                                      matrix_offset);
        }
        const std::size_t stride = 1 + dims_;
        if (matrix_payload.size() < matrix_prefix + total_points_ * stride * 8) {
            throw serialization_error("dictionary matrix shorter than its row count",
                                      matrix_offset);
        }
        const auto* doubles = matrix_payload.data() + matrix_prefix;
        if (reinterpret_cast<std::uintptr_t>(doubles) % alignof(double) != 0) {
            throw serialization_error("dictionary matrix payload misaligned",
                                      matrix_offset + matrix_prefix);
        }
        matrix_ = reinterpret_cast<const double*>(doubles);

        if (offset != map_size_) {
            throw serialization_error("trailing bytes after dictionary matrix", offset);
        }
    } catch (...) {
        unmap();
        throw;
    }
}

mapped_dictionary::~mapped_dictionary() { unmap(); }

mapped_dictionary::mapped_dictionary(mapped_dictionary&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      space_(std::move(other.space_)), dims_(other.dims_),
      healthy_(std::move(other.healthy_)), kinds_(std::move(other.kinds_)),
      point_counts_(std::move(other.point_counts_)),
      row_offsets_(std::move(other.row_offsets_)),
      matrix_(std::exchange(other.matrix_, nullptr)),
      total_points_(std::exchange(other.total_points_, 0)) {}

mapped_dictionary& mapped_dictionary::operator=(mapped_dictionary&& other) noexcept {
    if (this != &other) {
        unmap();
        map_ = std::exchange(other.map_, nullptr);
        map_size_ = std::exchange(other.map_size_, 0);
        space_ = std::move(other.space_);
        dims_ = other.dims_;
        healthy_ = std::move(other.healthy_);
        kinds_ = std::move(other.kinds_);
        point_counts_ = std::move(other.point_counts_);
        row_offsets_ = std::move(other.row_offsets_);
        matrix_ = std::exchange(other.matrix_, nullptr);
        total_points_ = std::exchange(other.total_points_, 0);
    }
    return *this;
}

void mapped_dictionary::unmap() noexcept {
    if (map_ != nullptr) {
        ::munmap(map_, map_size_);
        map_ = nullptr;
        map_size_ = 0;
    }
}

diag::fault_kind mapped_dictionary::kind(std::size_t trajectory) const {
    BISTNA_EXPECTS(trajectory < kinds_.size(), "trajectory index out of range");
    return kinds_[trajectory];
}

std::size_t mapped_dictionary::points(std::size_t trajectory) const {
    BISTNA_EXPECTS(trajectory < point_counts_.size(), "trajectory index out of range");
    return point_counts_[trajectory];
}

std::span<const double> mapped_dictionary::matrix() const noexcept {
    return {matrix_, total_points_ * (1 + dims_)};
}

std::span<const double> mapped_dictionary::row(std::size_t trajectory,
                                               std::size_t point) const {
    BISTNA_EXPECTS(trajectory < kinds_.size(), "trajectory index out of range");
    BISTNA_EXPECTS(point < point_counts_[trajectory], "point index out of range");
    const std::size_t stride = 1 + dims_;
    return {matrix_ + (row_offsets_[trajectory] + point) * stride, stride};
}

diag::fault_dictionary mapped_dictionary::materialize() const {
    diag::fault_dictionary dictionary;
    dictionary.space = space_;
    dictionary.healthy.assign(healthy_.begin(), healthy_.end());
    dictionary.trajectories.reserve(kinds_.size());
    for (std::size_t t = 0; t < kinds_.size(); ++t) {
        diag::fault_trajectory trajectory;
        trajectory.kind = kinds_[t];
        trajectory.points.reserve(point_counts_[t]);
        for (std::size_t p = 0; p < point_counts_[t]; ++p) {
            const auto r = row(t, p);
            diag::trajectory_point point;
            point.severity = r[0];
            point.signature.assign(r.begin() + 1, r.end());
            trajectory.points.push_back(std::move(point));
        }
        dictionary.trajectories.push_back(std::move(trajectory));
    }
    return dictionary;
}

} // namespace bistna::store

// The binary siblings of write_csv/read_csv, declared on the struct in
// diag/fault_dictionary.hpp.
void bistna::diag::fault_dictionary::write_binary(const std::string& path) const {
    bistna::store::write_dictionary(*this, path);
}

bistna::diag::fault_dictionary
bistna::diag::fault_dictionary::read_binary(const std::string& path) {
    return bistna::store::read_dictionary(path);
}
