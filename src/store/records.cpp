#include "store/records.hpp"

#include "diag/fault_model.hpp"

namespace bistna::store {

namespace {

void put_interval(byte_writer& w, const interval& iv) {
    w.f64(iv.lo());
    w.f64(iv.hi());
}

interval get_interval(byte_reader& r) {
    const double lo = r.f64();
    const double hi = r.f64();
    // A CRC-valid but semantically inverted interval must still fail as a
    // serialization problem, not as a precondition_error from deep inside
    // the interval class.
    if (lo > hi) {
        throw serialization_error("inverted interval bounds in record", r.offset() - 16);
    }
    return interval(lo, hi);
}

} // namespace

void expect_type(const record& r, record_type expected, std::uint64_t offset) {
    if (r.type != expected) {
        throw serialization_error("unexpected record type " +
                                      std::to_string(static_cast<unsigned>(r.type)) +
                                      " (wanted " +
                                      std::to_string(static_cast<unsigned>(expected)) + ")",
                                  offset);
    }
}

// --- screening reports ----------------------------------------------------

record to_record(const core::screening_report& report, std::uint64_t die) {
    byte_writer w;
    w.u64(die);
    w.boolean(report.passed);
    w.boolean(report.self_test_passed);
    w.boolean(report.distortion_measured);
    w.u8(0); // pad: keeps the doubles below 8-aligned within the payload
    w.u32(static_cast<std::uint32_t>(report.limits.size()));
    w.f64(report.stimulus_volts);
    w.f64(report.stimulus_phase_deg);
    w.f64(report.offset_rate);
    w.f64(report.thd_db);
    w.f64(report.thd_f_hz);
    for (const auto& result : report.limits) {
        w.u64(result.limit_index);
        w.f64(result.limit.f_hz);
        w.f64(result.limit.gain_db_min);
        w.f64(result.limit.gain_db_max);
        w.f64(result.measured_db);
        put_interval(w, result.measured_bounds_db);
        w.f64(result.phase_deg);
        put_interval(w, result.phase_deg_bounds);
        w.f64(result.margin_db);
        w.boolean(result.passed);
        w.str(result.limit.name);
    }
    return record{record_type::screening_report, w.take()};
}

stored_report report_from_record(const record& r, std::uint64_t payload_offset) {
    expect_type(r, record_type::screening_report, payload_offset);
    byte_reader reader(r.payload, payload_offset);
    stored_report out;
    out.die = reader.u64();
    out.report.passed = reader.boolean();
    out.report.self_test_passed = reader.boolean();
    out.report.distortion_measured = reader.boolean();
    reader.u8();
    const std::uint32_t limit_count = reader.u32();
    out.report.stimulus_volts = reader.f64();
    out.report.stimulus_phase_deg = reader.f64();
    out.report.offset_rate = reader.f64();
    out.report.thd_db = reader.f64();
    out.report.thd_f_hz = reader.f64();
    // Each limit needs at least its fixed-width fields; checking up front
    // turns a lying count into one typed error instead of a loop of
    // underruns.
    reader.require(static_cast<std::size_t>(limit_count) * (8 + 10 * 8 + 1 + 4),
                   "limit results");
    out.report.limits.reserve(limit_count);
    for (std::uint32_t j = 0; j < limit_count; ++j) {
        core::limit_result result;
        result.limit_index = reader.u64();
        result.limit.f_hz = reader.f64();
        result.limit.gain_db_min = reader.f64();
        result.limit.gain_db_max = reader.f64();
        result.measured_db = reader.f64();
        result.measured_bounds_db = get_interval(reader);
        result.phase_deg = reader.f64();
        result.phase_deg_bounds = get_interval(reader);
        result.margin_db = reader.f64();
        result.passed = reader.boolean();
        result.limit.name = reader.str();
        out.report.limits.push_back(std::move(result));
    }
    return out;
}

std::vector<record> reports_to_records(std::span<const core::screening_report> reports,
                                       std::uint64_t first_die) {
    std::vector<record> records;
    records.reserve(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        records.push_back(to_record(reports[i], first_die + i));
    }
    return records;
}

std::vector<core::screening_report>
reports_from_records(std::span<const record> records,
                     std::vector<std::uint64_t>* die_ids) {
    std::vector<core::screening_report> reports;
    reports.reserve(records.size());
    if (die_ids != nullptr) {
        die_ids->clear();
        die_ids->reserve(records.size());
    }
    for (const auto& r : records) {
        auto stored = report_from_record(r);
        if (die_ids != nullptr) {
            die_ids->push_back(stored.die);
        }
        reports.push_back(std::move(stored.report));
    }
    return reports;
}

// --- acquisition results --------------------------------------------------

record to_record(const core::sweep_engine::acquisition_result& result,
                 std::uint64_t item) {
    byte_writer w;
    w.u64(item);
    w.f64(result.calibration.amplitude.volts);
    put_interval(w, result.calibration.amplitude.bounds_volts);
    w.f64(result.calibration.amplitude.dbfs);
    put_interval(w, result.calibration.amplitude.bounds_dbfs);
    w.u64(result.calibration.amplitude.harmonic_k);
    w.f64(result.calibration.phase.radians);
    put_interval(w, result.calibration.phase.bounds_radians);
    w.u64(result.calibration.phase.harmonic_k);
    w.f64(result.offset_rate);
    w.boolean(result.has_thd);
    w.f64(result.thd_db);
    w.u32(static_cast<std::uint32_t>(result.points.size()));
    for (const auto& point : result.points) {
        w.f64(point.f_wave.value);
        w.f64(point.gain_db);
        put_interval(w, point.gain_db_bounds);
        w.f64(point.phase_deg);
        put_interval(w, point.phase_deg_bounds);
        w.f64(point.ideal_gain_db);
        w.f64(point.ideal_phase_deg);
    }
    return record{record_type::acquisition_result, w.take()};
}

stored_acquisition acquisition_from_record(const record& r, std::uint64_t payload_offset) {
    expect_type(r, record_type::acquisition_result, payload_offset);
    byte_reader reader(r.payload, payload_offset);
    stored_acquisition out;
    out.item = reader.u64();
    auto& result = out.result;
    result.calibration.amplitude.volts = reader.f64();
    result.calibration.amplitude.bounds_volts = get_interval(reader);
    result.calibration.amplitude.dbfs = reader.f64();
    result.calibration.amplitude.bounds_dbfs = get_interval(reader);
    result.calibration.amplitude.harmonic_k = reader.u64();
    result.calibration.phase.radians = reader.f64();
    result.calibration.phase.bounds_radians = get_interval(reader);
    result.calibration.phase.harmonic_k = reader.u64();
    result.offset_rate = reader.f64();
    result.has_thd = reader.boolean();
    result.thd_db = reader.f64();
    const std::uint32_t point_count = reader.u32();
    reader.require(static_cast<std::size_t>(point_count) * 9 * 8, "frequency points");
    result.points.reserve(point_count);
    for (std::uint32_t i = 0; i < point_count; ++i) {
        core::frequency_point point;
        point.f_wave = hertz{reader.f64()};
        point.gain_db = reader.f64();
        point.gain_db_bounds = get_interval(reader);
        point.phase_deg = reader.f64();
        point.phase_deg_bounds = get_interval(reader);
        point.ideal_gain_db = reader.f64();
        point.ideal_phase_deg = reader.f64();
        result.points.push_back(point);
    }
    return out;
}

// --- fault-dictionary trajectory points ------------------------------------

record to_record(const stored_trajectory_point& point) {
    byte_writer w;
    w.i32(static_cast<std::int32_t>(point.kind));
    w.u32(point.trajectory);
    w.f64(point.point.severity);
    w.f64_span(point.point.signature);
    return record{record_type::trajectory_point, w.take()};
}

stored_trajectory_point trajectory_point_from_record(const record& r,
                                                     std::uint64_t payload_offset) {
    expect_type(r, record_type::trajectory_point, payload_offset);
    byte_reader reader(r.payload, payload_offset);
    stored_trajectory_point out;
    const std::int32_t kind = reader.i32();
    if (kind < 0 || kind >= static_cast<std::int32_t>(diag::fault_kind_count)) {
        throw serialization_error("trajectory record fault kind out of range",
                                  payload_offset);
    }
    out.kind = static_cast<diag::fault_kind>(kind);
    out.trajectory = reader.u32();
    out.point.severity = reader.f64();
    out.point.signature = reader.f64_vector();
    return out;
}

} // namespace bistna::store
