// The framed binary record format of the persistent result store.
//
// CSV shards carry a million-die lot poorly: text formatting dominates the
// serialization wall clock, NaN payloads and limit names are lost, and a
// torn write is indistinguishable from a short lot.  This format is the
// compact alternative (and the wire format a shard runner streams):
//
//   file   := file_header frame*
//   file_header (16 bytes) :=
//       magic   u32  "BSTR" (0x52545342 little-endian)
//       version u16  format_version
//       endian  u16  0x0102 written natively -- a byte-swapped reader
//                    sees 0x0201 and rejects the file instead of silently
//                    mis-decoding every payload
//       reserved u32 0
//       crc     u32  CRC-32 of the 12 bytes above
//   frame := type u16, flags u16 (0), length u32, payload[length],
//            crc u32  -- CRC-32 over the 8 frame-header bytes AND the
//            payload, so a bit flip in type/length is caught exactly like
//            one in the data
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// patterns (NaN payloads and signed zeros survive exactly, unlike text).
// Malformed input throws bistna::serialization_error carrying the byte
// offset of the first offending byte.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace bistna::store {

inline constexpr std::uint32_t store_magic = 0x52545342u; // "BSTR"
inline constexpr std::uint16_t format_version = 1;
inline constexpr std::uint16_t endian_tag = 0x0102;
inline constexpr std::size_t file_header_size = 16;
inline constexpr std::size_t frame_header_size = 8;
inline constexpr std::size_t frame_trailer_size = 4;
/// Frames longer than this are rejected as corrupt before any allocation
/// happens (a flipped length byte must not ask for gigabytes).
inline constexpr std::uint32_t max_frame_payload = 1u << 30;

/// Typed records the store understands.  Values are part of the on-disk
/// format: never renumber, only append.
enum class record_type : std::uint16_t {
    screening_report = 1,  ///< one die's core::screening_report (+ die id)
    acquisition_result = 2, ///< one core::sweep_engine::acquisition_result
    trajectory_point = 3,  ///< one diag dictionary severity-grid point
    dictionary_header = 4, ///< fault-dictionary metadata (space, shape)
    dictionary_matrix = 5, ///< contiguous f64 block of all dictionary rows
    telemetry_snapshot = 6, ///< one process's telemetry snapshot (sidecar)

    // Service control records (src/svc): the screening service speaks the
    // same CRC-checked frame layout over its sockets that the store writes
    // to disk, so one decoder serves both.  Control payloads are strict
    // JSON (svc/protocol.hpp); svc_result wraps a data record above
    // byte-for-byte, which is what makes a client-written store file
    // bit-identical to the offline path's.
    svc_hello = 7,    ///< server greeting: {"protocol", "server"}
    svc_submit = 8,   ///< client job submission: {"request", "manifest"}
    svc_progress = 9, ///< per-request progress: {"request", "completed", "total"}
    svc_result = 10,  ///< one unit's result: ids + a wrapped data record
    svc_error = 11,   ///< typed error: {"request", "code", "message", ["offset"]}
    svc_cancel = 12,  ///< client cancel: {"request"}
    svc_done = 13,    ///< terminal success: {"request", "units"}
};

/// One decoded frame: the type tag plus its raw payload bytes.
struct record {
    record_type type{};
    std::vector<std::uint8_t> payload;

    bool operator==(const record&) const = default;
};

/// Append-only payload builder.  All writes are native little-endian;
/// doubles are stored as bit patterns (bit-exact round trips by
/// construction).
class byte_writer {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }
    void i32(std::int32_t v) { raw(&v, sizeof v); }
    void f64(double v) { raw(&v, sizeof v); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// u32 byte count + raw bytes (no terminator).
    void str(const std::string& s);

    /// u32 element count + the doubles' bit patterns.
    void f64_span(std::span<const double> values);

    /// Zero padding (alignment of a following frame's payload).
    void pad(std::size_t bytes) { buf_.insert(buf_.end(), bytes, 0); }

    /// Raw bytes, no length prefix (bulk blocks whose size the format
    /// derives elsewhere, e.g. the dictionary matrix).
    void bytes(const void* p, std::size_t n) { raw(p, n); }

    std::size_t size() const noexcept { return buf_.size(); }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    void raw(const void* p, std::size_t n) {
        if (n == 0) {
            return; // p may be null (empty vector/span), and null + 0 is UB
        }
        const auto* bytes = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), bytes, bytes + n);
    }

    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload cursor.  Every underrun throws
/// serialization_error at base_offset + cursor, so a decoder error names
/// the absolute file position of the bad byte.  Trailing unconsumed bytes
/// are legal (alignment padding).
class byte_reader {
public:
    explicit byte_reader(std::span<const std::uint8_t> bytes, std::uint64_t base_offset = 0)
        : bytes_(bytes), base_(base_offset) {}

    std::uint8_t u8() { return take<std::uint8_t>(); }
    std::uint16_t u16() { return take<std::uint16_t>(); }
    std::uint32_t u32() { return take<std::uint32_t>(); }
    std::uint64_t u64() { return take<std::uint64_t>(); }
    std::int32_t i32() { return take<std::int32_t>(); }
    double f64() { return take<double>(); }
    bool boolean() { return u8() != 0; }

    std::string str();
    std::vector<double> f64_vector();

    std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
    /// Absolute offset of the next unread byte.
    std::uint64_t offset() const noexcept { return base_ + pos_; }

    /// Throws unless at least `bytes` more payload bytes exist -- decoders
    /// use it to validate an element count before looping.
    void require(std::size_t bytes, const char* what) const;

private:
    template <typename T> T take() {
        require(sizeof(T), "value");
        T v;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    std::uint64_t base_ = 0;
};

/// The 16 header bytes every store file starts with.
std::array<std::uint8_t, file_header_size> encode_file_header();

/// Validate a file header; throws serialization_error (offset of the bad
/// field) on anything but a well-formed native-endian current-version
/// header.  `file_size` lets a zero-length or truncated file fail with a
/// dedicated message.
void validate_file_header(std::span<const std::uint8_t> header, std::uint64_t file_size);

} // namespace bistna::store
