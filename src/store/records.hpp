// Typed record payloads: bit-exact converters between the in-memory
// result structs and the framed binary format.
//
// Unlike the CSV seam, these round trips are lossless: doubles travel as
// IEEE-754 bit patterns (an unmeasured thd_db stays the exact NaN it was,
// +/-inf and signed zeros survive), limit names ship with the report, and
// every count is validated against the payload bounds before it is
// trusted.  Malformed payloads throw bistna::serialization_error naming
// the absolute byte offset of the bad field.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "diag/fault_dictionary.hpp"
#include "store/format.hpp"

namespace bistna::store {

// --- screening reports ----------------------------------------------------

/// A screening report plus the global die identity it was measured as
/// (the binary analogue of the CSV "die" column).
struct stored_report {
    std::uint64_t die = 0;
    core::screening_report report;
};

record to_record(const core::screening_report& report, std::uint64_t die);
stored_report report_from_record(const record& r, std::uint64_t payload_offset = 0);

/// Whole-shard converters, mirroring screening_reports_to_csv/from_csv:
/// report i carries die id first_die + i.
std::vector<record> reports_to_records(std::span<const core::screening_report> reports,
                                       std::uint64_t first_die = 0);
std::vector<core::screening_report>
reports_from_records(std::span<const record> records,
                     std::vector<std::uint64_t>* die_ids = nullptr);

// --- acquisition results --------------------------------------------------

/// An acquisition result plus its item index in the submitted batch.
struct stored_acquisition {
    std::uint64_t item = 0;
    core::sweep_engine::acquisition_result result;
};

record to_record(const core::sweep_engine::acquisition_result& result,
                 std::uint64_t item);
stored_acquisition acquisition_from_record(const record& r,
                                           std::uint64_t payload_offset = 0);

// --- fault-dictionary trajectory points ------------------------------------

/// One severity-grid point as a standalone streamable record (a
/// dictionary build streams these off its job; the packed dictionary
/// file in dictionary_io.hpp is the load-optimized form).
struct stored_trajectory_point {
    diag::fault_kind kind{};
    std::uint32_t trajectory = 0; ///< trajectory index within the dictionary
    diag::trajectory_point point;
};

record to_record(const stored_trajectory_point& point);
stored_trajectory_point trajectory_point_from_record(const record& r,
                                                     std::uint64_t payload_offset = 0);

/// Throws serialization_error unless `r` has the expected type.
void expect_type(const record& r, record_type expected, std::uint64_t offset = 0);

} // namespace bistna::store
