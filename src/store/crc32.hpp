// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) -- the frame
// checksum of the binary record store.  The same algorithm zlib/PNG use,
// so store files can be cross-checked with standard tools.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bistna::store {

/// CRC-32 of `size` bytes.  Chainable: pass the previous return value as
/// `crc` to extend a running checksum (crc32 of the concatenation equals
/// the chained calls).  crc32(nullptr-free empty range) == 0.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0) noexcept;

} // namespace bistna::store
