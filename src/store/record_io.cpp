#include "store/record_io.hpp"

#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "store/crc32.hpp"
#include "telemetry/metrics.hpp"

namespace bistna::store {

namespace {

telemetry::metric_id frames_counter() {
    static const telemetry::metric_id id =
        telemetry::counter_id("store.frames");
    return id;
}

telemetry::metric_id bytes_counter() {
    static const telemetry::metric_id id = telemetry::counter_id("store.bytes");
    return id;
}

telemetry::metric_id flush_histogram() {
    static const telemetry::metric_id id =
        telemetry::histogram_id("store.flush_ns");
    return id;
}

} // namespace

std::vector<std::uint8_t> encode_frame(record_type type,
                                       std::span<const std::uint8_t> payload) {
    BISTNA_EXPECTS(payload.size() <= max_frame_payload, "record payload too large");
    std::vector<std::uint8_t> frame(frame_header_size + payload.size() +
                                    frame_trailer_size);
    const auto type_raw = static_cast<std::uint16_t>(type);
    const std::uint16_t flags = 0;
    const auto length = static_cast<std::uint32_t>(payload.size());
    std::memcpy(frame.data() + 0, &type_raw, 2);
    std::memcpy(frame.data() + 2, &flags, 2);
    std::memcpy(frame.data() + 4, &length, 4);
    if (!payload.empty()) { // an empty span's data() may be null
        std::memcpy(frame.data() + frame_header_size, payload.data(), payload.size());
    }
    const std::uint32_t crc = crc32(frame.data(), frame_header_size + payload.size());
    std::memcpy(frame.data() + frame_header_size + payload.size(), &crc, 4);
    return frame;
}

record_writer::record_writer(const std::string& path, bool append) : path_(path) {
    std::uint64_t existing = 0;
    if (append) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        existing = ec ? 0 : size;
    }
    const auto mode =
        std::ios::binary | (append ? std::ios::app : std::ios::trunc | std::ios::out);
    out_.open(path, mode);
    if (!out_) {
        throw configuration_error("record_writer: cannot open '" + path + "' for writing");
    }
    offset_ = existing;
    if (offset_ == 0) {
        const auto header = encode_file_header();
        out_.write(reinterpret_cast<const char*>(header.data()),
                   static_cast<std::streamsize>(header.size()));
        offset_ = header.size();
    }
}

void record_writer::append(record_type type, std::span<const std::uint8_t> payload) {
    const auto frame = encode_frame(type, payload);
    out_.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
    if (!out_) {
        throw configuration_error("record_writer: write to '" + path_ + "' failed");
    }
    offset_ += frame.size();
    ++records_;
    telemetry::counter_add(frames_counter());
    telemetry::counter_add(bytes_counter(), frame.size());
}

void record_writer::flush() {
    // Clock reads only when someone is listening; the flush itself is the
    // syscall-bound part of the store hot path.
    const bool instrument = telemetry::attached();
    const std::uint64_t start_ns = instrument ? telemetry::now_ns() : 0;
    out_.flush();
    if (instrument) {
        telemetry::histogram_record(flush_histogram(),
                                    telemetry::now_ns() - start_ns);
    }
    if (!out_) {
        throw configuration_error("record_writer: flush of '" + path_ + "' failed");
    }
}

record_reader::record_reader(const std::string& path)
    : path_(path), in_(path, std::ios::binary) {
    if (!in_) {
        throw configuration_error("record_reader: cannot open '" + path + "' for reading");
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    file_size_ = ec ? 0 : size;

    std::array<std::uint8_t, file_header_size> header{};
    in_.read(reinterpret_cast<char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
    const auto got = static_cast<std::size_t>(in_.gcount());
    validate_file_header(std::span<const std::uint8_t>(header.data(), got), file_size_);
    offset_ = file_header_size;
}

std::optional<record> record_reader::next() {
    const std::uint64_t frame_offset = offset_;
    std::array<std::uint8_t, frame_header_size> header{};
    in_.read(reinterpret_cast<char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got == 0) {
        return std::nullopt; // clean end of file
    }
    if (got < frame_header_size) {
        throw serialization_error("truncated frame header (torn final frame)",
                                  frame_offset);
    }
    std::uint16_t type_raw = 0;
    std::uint32_t length = 0;
    std::memcpy(&type_raw, header.data() + 0, 2);
    std::memcpy(&length, header.data() + 4, 4);
    if (length > max_frame_payload ||
        frame_offset + frame_header_size + length + frame_trailer_size > file_size_) {
        // Either a flipped length byte or a frame that runs past the end
        // of the file; both are reported before any giant allocation.
        throw serialization_error("implausible frame length " + std::to_string(length),
                                  frame_offset + 4);
    }

    record r;
    r.type = static_cast<record_type>(type_raw);
    r.payload.resize(length);
    in_.read(reinterpret_cast<char*>(r.payload.data()),
             static_cast<std::streamsize>(length));
    std::uint32_t stored_crc = 0;
    in_.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
    if (static_cast<std::size_t>(in_.gcount()) < sizeof stored_crc) {
        throw serialization_error("truncated frame payload (torn final frame)",
                                  frame_offset);
    }

    std::uint32_t crc = crc32(header.data(), header.size());
    crc = crc32(r.payload.data(), r.payload.size(), crc);
    if (crc != stored_crc) {
        throw serialization_error("frame CRC mismatch (corrupt record)", frame_offset);
    }
    offset_ = frame_offset + frame_header_size + length + frame_trailer_size;
    ++records_;
    return r;
}

std::vector<record> record_reader::read_all(const std::string& path) {
    record_reader reader(path);
    std::vector<record> records;
    while (auto r = reader.next()) {
        records.push_back(std::move(*r));
    }
    return records;
}

} // namespace bistna::store
