#include "store/crc32.hpp"

#include <array>

namespace bistna::store {

namespace {

// Slicing-by-four: four 256-entry tables let the hot loop consume one
// 32-bit word per iteration instead of one byte -- the store checksums
// every payload byte, so this sits on the serialization hot path.
using crc_tables = std::array<std::array<std::uint32_t, 256>, 4>;

constexpr crc_tables make_tables() {
    crc_tables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        tables[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        tables[1][i] = (tables[0][i] >> 8) ^ tables[0][tables[0][i] & 0xFFu];
        tables[2][i] = (tables[1][i] >> 8) ^ tables[0][tables[1][i] & 0xFFu];
        tables[3][i] = (tables[2][i] >> 8) ^ tables[0][tables[2][i] & 0xFFu];
    }
    return tables;
}

constexpr crc_tables tables = make_tables();

} // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    while (size >= 4) {
        c ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) |
             (static_cast<std::uint32_t>(p[3]) << 24);
        c = tables[3][c & 0xFFu] ^ tables[2][(c >> 8) & 0xFFu] ^
            tables[1][(c >> 16) & 0xFFu] ^ tables[0][c >> 24];
        p += 4;
        size -= 4;
    }
    while (size-- > 0) {
        c = tables[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

} // namespace bistna::store
