#include "store/format.hpp"

#include <array>

#include "store/crc32.hpp"

namespace bistna::store {

void byte_writer::str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void byte_writer::f64_span(std::span<const double> values) {
    u32(static_cast<std::uint32_t>(values.size()));
    raw(values.data(), values.size() * sizeof(double));
}

std::string byte_reader::str() {
    const std::uint32_t n = u32();
    require(n, "string bytes");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
}

std::vector<double> byte_reader::f64_vector() {
    const std::uint32_t n = u32();
    require(static_cast<std::size_t>(n) * sizeof(double), "double array");
    std::vector<double> values(n);
    if (n != 0) { // empty vector's data() may be null, which memcpy forbids
        std::memcpy(values.data(), bytes_.data() + pos_, n * sizeof(double));
    }
    pos_ += n * sizeof(double);
    return values;
}

void byte_reader::require(std::size_t bytes, const char* what) const {
    if (bytes > bytes_.size() - pos_) {
        throw serialization_error(std::string("record payload underrun reading ") + what,
                                  base_ + pos_);
    }
}

std::array<std::uint8_t, file_header_size> encode_file_header() {
    std::array<std::uint8_t, file_header_size> header{};
    const std::uint32_t magic = store_magic;
    const std::uint16_t version = format_version;
    const std::uint16_t endian = endian_tag;
    const std::uint32_t reserved = 0;
    std::memcpy(header.data() + 0, &magic, 4);
    std::memcpy(header.data() + 4, &version, 2);
    std::memcpy(header.data() + 6, &endian, 2);
    std::memcpy(header.data() + 8, &reserved, 4);
    const std::uint32_t crc = crc32(header.data(), 12);
    std::memcpy(header.data() + 12, &crc, 4);
    return header;
}

void validate_file_header(std::span<const std::uint8_t> header, std::uint64_t file_size) {
    if (file_size == 0) {
        throw serialization_error("zero-length store file (missing header)", 0);
    }
    if (header.size() < file_header_size) {
        throw serialization_error("store file shorter than its 16-byte header",
                                  header.size());
    }
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint16_t endian = 0;
    std::uint32_t crc = 0;
    std::memcpy(&magic, header.data() + 0, 4);
    std::memcpy(&version, header.data() + 4, 2);
    std::memcpy(&endian, header.data() + 6, 2);
    std::memcpy(&crc, header.data() + 12, 4);
    if (magic != store_magic) {
        throw serialization_error("bad store magic (not a bistna record store)", 0);
    }
    if (version != format_version) {
        throw serialization_error("unsupported store format version " +
                                      std::to_string(version),
                                  4);
    }
    if (endian != endian_tag) {
        throw serialization_error("store written with mismatched endianness", 6);
    }
    if (crc32(header.data(), 12) != crc) {
        throw serialization_error("store header CRC mismatch", 12);
    }
}

} // namespace bistna::store
