// Streaming writer/reader for the framed record format (see format.hpp).
//
// record_writer appends frames to an open file as results stream off a
// job_handle; record_reader walks a file frame by frame, verifying every
// CRC, and throws a typed serialization_error (with the byte offset) the
// moment it meets a torn or bit-flipped frame -- a corrupt store is never
// silently accepted.  The append-only lot_store builds on both.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "store/format.hpp"

namespace bistna::store {

/// Encode one frame (header + payload + CRC) into a byte buffer -- the
/// unit record_writer appends and the shard wire format streams.
std::vector<std::uint8_t> encode_frame(record_type type,
                                       std::span<const std::uint8_t> payload);

class record_writer {
public:
    /// Opens `path` for writing.  `append` keeps existing bytes (the
    /// caller -- normally lot_store -- is responsible for having validated
    /// them); otherwise the file is truncated.  A fresh/empty file gets
    /// the 16-byte store header.  Throws configuration_error on I/O
    /// failure.
    explicit record_writer(const std::string& path, bool append = false);

    void append(const record& r) { append(r.type, r.payload); }
    void append(record_type type, std::span<const std::uint8_t> payload);

    void flush();

    /// Total file size in bytes after everything appended so far.
    std::uint64_t bytes_written() const noexcept { return offset_; }
    std::uint64_t records_written() const noexcept { return records_; }
    const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::ofstream out_;
    std::uint64_t offset_ = 0;
    std::uint64_t records_ = 0;
};

class record_reader {
public:
    /// Opens `path` and validates the store header.  Throws
    /// configuration_error when the file cannot be opened and
    /// serialization_error when the header is malformed (zero-length
    /// file, wrong magic/version/endianness, header CRC mismatch).
    explicit record_reader(const std::string& path);

    /// The next frame, or nullopt at clean end-of-file.  Throws
    /// serialization_error -- naming the offset of the offending frame --
    /// on a truncated frame header/payload, an implausible length, or a
    /// CRC mismatch.
    std::optional<record> next();

    /// Offset of the next unread byte (after the last cleanly read frame).
    std::uint64_t offset() const noexcept { return offset_; }
    std::uint64_t records_read() const noexcept { return records_; }
    const std::string& path() const noexcept { return path_; }

    /// Read every frame of `path` strictly (any corruption throws).
    static std::vector<record> read_all(const std::string& path);

private:
    std::string path_;
    std::ifstream in_;
    std::uint64_t offset_ = 0;
    std::uint64_t file_size_ = 0;
    std::uint64_t records_ = 0;
};

} // namespace bistna::store
