// Append-only persistent result store for streamed lots.
//
// A shard (or an example streaming dice off a job_handle) appends one
// record per die; a collector scans the file back.  The failure mode this
// class exists for is the torn write: a process killed mid-frame leaves a
// truncated or bit-flipped tail.  open_append scans the existing file,
// accepts exactly the longest CRC-valid frame prefix, REPORTS the torn
// tail (offset + reason, via recovery()) and truncates it so the next
// append produces a well-formed file again -- corruption is surfaced,
// never silently read back as data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/record_io.hpp"

namespace bistna::store {

/// What open_append found in the pre-existing file.
struct store_recovery {
    bool existed = false;            ///< the file was already there
    std::uint64_t valid_records = 0; ///< CRC-valid frames kept
    std::uint64_t valid_bytes = 0;   ///< file size of the kept prefix
    bool tail_truncated = false;     ///< a torn/corrupt tail was cut off
    std::uint64_t tail_offset = 0;   ///< where the bad tail began
    std::string tail_error;          ///< why it was rejected
};

/// Durability policy of a lot_store.
struct lot_store_options {
    /// Records between forced flushes.  1 (the default) flushes after
    /// every append, so a crash never loses an appended record to a
    /// library buffer.  N > 1 lets up to N records ride in the stream
    /// buffer between flushes -- what a shard worker appending thousands
    /// of small frames wants, since per-record flushing is syscall-bound.
    /// Recovery is unaffected by the interval: a crash tears at most the
    /// buffered tail, which the next open_append reports and truncates
    /// (the file is a valid prefix plus at most one partial frame, exactly
    /// the torn-write case the format was built for).
    std::size_t flush_interval = 1;
};

class lot_store {
public:
    /// Create (truncate) a fresh store at `path`.
    static lot_store create(const std::string& path,
                            const lot_store_options& options = {});

    /// Open for appending.  A missing or zero-length file becomes a fresh
    /// store; an existing one is scanned frame by frame and truncated to
    /// its valid prefix when the tail is torn (see recovery()).  A file
    /// that is not a record store at all (bad magic/version/endianness)
    /// throws serialization_error rather than being overwritten.
    static lot_store open_append(const std::string& path,
                                 const lot_store_options& options = {});

    /// Append one record; flushed to the file per the flush_interval
    /// policy (every record by default).
    void append(const record& r);
    void append(record_type type, std::span<const std::uint8_t> payload);

    /// Force buffered appends to the file (a no-op when nothing is
    /// pending).  Also runs on destruction via the underlying stream.
    void flush();

    const store_recovery& recovery() const noexcept { return recovery_; }
    /// Records appended through this handle (excludes recovered ones).
    std::uint64_t records_appended() const noexcept { return appended_; }
    /// Total records in the file: recovered prefix + appended.
    std::uint64_t records() const noexcept {
        return recovery_.valid_records + appended_;
    }
    std::uint64_t bytes() const noexcept { return writer_->bytes_written(); }
    const std::string& path() const noexcept { return writer_->path(); }

    /// Strict scan of a store file: every record, throwing
    /// serialization_error on any corruption (collectors use this; the
    /// lenient prefix recovery is open_append's job).
    static std::vector<record> scan(const std::string& path);

private:
    lot_store(std::unique_ptr<record_writer> writer, store_recovery recovery,
              lot_store_options options)
        : writer_(std::move(writer)), recovery_(std::move(recovery)),
          options_(options) {}

    std::unique_ptr<record_writer> writer_;
    store_recovery recovery_;
    lot_store_options options_;
    std::uint64_t appended_ = 0;
    std::size_t unflushed_ = 0;
};

} // namespace bistna::store
