#include "store/lot_store.hpp"

#include <filesystem>

#include "common/error.hpp"

namespace bistna::store {

lot_store lot_store::create(const std::string& path,
                            const lot_store_options& options) {
    BISTNA_EXPECTS(options.flush_interval > 0,
                   "lot_store flush_interval must be at least 1");
    return lot_store(std::make_unique<record_writer>(path, /*append=*/false),
                     {}, options);
}

lot_store lot_store::open_append(const std::string& path,
                                 const lot_store_options& options) {
    BISTNA_EXPECTS(options.flush_interval > 0,
                   "lot_store flush_interval must be at least 1");
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || size == 0) {
        // Missing, or a create that died before the header hit the disk:
        // nothing recoverable, start fresh.
        store_recovery recovery;
        recovery.existed = !ec;
        return lot_store(std::make_unique<record_writer>(path, /*append=*/false),
                         std::move(recovery), options);
    }

    store_recovery recovery;
    recovery.existed = true;
    try {
        record_reader reader(path);
        recovery.valid_bytes = reader.offset();
        while (reader.next()) {
            recovery.valid_bytes = reader.offset();
            ++recovery.valid_records;
        }
    } catch (const serialization_error& error) {
        if (recovery.valid_bytes == 0) {
            // Even the 16-byte header is wrong: this is some other file,
            // not a store with a torn tail -- refuse to "recover" it.
            throw;
        }
        recovery.tail_truncated = true;
        recovery.tail_offset = error.byte_offset();
        recovery.tail_error = error.what();
    }

    if (recovery.tail_truncated) {
        std::filesystem::resize_file(path, recovery.valid_bytes);
    }
    return lot_store(std::make_unique<record_writer>(path, /*append=*/true),
                     std::move(recovery), options);
}

void lot_store::append(const record& r) { append(r.type, r.payload); }

void lot_store::append(record_type type, std::span<const std::uint8_t> payload) {
    writer_->append(type, payload);
    ++appended_;
    if (++unflushed_ >= options_.flush_interval) {
        flush();
    }
}

void lot_store::flush() {
    if (unflushed_ == 0) {
        return;
    }
    writer_->flush();
    unflushed_ = 0;
}

std::vector<record> lot_store::scan(const std::string& path) {
    return record_reader::read_all(path);
}

} // namespace bistna::store
