// Wire protocol of the screening service: the store's CRC-checked frame
// layout (store/format.hpp) spoken over a socket.
//
//   frame := type u16, flags u16 (0), length u32, payload[length],
//            crc32 over header + payload
//
// There is no file header on the wire -- a connection starts with the
// server's svc_hello frame instead (protocol version negotiation).  Frame
// types are the svc_* values of store::record_type, so the service's
// control records and the store's data records share one numbering space
// and one decoder.  Control payloads (hello/submit/progress/error/cancel/
// done) are strict JSON written by the common/json writer and parsed by
// the same strict parser the lot manifest uses; result payloads are
// binary -- they wrap the exact data record the offline store path would
// have appended, so a client writing received records to a lot_store
// reproduces the offline file byte for byte.
//
// Robustness contract: a CRC-valid frame with a malformed payload is a
// request-level error (the session survives); a torn, bit-flipped or
// oversized frame is a framing error carrying the absolute byte offset of
// the first offending byte (the stream cannot resync, so the session is
// closed after a typed error frame).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "shard/manifest.hpp"
#include "store/format.hpp"

namespace bistna::svc {

/// Bumped on any incompatible frame-layout or schema change; the server
/// states its version in svc_hello and clients refuse a mismatch.
inline constexpr std::uint32_t protocol_version = 1;

/// Frames larger than this are rejected before any allocation happens (a
/// malicious or bit-flipped length must not ask the daemon for gigabytes).
/// Generous for real traffic: submits are small JSON, results are a few
/// KiB per die.
inline constexpr std::uint32_t max_frame_payload = 8u << 20;

/// Typed error taxonomy of svc_error frames.  Stable names travel on the
/// wire; values are free to reorder.
enum class error_code {
    bad_frame,    ///< framing broken (CRC, truncation, oversized length)
    bad_request,  ///< CRC-valid frame the server cannot honor (bad JSON,
                  ///< unknown type, duplicate request id, bad manifest)
    overloaded,   ///< admission queue full or session quota exceeded; the
                  ///< request was shed, resubmit later
    slow_reader,  ///< session shed: the client stopped draining its socket
                  ///< while results backed up past the send-queue bound
    cancelled,    ///< request ended early (client cancel or disconnect)
    idle_timeout, ///< session closed after sitting idle past the limit
    shutdown,     ///< server stopping; outstanding requests are cancelled
    internal,     ///< a worker exception failed the job (message has what())
};

const char* error_code_name(error_code code) noexcept;
/// Throws configuration_error on an unknown name.
error_code error_code_from_name(std::string_view name);

// --- control frames (strict JSON payloads) ---------------------------------

struct hello_frame {
    std::uint32_t protocol = protocol_version;
    std::string server = "bistna_serverd";
};

struct submit_frame {
    std::uint64_t request = 0; ///< client-assigned id, nonzero, session-unique
    shard::lot_manifest manifest;
};

struct progress_frame {
    std::uint64_t request = 0;
    std::uint64_t completed = 0; ///< units computed so far (0 = just admitted)
    std::uint64_t total = 0;
};

struct error_frame {
    std::uint64_t request = 0; ///< 0 = session-scope
    error_code code = error_code::internal;
    std::string message;
    /// Absolute session byte offset for bad_frame errors.
    std::optional<std::uint64_t> offset;
};

struct cancel_frame {
    std::uint64_t request = 0;
};

struct done_frame {
    std::uint64_t request = 0;
    std::uint64_t units = 0; ///< results streamed (== manifest units)
};

// --- result frames (binary payload wrapping a data record) -----------------

struct result_frame {
    std::uint64_t request = 0;
    std::uint64_t unit = 0; ///< global unit index within the job's manifest
    store::record record;   ///< exactly what the offline store path appends
};

/// Encode each frame kind as a typed record (the payload of one wire
/// frame); wire_bytes() adds the frame header + CRC.
store::record encode(const hello_frame& f);
store::record encode(const submit_frame& f);
store::record encode(const progress_frame& f);
store::record encode(const error_frame& f);
store::record encode(const cancel_frame& f);
store::record encode(const done_frame& f);
store::record encode(const result_frame& f);

/// The bytes actually written to the socket for a record.
std::vector<std::uint8_t> wire_bytes(const store::record& r);

/// Decoders throw serialization_error (binary payload underrun) or
/// configuration_error (malformed control JSON) naming the problem; each
/// checks the record's type tag first.
hello_frame decode_hello(const store::record& r);
submit_frame decode_submit(const store::record& r);
progress_frame decode_progress(const store::record& r);
error_frame decode_error(const store::record& r);
cancel_frame decode_cancel(const store::record& r);
done_frame decode_done(const store::record& r);
result_frame decode_result(const store::record& r);

/// Incremental frame decoder over a byte stream.  feed() raw socket
/// bytes, then pull complete frames with next(); framing damage throws
/// serialization_error carrying the ABSOLUTE stream offset (bytes since
/// the connection opened) of the first offending byte, mirroring the
/// store reader's corrupt-file errors.
class frame_decoder {
public:
    explicit frame_decoder(std::uint32_t max_payload = max_frame_payload)
        : max_payload_(max_payload) {}

    void feed(std::span<const std::uint8_t> bytes);

    /// The next complete frame, or nullopt until more bytes arrive.
    /// Throws serialization_error on an oversized length (offset of the
    /// length field) or a CRC mismatch (offset of the frame start).
    std::optional<store::record> next();

    /// Absolute stream offset of the next undecoded byte.
    std::uint64_t offset() const noexcept { return consumed_; }
    std::size_t buffered() const noexcept { return buffer_.size() - head_; }

private:
    std::uint32_t max_payload_;
    std::vector<std::uint8_t> buffer_;
    std::size_t head_ = 0;        ///< first unparsed byte within buffer_
    std::uint64_t consumed_ = 0;  ///< absolute offset of buffer_[head_]
};

} // namespace bistna::svc
