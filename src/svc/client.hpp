// svc::client -- the blocking client side of the screening service.
//
// Connects to a bistna_serverd endpoint, checks the server's hello,
// submits lot manifests and pulls the typed event stream (progress /
// result / error / done) back.  Result frames wrap the exact data record
// the offline `screening_lot --store` path appends, in global unit order,
// so collecting them into a store file reproduces the offline run byte
// for byte.
//
// The client is deliberately synchronous -- one socket, one reader; tests
// and tools that want concurrency open several clients (sessions are
// cheap on the server, that is the point of the daemon).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/manifest.hpp"
#include "store/format.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace bistna::svc {

/// A terminal svc_error frame surfaced as an exception (run() and
/// collect() throw it; next_event() reports error frames as data).
class service_error : public std::runtime_error {
public:
    explicit service_error(error_frame frame)
        : std::runtime_error(std::string(error_code_name(frame.code)) + ": " +
                             frame.message),
          frame_(std::move(frame)) {}

    const error_frame& frame() const noexcept { return frame_; }
    error_code code() const noexcept { return frame_.code; }

private:
    error_frame frame_;
};

class client {
public:
    /// One server-to-client event, decoded and typed.
    struct event {
        enum class kind { progress, result, error, done };
        kind type = kind::progress;
        progress_frame progress; ///< type == progress
        result_frame result;     ///< type == result
        error_frame error;       ///< type == error
        done_frame done;         ///< type == done
    };

    /// Connect ("tcp:PORT" or a unix socket path) and read the server's
    /// hello; throws configuration_error on a refused connection or a
    /// protocol version mismatch.
    explicit client(const std::string& endpoint_text);
    ~client();

    client(const client&) = delete;
    client& operator=(const client&) = delete;

    const hello_frame& hello() const noexcept { return hello_; }

    /// Submit a manifest under a client-chosen nonzero request id
    /// (session-unique).  Returns immediately; results arrive via
    /// next_event().
    void submit(std::uint64_t request, const shard::lot_manifest& manifest);

    /// Ask the server to cancel a request (cooperative; a `cancelled`
    /// error frame follows unless the request already finished).
    void cancel(std::uint64_t request);

    /// Block for the next server frame; nullopt on a clean EOF.  Throws
    /// serialization_error on framing damage and configuration_error on a
    /// frame the client cannot decode.
    std::optional<event> next_event();

    /// Drive next_event() until `request` finishes: returns its records
    /// in unit order on done, throws service_error on a terminal error
    /// frame (session-scoped errors included), configuration_error on a
    /// server that hangs up mid-request.  Events for other in-flight
    /// requests are ignored -- collect one request at a time per client.
    std::vector<store::record> collect(std::uint64_t request);

    /// submit + collect under one fresh request id.
    std::vector<store::record> run(const shard::lot_manifest& manifest);

    /// The raw socket fd -- tests use it to stop reading (slow-reader
    /// shedding) or to slam the connection shut mid-job.
    int fd() const noexcept { return fd_.get(); }

private:
    void send_record(const store::record& r);
    std::optional<store::record> read_frame();

    socket_fd fd_;
    frame_decoder decoder_;
    hello_frame hello_;
    std::uint64_t next_request_ = 1;
};

/// The screening_client example's main: --connect, --manifest (JSON path)
/// or --dice/--sigma for an inline screening lot, --store to append the
/// streamed records, --cancel-after=N to exercise mid-job cancel.
int client_main(int argc, char** argv);

} // namespace bistna::svc
