// Thin POSIX socket wrappers for the screening service: RAII fds, Unix
// domain + TCP loopback listeners/connectors and an endpoint grammar
// shared by --listen/--connect.
//
//   endpoint := "tcp:PORT"           loopback TCP (127.0.0.1), PORT 0 asks
//                                    the kernel for an ephemeral port
//            |  PATH                 Unix domain socket at PATH
//
// Only loopback TCP is offered deliberately: the daemon has no auth layer,
// so binding a routable interface would be an open screening endpoint.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace bistna::svc {

/// Move-only owning fd (closed on destruction).
class socket_fd {
public:
    socket_fd() = default;
    explicit socket_fd(int fd) : fd_(fd) {}
    ~socket_fd() { reset(); }

    socket_fd(socket_fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    socket_fd& operator=(socket_fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }
    socket_fd(const socket_fd&) = delete;
    socket_fd& operator=(const socket_fd&) = delete;

    int get() const noexcept { return fd_; }
    bool valid() const noexcept { return fd_ >= 0; }
    int release() noexcept { return std::exchange(fd_, -1); }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// A parsed --listen/--connect endpoint.
struct endpoint {
    bool tcp = false;
    std::string path;        ///< unix socket path (tcp == false)
    std::uint16_t port = 0;  ///< loopback port (tcp == true)
};

/// Parse the endpoint grammar above; throws configuration_error on an
/// empty path, a malformed port, or an over-long unix path (sun_path is
/// 107 bytes).
endpoint parse_endpoint(const std::string& text);

/// Human-readable endpoint ("tcp:9042" / "/run/bistna.sock").
std::string endpoint_name(const endpoint& ep);

/// Bind + listen.  The unix variant unlinks a stale socket file first;
/// the tcp variant binds 127.0.0.1 and reports the actual port (ephemeral
/// binds resolve here).  Throws configuration_error on failure.
socket_fd listen_unix(const std::string& path, int backlog = 64);
socket_fd listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                              int backlog = 64);

/// Blocking connect; throws configuration_error on failure.
socket_fd connect_endpoint(const endpoint& ep);

/// Accept one pending connection, already nonblocking; invalid socket_fd
/// when the listener has none (EAGAIN).
socket_fd accept_nonblocking(int listener_fd);

void set_nonblocking(int fd);

/// send() with MSG_NOSIGNAL semantics: bytes written, 0 on EAGAIN, -1 on
/// a dead peer/socket error (never raises SIGPIPE).
long send_some(int fd, const std::uint8_t* data, std::size_t size) noexcept;

/// recv(): bytes read, 0 on EAGAIN, -1 on EOF or a socket error.
long recv_some(int fd, std::uint8_t* data, std::size_t size) noexcept;

} // namespace bistna::svc
