#include "svc/client.hpp"

#include <iostream>
#include <utility>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "store/lot_store.hpp"

namespace bistna::svc {

client::client(const std::string& endpoint_text)
    : fd_(connect_endpoint(parse_endpoint(endpoint_text))) {
    // The connection opens with the server's hello; anything else (or a
    // version we do not speak) is a handshake failure.
    std::optional<store::record> first = read_frame();
    if (!first) {
        throw configuration_error("service client: server closed the connection "
                                  "before hello");
    }
    hello_ = decode_hello(*first);
    if (hello_.protocol != protocol_version) {
        throw configuration_error(
            "service client: protocol mismatch (server speaks v" +
            std::to_string(hello_.protocol) + ", client v" +
            std::to_string(protocol_version) + ")");
    }
}

client::~client() = default;

void client::send_record(const store::record& r) {
    const std::vector<std::uint8_t> bytes = wire_bytes(r);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const long n = send_some(fd_.get(), bytes.data() + sent, bytes.size() - sent);
        if (n < 0) {
            throw configuration_error("service client: connection lost while sending");
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::optional<store::record> client::read_frame() {
    for (;;) {
        if (auto record = decoder_.next()) {
            return record;
        }
        std::uint8_t buf[65536];
        const long n = recv_some(fd_.get(), buf, sizeof buf);
        if (n < 0) {
            if (decoder_.buffered() != 0) {
                throw serialization_error(
                    "service client: connection closed mid-frame", decoder_.offset());
            }
            return std::nullopt; // clean EOF on a frame boundary
        }
        decoder_.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    }
}

void client::submit(std::uint64_t request, const shard::lot_manifest& manifest) {
    submit_frame f;
    f.request = request;
    f.manifest = manifest;
    send_record(encode(f));
    next_request_ = std::max(next_request_, request + 1);
}

void client::cancel(std::uint64_t request) {
    send_record(encode(cancel_frame{request}));
}

std::optional<client::event> client::next_event() {
    std::optional<store::record> record = read_frame();
    if (!record) {
        return std::nullopt;
    }
    event e;
    switch (record->type) {
    case store::record_type::svc_progress:
        e.type = event::kind::progress;
        e.progress = decode_progress(*record);
        return e;
    case store::record_type::svc_result:
        e.type = event::kind::result;
        e.result = decode_result(*record);
        return e;
    case store::record_type::svc_error:
        e.type = event::kind::error;
        e.error = decode_error(*record);
        return e;
    case store::record_type::svc_done:
        e.type = event::kind::done;
        e.done = decode_done(*record);
        return e;
    default:
        throw configuration_error("service client: unexpected frame type " +
                                  std::to_string(static_cast<unsigned>(record->type)));
    }
}

std::vector<store::record> client::collect(std::uint64_t request) {
    std::vector<store::record> records;
    for (;;) {
        std::optional<event> e = next_event();
        if (!e) {
            throw configuration_error(
                "service client: server hung up mid-request (after " +
                std::to_string(records.size()) + " records)");
        }
        switch (e->type) {
        case event::kind::result:
            if (e->result.request == request) {
                records.push_back(std::move(e->result.record));
            }
            break;
        case event::kind::done:
            if (e->done.request == request) {
                return records;
            }
            break;
        case event::kind::error:
            // Request-scoped errors for this request and session-scoped
            // verdicts (request 0: shed, shutdown, ...) both end the wait.
            if (e->error.request == request || e->error.request == 0) {
                throw service_error(std::move(e->error));
            }
            break;
        case event::kind::progress:
            break;
        }
    }
}

std::vector<store::record> client::run(const shard::lot_manifest& manifest) {
    const std::uint64_t request = next_request_++;
    submit(request, manifest);
    return collect(request);
}

// --- example front end ------------------------------------------------------

int client_main(int argc, char** argv) {
    try {
        const std::string endpoint =
            flag_string(argc, argv, "connect", "/tmp/bistna_serverd.sock");
        const std::string manifest_path = flag_text(argc, argv, "manifest");
        const std::string store_path = flag_text(argc, argv, "store");
        const std::uint64_t cancel_after = flag_u64(argc, argv, "cancel-after", 0);

        shard::lot_manifest manifest;
        if (!manifest_path.empty()) {
            manifest = shard::lot_manifest::load(manifest_path);
        } else {
            manifest.workload = shard::workload_kind::screening;
            manifest.dice = flag_u64(argc, argv, "dice", 16);
            manifest.sigma = flag_value(argc, argv, "sigma", 0.03);
            manifest.batch_lanes =
                static_cast<std::size_t>(flag_u64(argc, argv, "lanes", 8));
        }

        client c(endpoint);
        std::cout << "connected: " << c.hello().server << " (protocol v"
                  << c.hello().protocol << ")\n";

        const std::uint64_t request = 1;
        c.submit(request, manifest);

        std::unique_ptr<store::lot_store> result_store;
        if (!store_path.empty()) {
            result_store = std::make_unique<store::lot_store>(
                store::lot_store::open_append(store_path));
        }

        std::uint64_t received = 0;
        for (;;) {
            std::optional<client::event> e = c.next_event();
            if (!e) {
                std::cerr << "screening_client: server hung up\n";
                return 2;
            }
            if (e->type == client::event::kind::progress &&
                e->progress.request == request) {
                std::cout << "progress: " << e->progress.completed << "/"
                          << e->progress.total << "\n";
            } else if (e->type == client::event::kind::result &&
                       e->result.request == request) {
                ++received;
                if (result_store) {
                    result_store->append(e->result.record);
                }
                if (cancel_after != 0 && received == cancel_after) {
                    std::cout << "cancelling after " << received << " records\n";
                    c.cancel(request);
                }
            } else if (e->type == client::event::kind::done &&
                       e->done.request == request) {
                std::cout << "done: " << e->done.units << " records";
                if (result_store) {
                    std::cout << " -> '" << result_store->path() << "' ("
                              << result_store->records() << " total)";
                }
                std::cout << "\n";
                return 0;
            } else if (e->type == client::event::kind::error &&
                       (e->error.request == request || e->error.request == 0)) {
                std::cerr << "screening_client: " << error_code_name(e->error.code)
                          << ": " << e->error.message << "\n";
                // A cancel we asked for is a success path.
                return (cancel_after != 0 &&
                        e->error.code == error_code::cancelled)
                           ? 0
                           : 3;
            }
        }
    } catch (const std::exception& e) {
        std::cerr << "screening_client: " << e.what() << "\n";
        return 2;
    }
}

} // namespace bistna::svc
