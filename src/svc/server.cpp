#include "svc/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <iostream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/job_queue.hpp"
#include "shard/unit_stream.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"

namespace bistna::svc {

namespace {

/// Interned once; recording is a no-op branch unless a registry is
/// attached, so the daemon pays nothing for telemetry it was not asked
/// for.
struct svc_metrics {
    telemetry::metric_id sessions_accepted = telemetry::counter_id("svc.sessions.accepted");
    telemetry::metric_id sessions_closed = telemetry::counter_id("svc.sessions.closed");
    telemetry::metric_id sessions_shed = telemetry::counter_id("svc.sessions.shed");
    telemetry::metric_id jobs_admitted = telemetry::counter_id("svc.jobs.admitted");
    telemetry::metric_id jobs_completed = telemetry::counter_id("svc.jobs.completed");
    telemetry::metric_id jobs_cancelled = telemetry::counter_id("svc.jobs.cancelled");
    telemetry::metric_id jobs_rejected = telemetry::counter_id("svc.jobs.rejected");
    telemetry::metric_id jobs_failed = telemetry::counter_id("svc.jobs.failed");
    telemetry::metric_id frames_in = telemetry::counter_id("svc.frames.in");
    telemetry::metric_id frames_out = telemetry::counter_id("svc.frames.out");
    telemetry::metric_id bytes_in = telemetry::counter_id("svc.bytes.in");
    telemetry::metric_id bytes_out = telemetry::counter_id("svc.bytes.out");
    telemetry::metric_id admission_depth = telemetry::histogram_id("svc.admission.depth");
    telemetry::metric_id admission_wait = telemetry::histogram_id("svc.admission.wait_ns");
    telemetry::metric_id request_latency = telemetry::histogram_id("svc.request.latency_ns");
    telemetry::metric_id send_queue_bytes = telemetry::histogram_id("svc.send_queue.bytes");
};

const svc_metrics& metrics() {
    static const svc_metrics m;
    return m;
}

} // namespace

struct service_server::impl {
    explicit impl(server_options o) : opts(std::move(o)) {}

    server_options opts;

    std::shared_ptr<core::job_queue> queue;
    socket_fd unix_listener;
    socket_fd tcp_listener;
    std::uint16_t bound_tcp_port = 0;
    int wake_read = -1;
    int wake_write = -1;
    std::thread loop;
    std::atomic<bool> stop_flag{false};
    std::atomic<bool> running{false};
    bool started = false;

    // Introspection counters: written by the loop thread, read by anyone.
    std::atomic<std::uint64_t> c_accepted{0}, c_closed{0}, c_shed{0};
    std::atomic<std::uint64_t> c_admitted{0}, c_completed{0}, c_cancelled{0};
    std::atomic<std::uint64_t> c_rejected{0}, c_failed{0};

    // ----- loop-thread state (never touched from outside the loop) --------

    struct pending_request {
        std::uint64_t id = 0;
        shard::lot_manifest manifest;
        std::uint64_t submitted_ns = 0;
    };

    struct active_request {
        std::uint64_t id = 0;
        std::uint64_t total = 0;
        std::uint64_t sent = 0; ///< result frames queued so far
        std::uint64_t submitted_ns = 0;
        std::unique_ptr<shard::unit_stream> stream;
    };

    struct session {
        socket_fd fd;
        std::uint64_t id = 0;
        frame_decoder decoder;

        std::deque<std::vector<std::uint8_t>> send_queue;
        std::size_t send_head = 0; ///< sent bytes of send_queue.front()
        std::size_t queued_bytes = 0;

        std::deque<pending_request> pending;
        std::vector<active_request> active;

        std::uint64_t last_activity_ns = 0;
        std::uint64_t stall_since_ns = 0;
        bool close_after_flush = false;
        bool input_dead = false; ///< stop reading (framing error / shed)
        bool dead = false;       ///< removed by reap() at the next loop top
    };

    std::vector<std::unique_ptr<session>> sessions;
    std::size_t rr_cursor = 0;      ///< fair dispatch position
    std::size_t total_pending = 0;  ///< admitted-not-dispatched, all sessions
    std::size_t active_jobs = 0;
    std::uint64_t next_session_id = 1;
    /// Cancelled streams ride here until finished() so their destructors
    /// never block the event loop.
    std::vector<std::unique_ptr<shard::unit_stream>> draining;

    // ----- lifecycle -------------------------------------------------------

    void start() {
        if (started) {
            throw configuration_error("service server: already started");
        }
        if (opts.listen_path.empty() && opts.tcp_port < 0) {
            throw configuration_error(
                "service server: no listener (set listen_path or tcp_port)");
        }
        queue = std::make_shared<core::job_queue>(opts.worker_threads,
                                                  core::job_schedule::round_robin);
        if (!opts.listen_path.empty()) {
            unix_listener = listen_unix(opts.listen_path);
        }
        if (opts.tcp_port >= 0) {
            tcp_listener = listen_tcp_loopback(static_cast<std::uint16_t>(opts.tcp_port),
                                               &bound_tcp_port);
        }
        int pipe_fds[2] = {-1, -1};
        if (::pipe(pipe_fds) != 0) {
            throw configuration_error("service server: pipe() failed");
        }
        wake_read = pipe_fds[0];
        wake_write = pipe_fds[1];
        set_nonblocking(wake_read);
        set_nonblocking(wake_write);
        started = true;
        stop_flag.store(false, std::memory_order_relaxed);
        running.store(true, std::memory_order_release);
        loop = std::thread([this] { loop_main(); });
    }

    void stop() {
        if (!started) {
            return;
        }
        stop_flag.store(true, std::memory_order_release);
        wake();
        loop.join();
        // The loop's teardown cancelled and drained every stream, but a
        // worker can still be INSIDE the post-publish notifier: it fires
        // after the channel lock is released, so a drained handle does
        // not cover it.  The streams are gone, so this is the pool's last
        // reference -- dropping it joins the workers, and only then is it
        // safe to tear the wake pipe out from under wake().
        queue.reset();
        ::close(wake_read);
        ::close(wake_write);
        wake_read = wake_write = -1;
        unix_listener.reset();
        tcp_listener.reset();
        if (!opts.listen_path.empty()) {
            ::unlink(opts.listen_path.c_str());
        }
        started = false;
        running.store(false, std::memory_order_release);
    }

    /// Wake the poll loop.  Called from worker threads (unit_stream item
    /// callbacks) and stop(); a full pipe means a wake is already pending,
    /// so EAGAIN is success.
    void wake() noexcept {
        const std::uint8_t byte = 1;
        (void)::write(wake_write, &byte, 1);
    }

    // ----- the event loop --------------------------------------------------

    void loop_main() {
        telemetry::set_thread_name("svc-loop");
        std::vector<pollfd> fds;
        while (!stop_flag.load(std::memory_order_acquire)) {
            reap();
            dispatch();
            pump_all();
            check_stalls_and_idle();

            fds.clear();
            fds.push_back({wake_read, POLLIN, 0});
            if (unix_listener.valid()) {
                fds.push_back({unix_listener.get(), POLLIN, 0});
            }
            if (tcp_listener.valid()) {
                fds.push_back({tcp_listener.get(), POLLIN, 0});
            }
            const std::size_t session_base = fds.size();
            for (const auto& s : sessions) {
                short events = 0;
                if (!s->input_dead && !s->dead) {
                    events |= POLLIN;
                }
                if (s->queued_bytes > 0 && !s->dead) {
                    events |= POLLOUT;
                }
                fds.push_back({s->fd.get(), events, 0});
            }

            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), poll_timeout_ms());

            if ((fds[0].revents & POLLIN) != 0) {
                std::uint8_t sink[256];
                while (::read(wake_read, sink, sizeof sink) > 0) {
                }
            }
            std::size_t idx = 1;
            if (unix_listener.valid()) {
                if ((fds[idx].revents & POLLIN) != 0) {
                    accept_all(unix_listener.get());
                }
                ++idx;
            }
            if (tcp_listener.valid()) {
                if ((fds[idx].revents & POLLIN) != 0) {
                    accept_all(tcp_listener.get());
                }
                ++idx;
            }
            // accept_all() appended to `sessions`, so only the first
            // `fds.size() - session_base` entries have poll results.
            const std::size_t polled = fds.size() - session_base;
            for (std::size_t i = 0; i < polled; ++i) {
                session& s = *sessions[i];
                const short revents = fds[session_base + i].revents;
                if (s.dead || revents == 0) {
                    continue;
                }
                if ((revents & POLLIN) != 0) {
                    read_session(s);
                }
                if (!s.dead && (revents & POLLOUT) != 0) {
                    write_session(s);
                }
                if (!s.dead && (revents & (POLLERR | POLLNVAL)) != 0) {
                    kill_session(s);
                }
                if (!s.dead && (revents & POLLHUP) != 0 && (revents & POLLIN) == 0) {
                    kill_session(s);
                }
            }
        }
        shutdown_all();
    }

    int poll_timeout_ms() const {
        const std::uint64_t now = telemetry::now_ns();
        std::uint64_t deadline = UINT64_MAX;
        for (const auto& s : sessions) {
            if (s->dead) {
                continue;
            }
            if (opts.stall_timeout_ms != 0 && s->stall_since_ns != 0) {
                deadline = std::min(deadline,
                                    s->stall_since_ns + opts.stall_timeout_ms * 1000000);
            }
            if (opts.idle_timeout_ms != 0 && !s->close_after_flush &&
                s->pending.empty() && s->active.empty() && s->queued_bytes == 0) {
                deadline = std::min(deadline,
                                    s->last_activity_ns + opts.idle_timeout_ms * 1000000);
            }
        }
        if (!draining.empty()) {
            // Cancelled streams stop firing item callbacks; poll their
            // finished() state instead of waiting on a wake that may never
            // come.
            deadline = std::min(deadline, now + 50u * 1000000);
        }
        if (deadline == UINT64_MAX) {
            return 500;
        }
        if (deadline <= now) {
            return 0;
        }
        return static_cast<int>(std::min<std::uint64_t>((deadline - now) / 1000000 + 1, 500));
    }

    void reap() {
        draining.erase(std::remove_if(draining.begin(), draining.end(),
                                      [](const std::unique_ptr<shard::unit_stream>& d) {
                                          return d->finished();
                                      }),
                       draining.end());
        sessions.erase(std::remove_if(sessions.begin(), sessions.end(),
                                      [](const std::unique_ptr<session>& s) {
                                          return s->dead;
                                      }),
                       sessions.end());
    }

    void accept_all(int listener) {
        for (;;) {
            socket_fd fd = accept_nonblocking(listener);
            if (!fd.valid()) {
                return;
            }
            if (opts.socket_send_buffer != 0) {
                const int size = static_cast<int>(opts.socket_send_buffer);
                ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &size, sizeof(size));
            }
            auto s = std::make_unique<session>();
            s->fd = std::move(fd);
            s->id = next_session_id++;
            s->last_activity_ns = telemetry::now_ns();
            c_accepted.fetch_add(1, std::memory_order_relaxed);
            telemetry::counter_add(metrics().sessions_accepted);
            enqueue(*s, encode(hello_frame{}));
            sessions.push_back(std::move(s));
        }
    }

    // ----- sending ---------------------------------------------------------

    /// Queue one frame; actual writes happen on POLLOUT so a kill can
    /// never fire while callers still hold references into the session.
    void enqueue(session& s, const store::record& r) {
        std::vector<std::uint8_t> bytes = wire_bytes(r);
        s.queued_bytes += bytes.size();
        telemetry::counter_add(metrics().frames_out);
        telemetry::counter_add(metrics().bytes_out, bytes.size());
        telemetry::histogram_record(metrics().send_queue_bytes, s.queued_bytes);
        s.send_queue.push_back(std::move(bytes));
    }

    void write_session(session& s) {
        while (!s.send_queue.empty()) {
            const std::vector<std::uint8_t>& front = s.send_queue.front();
            const long n = send_some(s.fd.get(), front.data() + s.send_head,
                                     front.size() - s.send_head);
            if (n < 0) {
                kill_session(s);
                return;
            }
            if (n == 0) {
                return; // kernel buffer full; POLLOUT will fire again
            }
            s.send_head += static_cast<std::size_t>(n);
            s.queued_bytes -= static_cast<std::size_t>(n);
            if (s.send_head == front.size()) {
                s.send_queue.pop_front();
                s.send_head = 0;
            }
        }
        if (s.close_after_flush) {
            finish_close(s);
        }
    }

    // ----- receiving -------------------------------------------------------

    void read_session(session& s) {
        std::uint8_t buf[65536];
        for (;;) {
            const long n = recv_some(s.fd.get(), buf, sizeof buf);
            if (n < 0) {
                // Disconnect: cooperative-cancel everything the session
                // owned -- a vanished client must not keep burning workers.
                kill_session(s);
                return;
            }
            if (n == 0) {
                return; // drained
            }
            s.last_activity_ns = telemetry::now_ns();
            telemetry::counter_add(metrics().bytes_in,
                                   static_cast<std::uint64_t>(n));
            s.decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
            try {
                while (auto record = s.decoder.next()) {
                    telemetry::counter_add(metrics().frames_in);
                    handle_frame(s, *record);
                    if (s.dead || s.input_dead) {
                        return;
                    }
                }
            } catch (const serialization_error& e) {
                // Framing damage: the byte stream cannot resync, so name
                // the offending offset and close (after flushing the
                // verdict).  CRC-valid-but-malformed payloads never land
                // here -- handle_frame answers those per request.
                cancel_requests(s);
                error_frame f;
                f.request = 0;
                f.code = error_code::bad_frame;
                f.message = e.what();
                f.offset = e.byte_offset();
                enqueue(s, encode(f));
                s.input_dead = true;
                s.close_after_flush = true;
                return;
            }
        }
    }

    void handle_frame(session& s, const store::record& r) {
        switch (r.type) {
        case store::record_type::svc_submit:
            handle_submit(s, r);
            return;
        case store::record_type::svc_cancel:
            handle_cancel(s, r);
            return;
        default: {
            error_frame f;
            f.request = 0;
            f.code = error_code::bad_request;
            f.message = "unexpected frame type " +
                        std::to_string(static_cast<unsigned>(r.type)) +
                        " (clients send submit/cancel only)";
            enqueue(s, encode(f));
            return;
        }
        }
    }

    void reject(session& s, std::uint64_t request, error_code code,
                std::string message) {
        c_rejected.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter_add(metrics().jobs_rejected);
        error_frame f;
        f.request = request;
        f.code = code;
        f.message = std::move(message);
        enqueue(s, encode(f));
    }

    void handle_submit(session& s, const store::record& r) {
        submit_frame f;
        try {
            f = decode_submit(r);
        } catch (const std::exception& e) {
            // CRC-valid but semantically broken: a request-level error,
            // the session survives.  The request id may itself be the
            // broken part, so this one is session-scoped.
            reject(s, 0, error_code::bad_request, e.what());
            return;
        }
        if (f.request == 0) {
            reject(s, 0, error_code::bad_request, "request id must be nonzero");
            return;
        }
        const auto duplicate = [&](std::uint64_t id) {
            for (const auto& p : s.pending) {
                if (p.id == id) {
                    return true;
                }
            }
            for (const auto& a : s.active) {
                if (a.id == id) {
                    return true;
                }
            }
            return false;
        };
        if (duplicate(f.request)) {
            reject(s, f.request, error_code::bad_request,
                   "duplicate request id " + std::to_string(f.request));
            return;
        }
        if (s.pending.size() + s.active.size() >= opts.session_quota) {
            reject(s, f.request, error_code::overloaded,
                   "session quota exceeded (" + std::to_string(opts.session_quota) +
                       " requests in flight)");
            return;
        }
        if (total_pending >= opts.admission_capacity) {
            reject(s, f.request, error_code::overloaded,
                   "admission queue full (" + std::to_string(opts.admission_capacity) +
                       " requests waiting)");
            return;
        }
        telemetry::histogram_record(metrics().admission_depth, total_pending);
        pending_request p;
        p.id = f.request;
        p.manifest = std::move(f.manifest);
        p.submitted_ns = telemetry::now_ns();
        s.pending.push_back(std::move(p));
        ++total_pending;
    }

    void handle_cancel(session& s, const store::record& r) {
        cancel_frame f;
        try {
            f = decode_cancel(r);
        } catch (const std::exception& e) {
            reject(s, 0, error_code::bad_request, e.what());
            return;
        }
        for (auto it = s.pending.begin(); it != s.pending.end(); ++it) {
            if (it->id == f.request) {
                s.pending.erase(it);
                --total_pending;
                c_cancelled.fetch_add(1, std::memory_order_relaxed);
                telemetry::counter_add(metrics().jobs_cancelled);
                error_frame e;
                e.request = f.request;
                e.code = error_code::cancelled;
                e.message = "request cancelled before dispatch";
                enqueue(s, encode(e));
                return;
            }
        }
        for (auto& a : s.active) {
            if (a.id == f.request) {
                // Cooperative: in-flight groups finish and are discarded;
                // the pump reports the request `cancelled` once the stream
                // goes terminal.
                a.stream->cancel();
                return;
            }
        }
        // Unknown id: almost always a cancel racing the request's own done
        // frame -- benign, answering would only confuse the client.
    }

    // ----- admission + dispatch --------------------------------------------

    void dispatch() {
        while (active_jobs < opts.max_active_jobs && total_pending > 0) {
            session* chosen = nullptr;
            const std::size_t n = sessions.size();
            for (std::size_t k = 0; k < n; ++k) {
                session& s = *sessions[(rr_cursor + k) % n];
                if (!s.dead && !s.close_after_flush && !s.pending.empty()) {
                    chosen = &s;
                    rr_cursor = (rr_cursor + k + 1) % n;
                    break;
                }
            }
            if (chosen == nullptr) {
                return;
            }
            pending_request req = std::move(chosen->pending.front());
            chosen->pending.pop_front();
            --total_pending;
            admit(*chosen, std::move(req));
        }
    }

    void admit(session& s, pending_request req) {
        active_request a;
        a.id = req.id;
        a.total = req.manifest.total_units();
        a.submitted_ns = req.submitted_ns;
        try {
            a.stream = std::make_unique<shard::unit_stream>(
                req.manifest, 0, a.total, queue, [this] { wake(); });
        } catch (const std::exception& e) {
            c_failed.fetch_add(1, std::memory_order_relaxed);
            telemetry::counter_add(metrics().jobs_failed);
            error_frame f;
            f.request = req.id;
            f.code = error_code::internal;
            f.message = e.what();
            enqueue(s, encode(f));
            return;
        }
        ++active_jobs;
        c_admitted.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter_add(metrics().jobs_admitted);
        telemetry::histogram_record(metrics().admission_wait,
                                    telemetry::now_ns() - req.submitted_ns);
        enqueue(s, encode(progress_frame{req.id, 0, a.total}));
        s.active.push_back(std::move(a));
    }

    // ----- result streaming ------------------------------------------------

    void pump_all() {
        for (const auto& sp : sessions) {
            session& s = *sp;
            if (s.dead || s.close_after_flush) {
                continue;
            }
            for (std::size_t i = 0; i < s.active.size();) {
                if (pump_request(s, s.active[i])) {
                    s.active.erase(s.active.begin() + static_cast<std::ptrdiff_t>(i));
                } else {
                    ++i;
                }
            }
        }
    }

    /// Stream completed in-order units into the send queue while there is
    /// headroom.  Returns true once the request finalized (done or error
    /// frame queued).
    bool pump_request(session& s, active_request& a) {
        for (;;) {
            if (s.queued_bytes >= opts.send_queue_limit) {
                return false; // backpressure: the job keeps computing
            }
            std::optional<shard::unit_record> item = a.stream->try_next();
            if (!item) {
                if (!a.stream->finished()) {
                    return false; // next in-order unit still computing
                }
                // Terminal was observed after the nullopt; one more pull
                // closes the publish/flip race before declaring the
                // stream dry.
                item = a.stream->try_next();
                if (!item) {
                    finalize(s, a);
                    return true;
                }
            }
            enqueue(s, encode(result_frame{a.id, item->unit, std::move(item->record)}));
            ++a.sent;
            if (opts.progress_every != 0 && a.sent % opts.progress_every == 0 &&
                a.sent < a.total) {
                enqueue(s, encode(progress_frame{a.id, a.sent, a.total}));
            }
        }
    }

    void finalize(session& s, active_request& a) {
        --active_jobs;
        const std::uint64_t now = telemetry::now_ns();
        const std::exception_ptr error = a.stream->error();
        if (a.sent == a.total && error == nullptr) {
            enqueue(s, encode(done_frame{a.id, a.sent}));
            c_completed.fetch_add(1, std::memory_order_relaxed);
            telemetry::counter_add(metrics().jobs_completed);
            telemetry::histogram_record(metrics().request_latency, now - a.submitted_ns);
            telemetry::emit_span("svc.request", a.submitted_ns, now - a.submitted_ns,
                                 "units", static_cast<double>(a.total));
        } else if (error != nullptr) {
            c_failed.fetch_add(1, std::memory_order_relaxed);
            telemetry::counter_add(metrics().jobs_failed);
            std::string message = "worker failed";
            try {
                std::rethrow_exception(error);
            } catch (const std::exception& e) {
                message = e.what();
            } catch (...) {
            }
            error_frame f;
            f.request = a.id;
            f.code = error_code::internal;
            f.message = std::move(message);
            enqueue(s, encode(f));
        } else {
            c_cancelled.fetch_add(1, std::memory_order_relaxed);
            telemetry::counter_add(metrics().jobs_cancelled);
            error_frame f;
            f.request = a.id;
            f.code = error_code::cancelled;
            f.message = "request cancelled after " + std::to_string(a.sent) + " of " +
                        std::to_string(a.total) + " units";
            enqueue(s, encode(f));
        }
        a.stream.reset(); // finished -> the destructor cannot block
    }

    // ----- overload + lifecycle policing -----------------------------------

    void check_stalls_and_idle() {
        const std::uint64_t now = telemetry::now_ns();
        for (const auto& sp : sessions) {
            session& s = *sp;
            if (s.dead || s.close_after_flush) {
                continue;
            }
            if (opts.stall_timeout_ms != 0 &&
                s.queued_bytes >= opts.send_queue_limit) {
                // The queue can only sit at the limit while the reader
                // drains nothing: the pump stops adding at the bound, so
                // any drain progress drops below it and resets the clock.
                if (s.stall_since_ns == 0) {
                    s.stall_since_ns = now;
                } else if (now - s.stall_since_ns >= opts.stall_timeout_ms * 1000000) {
                    shed_session(s);
                    continue;
                }
            } else {
                s.stall_since_ns = 0;
            }
            if (opts.idle_timeout_ms != 0 && s.pending.empty() && s.active.empty() &&
                s.queued_bytes == 0 &&
                now - s.last_activity_ns >= opts.idle_timeout_ms * 1000000) {
                error_frame f;
                f.request = 0;
                f.code = error_code::idle_timeout;
                f.message = "session idle for " + std::to_string(opts.idle_timeout_ms) +
                            " ms";
                enqueue(s, encode(f));
                s.input_dead = true;
                s.close_after_flush = true;
            }
        }
    }

    void shed_session(session& s) {
        cancel_requests(s);
        // Drop the queued backlog -- but never a partially-sent frame:
        // truncating mid-frame would turn the typed verdict below into CRC
        // garbage on the client's decoder.
        if (s.send_head > 0 && !s.send_queue.empty()) {
            std::vector<std::uint8_t> front = std::move(s.send_queue.front());
            s.queued_bytes = front.size() - s.send_head;
            s.send_queue.clear();
            s.send_queue.push_back(std::move(front));
        } else {
            s.send_queue.clear();
            s.send_head = 0;
            s.queued_bytes = 0;
        }
        s.stall_since_ns = 0;
        error_frame f;
        f.request = 0;
        f.code = error_code::slow_reader;
        f.message = "session shed: send queue stalled at " +
                    std::to_string(opts.send_queue_limit) + " bytes for " +
                    std::to_string(opts.stall_timeout_ms) + " ms";
        enqueue(s, encode(f));
        s.input_dead = true;
        s.close_after_flush = true;
        c_shed.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter_add(metrics().sessions_shed);
    }

    /// Cancel every request the session owns; active streams retire into
    /// `draining` so the loop never blocks on their teardown.
    void cancel_requests(session& s) {
        total_pending -= s.pending.size();
        const std::uint64_t dropped = s.pending.size() + s.active.size();
        s.pending.clear();
        for (auto& a : s.active) {
            a.stream->cancel();
            draining.push_back(std::move(a.stream));
            --active_jobs;
        }
        s.active.clear();
        if (dropped != 0) {
            c_cancelled.fetch_add(dropped, std::memory_order_relaxed);
            telemetry::counter_add(metrics().jobs_cancelled, dropped);
        }
    }

    /// Hard removal: peer vanished or the socket errored.
    void kill_session(session& s) {
        if (s.dead) {
            return;
        }
        cancel_requests(s);
        s.dead = true;
        c_closed.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter_add(metrics().sessions_closed);
    }

    /// Orderly removal after the goodbye frame flushed.
    void finish_close(session& s) {
        if (s.dead) {
            return;
        }
        s.dead = true;
        c_closed.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter_add(metrics().sessions_closed);
    }

    void shutdown_all() {
        for (const auto& sp : sessions) {
            session& s = *sp;
            if (s.dead) {
                continue;
            }
            cancel_requests(s);
            error_frame f;
            f.request = 0;
            f.code = error_code::shutdown;
            f.message = "server stopping";
            enqueue(s, encode(f));
            // Best effort: one synchronous flush attempt; whatever the
            // kernel will not take right now is dropped with the socket.
            write_session(s);
        }
        sessions.clear();
        draining.clear(); // destructors cancel + drain their jobs
    }
};

service_server::service_server(server_options options)
    : impl_(std::make_unique<impl>(std::move(options))) {}

service_server::~service_server() {
    stop();
}

void service_server::start() {
    impl_->start();
}

void service_server::stop() {
    impl_->stop();
}

bool service_server::running() const noexcept {
    return impl_->running.load(std::memory_order_acquire);
}

std::uint16_t service_server::tcp_port() const noexcept {
    return impl_->bound_tcp_port;
}

const server_options& service_server::options() const noexcept {
    return impl_->opts;
}

server_counters service_server::counters() const noexcept {
    const impl& i = *impl_;
    server_counters c;
    c.sessions_accepted = i.c_accepted.load(std::memory_order_relaxed);
    c.sessions_closed = i.c_closed.load(std::memory_order_relaxed);
    c.sessions_shed = i.c_shed.load(std::memory_order_relaxed);
    c.jobs_admitted = i.c_admitted.load(std::memory_order_relaxed);
    c.jobs_completed = i.c_completed.load(std::memory_order_relaxed);
    c.jobs_cancelled = i.c_cancelled.load(std::memory_order_relaxed);
    c.jobs_rejected = i.c_rejected.load(std::memory_order_relaxed);
    c.jobs_failed = i.c_failed.load(std::memory_order_relaxed);
    return c;
}

// --- daemon front end -------------------------------------------------------

namespace {

std::atomic<bool> g_stop_signal{false};

void on_stop_signal(int) {
    g_stop_signal.store(true, std::memory_order_relaxed);
}

} // namespace

int server_main(int argc, char** argv) {
    try {
        server_options o;
        o.listen_path = flag_string(argc, argv, "listen", "/tmp/bistna_serverd.sock");
        // --listen also takes the client endpoint grammar: "tcp:PORT"
        // moves the listener to loopback TCP.
        const endpoint ep = parse_endpoint(o.listen_path);
        if (ep.tcp) {
            o.listen_path.clear();
            o.tcp_port = ep.port;
        }
        if (flag_present(argc, argv, "tcp")) {
            o.tcp_port = static_cast<int>(flag_u64(argc, argv, "tcp", 0));
        }
        o.worker_threads = flag_u64(argc, argv, "threads", 0);
        o.max_active_jobs = flag_u64(argc, argv, "active-jobs", 2);
        o.admission_capacity = flag_u64(argc, argv, "admission", 16);
        o.session_quota = flag_u64(argc, argv, "quota", 2);
        o.send_queue_limit = flag_u64(argc, argv, "send-queue-bytes", 4u << 20);
        o.stall_timeout_ms = flag_u64(argc, argv, "stall-timeout-ms", 5000);
        o.idle_timeout_ms = flag_u64(argc, argv, "idle-timeout-ms", 0);
        o.progress_every = flag_u64(argc, argv, "progress-every", 0);

        const std::string trace_path = flag_text(argc, argv, "trace");
        const bool want_metrics = flag_switch(argc, argv, "metrics");
        telemetry::metric_registry registry;
        if (!trace_path.empty() || want_metrics) {
            registry.set_process_name("bistna_serverd");
            registry.attach();
            telemetry::set_thread_name("main");
        }

        service_server server(std::move(o));
        server.start();
        if (!server.options().listen_path.empty()) {
            std::cout << "bistna_serverd listening on '" << server.options().listen_path
                      << "'\n";
        }
        if (server.options().tcp_port >= 0) {
            std::cout << "bistna_serverd listening on tcp:" << server.tcp_port() << "\n";
        }
        std::cout.flush();

        std::signal(SIGINT, on_stop_signal);
        std::signal(SIGTERM, on_stop_signal);
        while (!g_stop_signal.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        std::cout << "bistna_serverd: stopping\n";
        server.stop();

        const server_counters c = server.counters();
        std::cout << "sessions: " << c.sessions_accepted << " accepted, "
                  << c.sessions_closed << " closed, " << c.sessions_shed
                  << " shed\njobs: " << c.jobs_admitted << " admitted, "
                  << c.jobs_completed << " completed, " << c.jobs_cancelled
                  << " cancelled, " << c.jobs_rejected << " rejected, "
                  << c.jobs_failed << " failed\n";

        if (registry.is_attached()) {
            registry.detach();
            const auto snapshot = registry.snapshot();
            if (!trace_path.empty()) {
                telemetry::write_chrome_trace_file(trace_path, {&snapshot, 1});
                std::cout << "trace: " << trace_path << "\n";
            }
            if (want_metrics) {
                std::cout << "\n--- telemetry ---\n";
                telemetry::print_metrics(std::cout, snapshot);
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "bistna_serverd: " << e.what() << "\n";
        return 2;
    }
}

} // namespace bistna::svc
