#include "svc/socket.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hpp"

namespace bistna::svc {

void socket_fd::reset() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

namespace {

[[noreturn]] void sys_error(const std::string& what) {
    throw configuration_error("service socket: " + what + ": " +
                              std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw configuration_error("service socket: unix path '" + path +
                                  "' exceeds " +
                                  std::to_string(sizeof(addr.sun_path) - 1) +
                                  " bytes");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

sockaddr_in loopback_address(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

} // namespace

endpoint parse_endpoint(const std::string& text) {
    if (text.empty()) {
        throw configuration_error("service socket: empty endpoint");
    }
    endpoint ep;
    if (text.rfind("tcp:", 0) == 0) {
        ep.tcp = true;
        const std::string digits = text.substr(4);
        if (digits.empty()) {
            throw configuration_error("service socket: endpoint '" + text +
                                      "': missing port");
        }
        unsigned long port = 0;
        for (const char c : digits) {
            if (c < '0' || c > '9' || (port = port * 10 + (c - '0')) > 65535) {
                throw configuration_error("service socket: endpoint '" + text +
                                          "': port must be 0..65535");
            }
        }
        ep.port = static_cast<std::uint16_t>(port);
        return ep;
    }
    ep.path = text;
    unix_address(text); // validates the length
    return ep;
}

std::string endpoint_name(const endpoint& ep) {
    return ep.tcp ? "tcp:" + std::to_string(ep.port) : ep.path;
}

socket_fd listen_unix(const std::string& path, int backlog) {
    socket_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        sys_error("socket(AF_UNIX)");
    }
    const sockaddr_un addr = unix_address(path);
    ::unlink(path.c_str()); // a stale socket file from a dead daemon
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        sys_error("bind('" + path + "')");
    }
    if (::listen(fd.get(), backlog) != 0) {
        sys_error("listen('" + path + "')");
    }
    set_nonblocking(fd.get());
    return fd;
}

socket_fd listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                              int backlog) {
    socket_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        sys_error("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in addr = loopback_address(port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        sys_error("bind(127.0.0.1:" + std::to_string(port) + ")");
    }
    if (::listen(fd.get(), backlog) != 0) {
        sys_error("listen(tcp)");
    }
    if (bound_port != nullptr) {
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
            sys_error("getsockname");
        }
        *bound_port = ntohs(actual.sin_port);
    }
    set_nonblocking(fd.get());
    return fd;
}

socket_fd connect_endpoint(const endpoint& ep) {
    if (ep.tcp) {
        socket_fd fd(::socket(AF_INET, SOCK_STREAM, 0));
        if (!fd.valid()) {
            sys_error("socket(AF_INET)");
        }
        const sockaddr_in addr = loopback_address(ep.port);
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            sys_error("connect(" + endpoint_name(ep) + ")");
        }
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
    }
    socket_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
        sys_error("socket(AF_UNIX)");
    }
    const sockaddr_un addr = unix_address(ep.path);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        sys_error("connect('" + ep.path + "')");
    }
    return fd;
}

socket_fd accept_nonblocking(int listener_fd) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
        return socket_fd(); // EAGAIN/EWOULDBLOCK or a vanished peer
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return socket_fd(fd);
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        sys_error("fcntl(O_NONBLOCK)");
    }
}

long send_some(int fd, const std::uint8_t* data, std::size_t size) noexcept {
    for (;;) {
        const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n >= 0) {
            return static_cast<long>(n);
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return 0;
        }
        return -1;
    }
}

long recv_some(int fd, std::uint8_t* data, std::size_t size) noexcept {
    for (;;) {
        const ssize_t n = ::recv(fd, data, size, 0);
        if (n > 0) {
            return static_cast<long>(n);
        }
        if (n == 0) {
            return -1; // orderly EOF
        }
        if (errno == EINTR) {
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return 0;
        }
        return -1;
    }
}

} // namespace bistna::svc
