// bistna_serverd: screening as a service.
//
// A long-running daemon that listens on a Unix-domain socket (and
// optionally loopback TCP), accepts lot manifests as strict JSON over the
// framed wire protocol (svc/protocol.hpp), and multiplexes any number of
// concurrent client sessions onto ONE shared core::job_queue worker pool.
// Per-die records stream back to each client in global unit order as they
// complete -- bit-identical to the offline `screening_lot --store` path,
// because both sides run the same shard::unit_stream pipeline.
//
// Robustness is the design center, not an afterthought:
//
//   * bounded per-session send queues -- a slow reader backpressures its
//     own jobs (frames stay unsent, results wait in the job channel); a
//     reader that stops draining entirely past `stall_timeout_ms` is shed
//     with a typed `slow_reader` error frame, never allowed to pin server
//     memory;
//   * a global admission queue with per-session in-flight quotas and fair
//     round-robin dispatch across sessions -- one greedy client cannot
//     starve the fleet, and the pool itself runs `job_schedule::round_robin`
//     so active jobs share workers fairly too;
//   * graceful shedding: when the admission queue is full (or a session
//     exceeds its quota) the submit is answered with a typed `overloaded`
//     error frame immediately -- the daemon never hangs a client;
//   * cooperative cancel: an svc_cancel frame or a client disconnect
//     cancels the session's jobs via job_handle::cancel(); in-flight
//     groups finish and are discarded, unclaimed work is skipped;
//   * idle-session timeouts, and framing errors answered with a typed
//     `bad_frame` error naming the absolute byte offset before the
//     session is closed (a byte stream cannot resync after CRC damage).
//
// Architecture: one event-loop thread owns every session (poll() over the
// listeners, session sockets and a wakeup pipe that job completions
// write to); worker threads only run measurement closures and the tiny
// completion callback.  Cross-thread state is limited to the job_queue's
// own synchronization, the pipe, and relaxed introspection counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace bistna::svc {

struct server_options {
    /// Unix-domain listen path ("" disables; at least one listener must
    /// be enabled).  The socket file is unlinked on shutdown.
    std::string listen_path;
    /// >= 0: also listen on 127.0.0.1:tcp_port (0 picks an ephemeral
    /// port, readable from tcp_port() after start()).  Loopback only --
    /// the daemon has no auth layer.
    int tcp_port = -1;

    /// Worker threads of the shared pool (0 = hardware concurrency).
    std::size_t worker_threads = 0;
    /// Jobs dispatched onto the pool concurrently; admitted requests
    /// beyond this wait in the admission queue.
    std::size_t max_active_jobs = 2;
    /// Admitted-but-undispatched requests across ALL sessions; a submit
    /// past this is shed with a typed `overloaded` error.
    std::size_t admission_capacity = 16;
    /// In-flight (pending + active) requests per session; a submit past
    /// this is shed with `overloaded` while the session survives.
    std::size_t session_quota = 2;

    /// Bytes buffered per session before result streaming pauses
    /// (backpressure).  The job keeps computing; frames simply wait.
    std::size_t send_queue_limit = 4u << 20;
    /// A session whose send queue stays at the limit with nothing
    /// drained for this long is shed (`slow_reader`).  0 disables.
    std::uint64_t stall_timeout_ms = 5000;
    /// Sessions with no traffic and no work for this long are closed
    /// with a typed `idle_timeout` error.  0 disables.
    std::uint64_t idle_timeout_ms = 0;
    /// Emit a progress frame every N streamed results (0 = only the
    /// admission-time progress frame).
    std::size_t progress_every = 0;
    /// SO_SNDBUF for accepted sockets (0 keeps the kernel default).
    /// Overload tests shrink it so backpressure appears at test-sized
    /// data volumes instead of megabytes.
    std::size_t socket_send_buffer = 0;
};

/// Relaxed introspection counters (tests, --metrics, ops).
struct server_counters {
    std::uint64_t sessions_accepted = 0;
    std::uint64_t sessions_closed = 0;
    std::uint64_t sessions_shed = 0;
    std::uint64_t jobs_admitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_cancelled = 0;
    std::uint64_t jobs_rejected = 0; ///< overloaded/bad_request sheds
    std::uint64_t jobs_failed = 0;   ///< worker exceptions
};

class service_server {
public:
    explicit service_server(server_options options);
    /// stop()s if still running.
    ~service_server();

    service_server(const service_server&) = delete;
    service_server& operator=(const service_server&) = delete;

    /// Bind the listeners and launch the event loop.  Throws
    /// configuration_error when no listener is enabled or a bind fails.
    void start();

    /// Cancel outstanding jobs, notify connected sessions with a typed
    /// `shutdown` error, close everything, join the loop.  Idempotent.
    void stop();

    bool running() const noexcept;

    /// The TCP port actually bound (after start(); 0 when disabled).
    std::uint16_t tcp_port() const noexcept;

    const server_options& options() const noexcept;

    server_counters counters() const noexcept;

    struct impl;

private:
    std::unique_ptr<impl> impl_;
};

/// The daemon executable's main: --listen=PATH / --tcp=PORT,
/// --threads/--active-jobs/--admission/--quota/--send-queue-bytes/
/// --stall-timeout-ms/--idle-timeout-ms/--progress-every, plus the
/// --trace=PATH/--metrics telemetry flags every front-end carries.  Runs
/// until SIGINT/SIGTERM.  Returns the process exit code.
int server_main(int argc, char** argv);

} // namespace bistna::svc
