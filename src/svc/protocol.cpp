#include "svc/protocol.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "store/crc32.hpp"
#include "store/record_io.hpp"
#include "store/records.hpp"

namespace bistna::svc {

namespace {

[[noreturn]] void frame_error(const char* what, const store::record& r) {
    throw configuration_error(std::string("service frame: ") + what + " (type " +
                              std::to_string(static_cast<unsigned>(r.type)) + ")");
}

void expect(const store::record& r, store::record_type type, const char* what) {
    if (r.type != type) {
        frame_error(what, r);
    }
}

store::record json_record(store::record_type type, const json_value& value) {
    const std::string text = to_json(value);
    return store::record{type,
                         std::vector<std::uint8_t>(text.begin(), text.end())};
}

json_value parse_control(const store::record& r, const char* context) {
    return parse_json(std::string_view(reinterpret_cast<const char*>(r.payload.data()),
                                       r.payload.size()),
                      context);
}

json_value number(double v) {
    json_value n;
    n.type = json_value::kind::number;
    n.num = v;
    return n;
}

json_value text(std::string s) {
    json_value v;
    v.type = json_value::kind::string;
    v.str = std::move(s);
    return v;
}

/// u64s travel as JSON numbers; the doubles are exact below 2^53, which
/// covers every id/count the protocol carries (the strict reader rejects
/// anything larger rather than rounding it).
std::uint64_t get_u64(const json_value& object, const char* key, const char* context) {
    const json_value* v = object.find(key);
    if (v == nullptr || v->type != json_value::kind::number || !(v->num >= 0.0) ||
        v->num != std::floor(v->num) || v->num >= 9.007199254740992e15) {
        throw configuration_error(std::string(context) + ": field \"" + key +
                                  "\" must be a non-negative integer below 2^53");
    }
    return static_cast<std::uint64_t>(v->num);
}

std::string get_string(const json_value& object, const char* key, const char* context) {
    const json_value* v = object.find(key);
    if (v == nullptr || v->type != json_value::kind::string) {
        throw configuration_error(std::string(context) + ": field \"" + key +
                                  "\" must be a string");
    }
    return v->str;
}

} // namespace

const char* error_code_name(error_code code) noexcept {
    switch (code) {
    case error_code::bad_frame: return "bad_frame";
    case error_code::bad_request: return "bad_request";
    case error_code::overloaded: return "overloaded";
    case error_code::slow_reader: return "slow_reader";
    case error_code::cancelled: return "cancelled";
    case error_code::idle_timeout: return "idle_timeout";
    case error_code::shutdown: return "shutdown";
    case error_code::internal: return "internal";
    }
    return "internal";
}

error_code error_code_from_name(std::string_view name) {
    for (const error_code code :
         {error_code::bad_frame, error_code::bad_request, error_code::overloaded,
          error_code::slow_reader, error_code::cancelled, error_code::idle_timeout,
          error_code::shutdown, error_code::internal}) {
        if (name == error_code_name(code)) {
            return code;
        }
    }
    throw configuration_error("service frame: unknown error code \"" +
                              std::string(name) + "\"");
}

// --- encoders --------------------------------------------------------------

store::record encode(const hello_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("protocol", number(static_cast<double>(f.protocol)));
    root.members.emplace_back("server", text(f.server));
    return json_record(store::record_type::svc_hello, root);
}

store::record encode(const submit_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("request", number(static_cast<double>(f.request)));
    // The manifest nests as a JSON object -- reparsed here so the frame is
    // one well-formed document, and decoded by the very parser the shard
    // path loads lot files with (one schema, shared verbatim).
    root.members.emplace_back("manifest",
                              parse_json(f.manifest.to_json(), "manifest JSON"));
    return json_record(store::record_type::svc_submit, root);
}

store::record encode(const progress_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("request", number(static_cast<double>(f.request)));
    root.members.emplace_back("completed", number(static_cast<double>(f.completed)));
    root.members.emplace_back("total", number(static_cast<double>(f.total)));
    return json_record(store::record_type::svc_progress, root);
}

store::record encode(const error_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("request", number(static_cast<double>(f.request)));
    root.members.emplace_back("code", text(error_code_name(f.code)));
    root.members.emplace_back("message", text(f.message));
    if (f.offset) {
        root.members.emplace_back("offset", number(static_cast<double>(*f.offset)));
    }
    return json_record(store::record_type::svc_error, root);
}

store::record encode(const cancel_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("request", number(static_cast<double>(f.request)));
    return json_record(store::record_type::svc_cancel, root);
}

store::record encode(const done_frame& f) {
    json_value root;
    root.type = json_value::kind::object;
    root.members.emplace_back("request", number(static_cast<double>(f.request)));
    root.members.emplace_back("units", number(static_cast<double>(f.units)));
    return json_record(store::record_type::svc_done, root);
}

store::record encode(const result_frame& f) {
    store::byte_writer w;
    w.u64(f.request);
    w.u64(f.unit);
    w.u16(static_cast<std::uint16_t>(f.record.type));
    w.u16(0); // reserved
    w.bytes(f.record.payload.data(), f.record.payload.size());
    return store::record{store::record_type::svc_result, w.take()};
}

std::vector<std::uint8_t> wire_bytes(const store::record& r) {
    return store::encode_frame(r.type, r.payload);
}

// --- decoders --------------------------------------------------------------

hello_frame decode_hello(const store::record& r) {
    expect(r, store::record_type::svc_hello, "expected hello");
    const json_value root = parse_control(r, "hello JSON");
    hello_frame f;
    f.protocol = static_cast<std::uint32_t>(get_u64(root, "protocol", "hello"));
    f.server = get_string(root, "server", "hello");
    return f;
}

submit_frame decode_submit(const store::record& r) {
    expect(r, store::record_type::svc_submit, "expected submit");
    const json_value root = parse_control(r, "submit JSON");
    submit_frame f;
    f.request = get_u64(root, "request", "submit");
    const json_value* manifest = root.find("manifest");
    if (manifest == nullptr) {
        throw configuration_error("submit: missing \"manifest\" object");
    }
    f.manifest = shard::lot_manifest::from_value(*manifest);
    return f;
}

progress_frame decode_progress(const store::record& r) {
    expect(r, store::record_type::svc_progress, "expected progress");
    const json_value root = parse_control(r, "progress JSON");
    progress_frame f;
    f.request = get_u64(root, "request", "progress");
    f.completed = get_u64(root, "completed", "progress");
    f.total = get_u64(root, "total", "progress");
    return f;
}

error_frame decode_error(const store::record& r) {
    expect(r, store::record_type::svc_error, "expected error");
    const json_value root = parse_control(r, "error JSON");
    error_frame f;
    f.request = get_u64(root, "request", "error");
    f.code = error_code_from_name(get_string(root, "code", "error"));
    f.message = get_string(root, "message", "error");
    if (root.find("offset") != nullptr) {
        f.offset = get_u64(root, "offset", "error");
    }
    return f;
}

cancel_frame decode_cancel(const store::record& r) {
    expect(r, store::record_type::svc_cancel, "expected cancel");
    const json_value root = parse_control(r, "cancel JSON");
    cancel_frame f;
    f.request = get_u64(root, "request", "cancel");
    return f;
}

done_frame decode_done(const store::record& r) {
    expect(r, store::record_type::svc_done, "expected done");
    const json_value root = parse_control(r, "done JSON");
    done_frame f;
    f.request = get_u64(root, "request", "done");
    f.units = get_u64(root, "units", "done");
    return f;
}

result_frame decode_result(const store::record& r) {
    expect(r, store::record_type::svc_result, "expected result");
    store::byte_reader reader(r.payload);
    result_frame f;
    f.request = reader.u64();
    f.unit = reader.u64();
    f.record.type = static_cast<store::record_type>(reader.u16());
    reader.u16(); // reserved
    f.record.payload.assign(r.payload.begin() + 20, r.payload.end());
    return f;
}

// --- incremental frame decoder ---------------------------------------------

void frame_decoder::feed(std::span<const std::uint8_t> bytes) {
    // Compact lazily: once the parsed prefix dominates the buffer, slide
    // the unparsed tail down so memory stays bounded by one frame.
    if (head_ > 4096 && head_ > buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<store::record> frame_decoder::next() {
    const std::size_t available = buffer_.size() - head_;
    if (available < store::frame_header_size) {
        return std::nullopt;
    }
    const std::uint8_t* frame = buffer_.data() + head_;
    std::uint16_t type_raw = 0;
    std::uint32_t length = 0;
    std::memcpy(&type_raw, frame + 0, 2);
    std::memcpy(&length, frame + 4, 4);
    if (length > max_payload_) {
        throw serialization_error("service frame: implausible payload length " +
                                      std::to_string(length) + " (cap " +
                                      std::to_string(max_payload_) + ")",
                                  consumed_ + 4);
    }
    const std::size_t total =
        store::frame_header_size + length + store::frame_trailer_size;
    if (available < total) {
        return std::nullopt;
    }
    std::uint32_t stated_crc = 0;
    std::memcpy(&stated_crc, frame + store::frame_header_size + length, 4);
    const std::uint32_t actual_crc =
        store::crc32(frame, store::frame_header_size + length);
    if (stated_crc != actual_crc) {
        throw serialization_error("service frame: CRC mismatch", consumed_);
    }
    store::record r;
    r.type = static_cast<store::record_type>(type_raw);
    r.payload.assign(frame + store::frame_header_size,
                     frame + store::frame_header_size + length);
    head_ += total;
    consumed_ += total;
    return r;
}

} // namespace bistna::svc
