// Behavioral model of the fully differential folded-cascode amplifier
// (paper Fig. 3).
//
// Only aggregate parameters matter to a sampled-data circuit: DC gain
// (charge-transfer leak / gain error), settling accuracy (GBW-limited
// incomplete settling), output swing (clipping), input-referred offset and
// per-sample noise, plus a weak output-stage nonlinearity that sets the
// harmonic floor the lab measures in Fig. 8b.
#pragma once

namespace bistna::sc {

struct opamp_params {
    double dc_gain_db = 72.0;       ///< open-loop DC gain
    double settling_error = 2.0e-5; ///< unsettled fraction of each charge transfer
    double output_swing = 1.4;      ///< output clips at +/- this many volts
    double offset_volts = 0.0;      ///< input-referred offset
    double noise_rms = 40.0e-6;     ///< input-referred noise per transfer (volts rms)
    double hd2 = 0.0;               ///< quadratic output nonlinearity coefficient (1/V)
    double hd3 = 0.0;               ///< cubic output nonlinearity coefficient (1/V^2)

    /// A perfect amplifier (infinite-gain behaviour, no noise, no clipping).
    static opamp_params ideal();

    /// Defaults representative of the paper's 0.35 um folded-cascode design,
    /// calibrated so the generator lands at the measured SFDR/THD
    /// (see EXPERIMENTS.md, Fig. 8b).
    static opamp_params folded_cascode_035();

    double dc_gain_linear() const;

    /// A uniformly degraded copy of this amplifier (the diag fault model's
    /// "dying op-amp" axis): severity 0 is this instance; severity 1 loses
    /// 40 dB of DC gain, settles 2 % short on every transfer and picks up
    /// a strong cubic compression.  The three effects move together because
    /// they share a physical cause (lost bias headroom / slew current).
    opamp_params degraded(double severity) const;

    /// Apply the static output nonlinearity to a settled output voltage.
    double apply_nonlinearity(double v) const;

    /// Clip to the output swing.
    double clip(double v) const;
};

} // namespace bistna::sc
