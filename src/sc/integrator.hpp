// Parasitic-insensitive switched-capacitor integrator.
//
// One charge-transfer event: every input branch dumps the charge it sampled
// (cap * voltage) into the virtual ground; charge conservation on the
// feedback cap, with an optional switched damping cap, gives
//
//   v_new * (C_fb + C_damp) = C_fb * v_old - sum_i (C_i * V_i)
//
// Non-idealities from the behavioral op-amp model: finite-gain charge
// transfer error, incomplete settling, input-referred offset and noise,
// output clipping and a weak static nonlinearity.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "sc/opamp.hpp"

namespace bistna::sc {

/// One sampled input branch of an SC integrator.
struct branch {
    double cap = 0.0;     ///< sampled capacitor value (normalized units)
    double voltage = 0.0; ///< voltage the cap sampled during phase 1
};

class sc_integrator {
public:
    /// feedback_cap > 0; damping_cap >= 0 (0 = lossless integrator).
    sc_integrator(double feedback_cap, double damping_cap, opamp_params opamp,
                  bistna::rng noise_rng = bistna::rng(0));

    /// Execute one charge-transfer event and return the new output voltage.
    double transfer(std::span<const branch> branches);

    /// Convenience for a single input branch.
    double transfer(branch input) { return transfer(std::span<const branch>(&input, 1)); }

    double output() const noexcept { return state_; }
    void reset(double v0 = 0.0) noexcept { state_ = v0; }

    double feedback_cap() const noexcept { return feedback_cap_; }
    double damping_cap() const noexcept { return damping_cap_; }
    const opamp_params& opamp() const noexcept { return opamp_; }

    /// Count of transfers where the output hit the swing limit.
    std::size_t clip_events() const noexcept { return clip_events_; }

private:
    double feedback_cap_;
    double damping_cap_;
    opamp_params opamp_;
    bistna::rng rng_;
    double state_ = 0.0;
    std::size_t clip_events_ = 0;
};

} // namespace bistna::sc
