#include "sc/biquad.hpp"

#include <array>

#include "common/error.hpp"

namespace bistna::sc {

sc_biquad::sc_biquad(biquad_caps caps, opamp_params opamp1, opamp_params opamp2,
                     bistna::rng noise_rng)
    : caps_(caps),
      integrator1_(caps.b, caps.f, opamp1, noise_rng.spawn()),
      integrator2_(caps.d, 0.0, opamp2, noise_rng.spawn()) {
    BISTNA_EXPECTS(caps.a > 0 && caps.b > 0 && caps.c > 0 && caps.d > 0 && caps.f >= 0,
                   "biquad capacitors must be positive (F may be zero)");
}

double sc_biquad::step(double input_voltage, double input_cap) {
    // Phase 2 of cycle n: op-amp 1 receives the input-array charge and the
    // resonator feedback sampled from v2[n-1].
    const std::array<branch, 2> into1 = {
        branch{caps_.cin_scale * input_cap, input_voltage},
        branch{caps_.a, integrator2_.output()},
    };
    const double v1_new = integrator1_.transfer(into1);

    // Phase 1 of cycle n+1: op-amp 2 integrates v1[n] non-inverting
    // (the switch phasing flips the charge polarity, hence -C).
    const branch into2{-caps_.c, v1_new};
    return integrator2_.transfer(into2);
}

void sc_biquad::reset() {
    integrator1_.reset();
    integrator2_.reset();
}

std::size_t sc_biquad::clip_events() const noexcept {
    return integrator1_.clip_events() + integrator2_.clip_events();
}

} // namespace bistna::sc
