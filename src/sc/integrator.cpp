#include "sc/integrator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace bistna::sc {

sc_integrator::sc_integrator(double feedback_cap, double damping_cap, opamp_params opamp,
                             bistna::rng noise_rng)
    : feedback_cap_(feedback_cap), damping_cap_(damping_cap), opamp_(opamp),
      rng_(noise_rng) {
    BISTNA_EXPECTS(feedback_cap > 0.0, "feedback capacitor must be positive");
    BISTNA_EXPECTS(damping_cap >= 0.0, "damping capacitor must be non-negative");
}

double sc_integrator::transfer(std::span<const branch> branches) {
    double injected_charge = 0.0;
    double total_input_cap = 0.0;
    for (const branch& b : branches) {
        injected_charge += b.cap * b.voltage;
        total_input_cap += std::abs(b.cap);
    }

    // Input-referred offset and sampled kT/C-style noise are transferred
    // through the same capacitor divider as the signal.
    const double disturbance = opamp_.offset_volts +
                               (opamp_.noise_rms > 0.0 ? rng_.gaussian(0.0, opamp_.noise_rms)
                                                       : 0.0);
    injected_charge += (total_input_cap + feedback_cap_) * -disturbance;

    // Ideal charge conservation at the virtual ground.
    const double total_feedback = feedback_cap_ + damping_cap_;
    const double v_ideal = (feedback_cap_ * state_ - injected_charge) / total_feedback;

    // Finite DC gain: a fraction of the charge fails to transfer because the
    // virtual ground sits at -v_out/A instead of 0.  First-order model:
    // the step toward the ideal value is scaled by 1/(1 + loading/A).
    const double gain = opamp_.dc_gain_linear();
    const double loading = (total_input_cap + total_feedback) / total_feedback;
    const double gain_error = loading / gain;

    // Incomplete settling leaves a further fraction of the step behind.
    const double step_scale = (1.0 - gain_error) * (1.0 - opamp_.settling_error);

    double v_new = state_ + (v_ideal - state_) * step_scale;

    // Static output-stage nonlinearity and swing limit.
    v_new = opamp_.apply_nonlinearity(v_new);
    const double clipped = opamp_.clip(v_new);
    if (clipped != v_new) {
        ++clip_events_;
    }
    state_ = clipped;
    return state_;
}

} // namespace bistna::sc
