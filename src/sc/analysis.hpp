// z-domain analysis and design of the two-integrator-loop biquad.
//
// Lets tests verify the Fig. 2 structure against Table I, and provides the
// inverse mapping (specs -> capacitor ratios) used by bench_table1_caps to
// re-derive the paper's capacitor values from the f_gen/16 design intent.
#pragma once

#include <complex>

#include "sc/biquad.hpp"

namespace bistna::sc {

/// Ideal (linear, infinite-gain) transfer function u -> v2 of sc_biquad:
///   H(z) = -delta*beta / [ (1 - z^-1)(1 - alpha z^-1) + delta*gamma z^-1 ]
/// with alpha = B/(B+F), beta = cin_scale/(B+F), gamma = A/(B+F),
/// delta = C/D.  `input_cap` defaults to the array's largest value (1).
std::complex<double> biquad_response(const biquad_caps& caps, double normalized_frequency,
                                     double input_cap = 1.0);

/// Ideal transfer to the band-pass node v1.
std::complex<double> biquad_response_v1(const biquad_caps& caps, double normalized_frequency,
                                        double input_cap = 1.0);

/// Pole/peak characterization of the biquad.
struct resonance_info {
    double pole_radius = 0.0;
    double pole_angle = 0.0;       ///< radians per sample
    double peak_frequency = 0.0;   ///< normalized f/fs of |H| maximum
    double peak_gain = 0.0;        ///< |H| at the peak
    double gain_at_16th = 0.0;     ///< |H| at f = fs/16 (the generator fundamental)
    double q_factor = 0.0;         ///< from pole radius/angle
};

resonance_info analyze_biquad(const biquad_caps& caps);

/// Design specs for the smoothing biquad.
struct biquad_design_spec {
    double normalized_f0 = 1.0 / 16.0; ///< resonance at f_gen/16
    double pole_radius = 0.9625;       ///< Q ~ 5 (matches Table I)
    double passband_gain = 2.0;        ///< measured amplitude = 2 (V_A+ - V_A-)
    double total_cap_scale = 13.763;   ///< B + F normalization (area budget)
};

/// Derive capacitor ratios from specs (C fixed to 1, double-sampled input).
/// bench_table1_caps compares this against the paper's Table I.
biquad_caps design_biquad(const biquad_design_spec& spec);

} // namespace bistna::sc
