#include "sc/analysis.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::sc {

namespace {

struct loop_coeffs {
    double alpha;
    double beta;
    double gamma;
    double delta;
};

loop_coeffs coeffs_of(const biquad_caps& caps, double input_cap) {
    const double bf = caps.b + caps.f;
    return loop_coeffs{caps.b / bf, caps.cin_scale * input_cap / bf, caps.a / bf,
                       caps.c / caps.d};
}

std::complex<double> denominator(const loop_coeffs& k, std::complex<double> zinv) {
    return (1.0 - zinv) * (1.0 - k.alpha * zinv) + k.delta * k.gamma * zinv;
}

} // namespace

std::complex<double> biquad_response(const biquad_caps& caps, double normalized_frequency,
                                     double input_cap) {
    const auto k = coeffs_of(caps, input_cap);
    const double theta = two_pi * normalized_frequency;
    const std::complex<double> zinv(std::cos(theta), -std::sin(theta));
    return -k.delta * k.beta / denominator(k, zinv);
}

std::complex<double> biquad_response_v1(const biquad_caps& caps, double normalized_frequency,
                                        double input_cap) {
    const auto k = coeffs_of(caps, input_cap);
    const double theta = two_pi * normalized_frequency;
    const std::complex<double> zinv(std::cos(theta), -std::sin(theta));
    // v1 = (1 - z^-1) v2 / delta
    return biquad_response(caps, normalized_frequency, input_cap) * (1.0 - zinv) / k.delta;
}

resonance_info analyze_biquad(const biquad_caps& caps) {
    const auto k = coeffs_of(caps, 1.0);
    // Characteristic polynomial z^2 - (1 + alpha - delta*gamma) z + alpha.
    const double b1 = 1.0 + k.alpha - k.delta * k.gamma;
    const double b0 = k.alpha;
    const double discriminant = b1 * b1 - 4.0 * b0;
    BISTNA_EXPECTS(discriminant < 0.0, "biquad poles are real; not a resonator");

    resonance_info info;
    info.pole_radius = std::sqrt(b0);
    info.pole_angle = std::atan2(std::sqrt(-discriminant) / 2.0, b1 / 2.0);
    // Q of the equivalent continuous resonator: Q = -theta / (2 ln r).
    info.q_factor = info.pole_angle / (-2.0 * std::log(info.pole_radius));

    // Numeric peak search around the pole angle.
    double best_gain = 0.0;
    double best_freq = 0.0;
    const double center = info.pole_angle / two_pi;
    for (int i = -400; i <= 400; ++i) {
        const double f = center * (1.0 + static_cast<double>(i) / 2000.0);
        const double gain = std::abs(biquad_response(caps, f));
        if (gain > best_gain) {
            best_gain = gain;
            best_freq = f;
        }
    }
    info.peak_frequency = best_freq;
    info.peak_gain = best_gain;
    info.gain_at_16th = std::abs(biquad_response(caps, 1.0 / 16.0));
    return info;
}

biquad_caps design_biquad(const biquad_design_spec& spec) {
    BISTNA_EXPECTS(spec.normalized_f0 > 0.0 && spec.normalized_f0 < 0.5,
                   "resonance must lie below Nyquist");
    BISTNA_EXPECTS(spec.pole_radius > 0.0 && spec.pole_radius < 1.0,
                   "pole radius must be inside the unit circle");
    BISTNA_EXPECTS(spec.passband_gain > 0.0, "passband gain must be positive");
    BISTNA_EXPECTS(spec.total_cap_scale > 0.0, "cap scale must be positive");

    const double theta = two_pi * spec.normalized_f0;
    const double r = spec.pole_radius;
    const double s = spec.total_cap_scale; // B + F

    biquad_caps caps;
    caps.c = 1.0;
    caps.cin_scale = 2.0;
    // alpha = B/(B+F) = r^2  ->  B = r^2 (B+F).
    caps.b = r * r * s;
    caps.f = s - caps.b;
    // delta*gamma = 1 + r^2 - 2 r cos(theta); with gamma = A/s, delta = C/D.
    const double dg = 1.0 + r * r - 2.0 * r * std::cos(theta);

    // Passband gain |H(theta)| = delta*beta/|den| = (C/D)(cin_scale/s)/|den|,
    // where |den| depends only on (alpha, delta*gamma), both already fixed.
    const std::complex<double> zinv(std::cos(theta), -std::sin(theta));
    const std::complex<double> den =
        (1.0 - zinv) * (1.0 - (r * r) * zinv) + dg * zinv;
    const double den_mag = std::abs(den);
    // delta = gain*|den|*s/cin_scale -> D = C/delta.
    const double delta = spec.passband_gain * den_mag * s / caps.cin_scale;
    caps.d = caps.c / delta;
    caps.a = dg * s / delta;
    return caps;
}

} // namespace bistna::sc
