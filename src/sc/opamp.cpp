#include "sc/opamp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bistna::sc {

opamp_params opamp_params::ideal() {
    opamp_params p;
    p.dc_gain_db = 400.0; // effectively infinite: gain error ~ 1e-20
    p.settling_error = 0.0;
    p.output_swing = std::numeric_limits<double>::infinity();
    p.offset_volts = 0.0;
    p.noise_rms = 0.0;
    p.hd2 = 0.0;
    p.hd3 = 0.0;
    return p;
}

opamp_params opamp_params::folded_cascode_035() {
    opamp_params p;
    p.dc_gain_db = 72.0;
    p.settling_error = 2.0e-5;
    p.output_swing = 1.4;
    p.offset_volts = 0.0;
    p.noise_rms = 40.0e-6;
    // Weak output-stage compression: calibrated against Fig. 8b
    // (~70 dB SFDR / ~67 dB THD at 1 Vpp output).
    p.hd2 = 7.0e-4;
    p.hd3 = 2.0e-3;
    return p;
}

double opamp_params::dc_gain_linear() const { return std::pow(10.0, dc_gain_db / 20.0); }

opamp_params opamp_params::degraded(double severity) const {
    opamp_params out = *this;
    out.dc_gain_db -= 40.0 * severity;
    out.settling_error += 2.0e-2 * severity;
    out.hd3 += 0.3 * severity;
    return out;
}

double opamp_params::apply_nonlinearity(double v) const {
    if (hd2 == 0.0 && hd3 == 0.0) {
        return v;
    }
    return v + hd2 * v * v + hd3 * v * v * v;
}

double opamp_params::clip(double v) const {
    return std::clamp(v, -output_swing, output_swing);
}

} // namespace bistna::sc
