// Two-integrator-loop switched-capacitor biquad (paper Fig. 2a).
//
// Topology recovered from Table I (see DESIGN.md and analysis.hpp):
//   - op-amp 1: inverting damped integrator, integrating cap B, switched
//     damping cap F, inputs: the time-variant array CI(t) and cap A
//     sampling the op-amp-2 output (the resonator feedback);
//   - op-amp 2: non-inverting lossless integrator, integrating cap D,
//     input cap C sampling the op-amp-1 output in the same cycle.
//
// Per generator-clock cycle n (single-ended equivalent of the fully
// differential circuit):
//   v1[n] = [ B*v1[n-1] - Cin(n)*u(n) - A*v2[n-1] ] / (B + F)
//   v2[n] = v2[n-1] + (C/D) * v1[n]
//
// With the Table I values the poles sit at angle 2*pi/16.07 and radius
// 0.962 (Q ~ 5), i.e. a resonant low-pass peaked at f_gen/16 -- exactly the
// smoothing filter the 16-step quantized sine needs.
#pragma once

#include <complex>

#include "common/rng.hpp"
#include "sc/integrator.hpp"
#include "sc/opamp.hpp"

namespace bistna::sc {

/// Normalized capacitor set (paper Table I).
struct biquad_caps {
    double a = 5.194;
    double b = 12.749;
    double c = 1.0;
    double d = 2.574;
    double f = 1.014;
    /// The input branch samples on both clock phases (double sampling), so
    /// each cycle transfers twice the single-phase charge; this reproduces
    /// the measured passband gain of 2 w.r.t. V_A+ - V_A- (Fig. 8a).
    double cin_scale = 2.0;

    /// Paper Table I values (the defaults above).
    static biquad_caps table1() { return biquad_caps{}; }
};

class sc_biquad {
public:
    sc_biquad(biquad_caps caps, opamp_params opamp1, opamp_params opamp2,
              bistna::rng noise_rng = bistna::rng(0));

    /// One generator-clock cycle: the input branch dumps charge
    /// cin_scale * input_cap * input_voltage; returns the low-pass output v2.
    double step(double input_voltage, double input_cap);

    double v1() const noexcept { return integrator1_.output(); }
    double v2() const noexcept { return integrator2_.output(); }
    void reset();

    const biquad_caps& caps() const noexcept { return caps_; }
    std::size_t clip_events() const noexcept;

private:
    biquad_caps caps_;
    sc_integrator integrator1_; ///< damped, inverting (B, F)
    sc_integrator integrator2_; ///< lossless, non-inverting (D)
};

} // namespace bistna::sc
