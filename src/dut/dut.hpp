// Device-under-test interface and the standard implementations.
//
// A DUT is a streaming component on the master-clock grid: prepare(fs)
// discretizes it, process(u) advances one sample.  Each DUT also exposes
// the *ideal linear response* of its drawn (perturbed) component values --
// the ground truth the Fig. 10 benches compare the measured Bode points
// against.
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>

#include "common/error.hpp"
#include "dut/state_space.hpp"
#include "dut/transfer_function.hpp"

namespace bistna::dut {

class device_under_test {
public:
    virtual ~device_under_test() = default;

    /// Discretize / configure for a sample rate.  Must precede process().
    virtual void prepare(double sample_rate_hz) = 0;

    /// One master-clock sample through the device.
    virtual double process(double input) = 0;

    /// A whole record through the device (output[i] = the process() result
    /// for input[i]; output.size() must equal input.size()).  Semantically
    /// identical to calling process() per sample -- the default does exactly
    /// that -- but overridable so the board's DUT-filtering stage runs
    /// without per-sample virtual dispatch (see linear_dut).
    virtual void process_block(std::span<const double> input, std::span<double> output) {
        BISTNA_EXPECTS(input.size() == output.size(), "block output must match input length");
        for (std::size_t i = 0; i < input.size(); ++i) {
            output[i] = process(input[i]);
        }
    }

    /// Zero all internal state.
    virtual void reset() = 0;

    /// Linear small-signal response of this instance at a frequency.
    virtual std::complex<double> ideal_response(double frequency_hz) const = 0;

    virtual std::string description() const = 0;

    /// The prepared state-space realization backing this DUT, or nullptr
    /// when the device is not a plain linear realization.  Non-null lets
    /// the sweep engine run whole lane groups through one
    /// state_space_bank lockstep pass instead of per-lane process_block
    /// calls; callers fall back to process_block when this is null.
    virtual state_space* linear_realization() noexcept { return nullptr; }
};

/// Straight wire (the calibration path of Fig. 1).
class bypass_dut final : public device_under_test {
public:
    void prepare(double) override {}
    double process(double input) override { return input; }
    void reset() override {}
    std::complex<double> ideal_response(double) const override { return {1.0, 0.0}; }
    std::string description() const override { return "bypass (calibration path)"; }
};

/// Any linear continuous-time transfer function, simulated exactly via ZOH.
class linear_dut final : public device_under_test {
public:
    linear_dut(transfer_function tf, std::string name);

    void prepare(double sample_rate_hz) override;
    double process(double input) override;
    void process_block(std::span<const double> input, std::span<double> output) override;
    void reset() override;
    std::complex<double> ideal_response(double frequency_hz) const override;
    std::string description() const override { return name_; }
    state_space* linear_realization() noexcept override { return &realization_; }

    const transfer_function& tf() const noexcept { return tf_; }

private:
    transfer_function tf_;
    state_space realization_;
    std::string name_;
};

} // namespace bistna::dut
