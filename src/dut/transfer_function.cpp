#include "dut/transfer_function.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace bistna::dut {

std::complex<double> eval_poly(const poly& p, std::complex<double> s) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t i = p.size(); i-- > 0;) {
        acc = acc * s + p[i];
    }
    return acc;
}

poly multiply(const poly& a, const poly& b) {
    BISTNA_EXPECTS(!a.empty() && !b.empty(), "polynomial product of empty polynomial");
    poly out(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j) {
            out[i + j] += a[i] * b[j];
        }
    }
    return out;
}

transfer_function::transfer_function(poly numerator, poly denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
    BISTNA_EXPECTS(!num_.empty() && !den_.empty(), "transfer function polynomials empty");
    BISTNA_EXPECTS(num_.size() <= den_.size(), "transfer function must be proper");
    BISTNA_EXPECTS(den_.back() != 0.0, "denominator leading coefficient is zero");
}

std::complex<double> transfer_function::response(double frequency_hz) const {
    const std::complex<double> s(0.0, two_pi * frequency_hz);
    return eval_poly(num_, s) / eval_poly(den_, s);
}

double transfer_function::magnitude_db(double frequency_hz) const {
    return amplitude_ratio_to_db(std::abs(response(frequency_hz)));
}

double transfer_function::phase_rad(double frequency_hz) const {
    return std::arg(response(frequency_hz));
}

double transfer_function::dc_gain() const { return num_.front() / den_.front(); }

double transfer_function::cutoff_frequency(double lo_hz, double hi_hz) const {
    BISTNA_EXPECTS(lo_hz > 0.0 && hi_hz > lo_hz, "invalid cutoff search bracket");
    const double target = std::abs(dc_gain()) / std::sqrt(2.0);
    auto above = [&](double f) { return std::abs(response(f)) > target; };
    if (!above(lo_hz) || above(hi_hz)) {
        throw configuration_error("cutoff_frequency: -3 dB point not bracketed");
    }
    double lo = lo_hz;
    double hi = hi_hz;
    for (int i = 0; i < 200; ++i) {
        const double mid = std::sqrt(lo * hi); // geometric bisection
        (above(mid) ? lo : hi) = mid;
    }
    return std::sqrt(lo * hi);
}

transfer_function transfer_function::operator*(const transfer_function& other) const {
    return transfer_function(multiply(num_, other.num_), multiply(den_, other.den_));
}

} // namespace bistna::dut
