// Continuous-time rational transfer functions H(s) = num(s)/den(s).
//
// Ground truth for every DUT: the network analyzer's measured Bode points
// (Fig. 10a/b) are compared against H(j 2 pi f) of the *same perturbed
// component values* the simulated die carries.
#pragma once

#include <complex>
#include <vector>

namespace bistna::dut {

/// Polynomial coefficients in ascending powers of s: c[0] + c[1] s + ...
using poly = std::vector<double>;

class transfer_function {
public:
    transfer_function() = default;
    transfer_function(poly numerator, poly denominator);

    const poly& numerator() const noexcept { return num_; }
    const poly& denominator() const noexcept { return den_; }

    /// Order of the denominator polynomial.
    std::size_t order() const noexcept { return den_.empty() ? 0 : den_.size() - 1; }

    /// H(j 2 pi f).
    std::complex<double> response(double frequency_hz) const;

    /// |H| in dB at a frequency.
    double magnitude_db(double frequency_hz) const;

    /// Phase in radians at a frequency.
    double phase_rad(double frequency_hz) const;

    /// DC gain H(0).
    double dc_gain() const;

    /// -3 dB frequency found by bisection between [lo, hi] (for low-pass
    /// responses); throws configuration_error if not bracketed.
    double cutoff_frequency(double lo_hz, double hi_hz) const;

    /// Cascade: this * other.
    transfer_function operator*(const transfer_function& other) const;

private:
    poly num_{1.0};
    poly den_{1.0};
};

/// Evaluate a polynomial at a complex point (Horner).
std::complex<double> eval_poly(const poly& p, std::complex<double> s);

/// Multiply two polynomials.
poly multiply(const poly& a, const poly& b);

} // namespace bistna::dut
