#include "dut/nonlinear.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dut/filters.hpp"

namespace bistna::dut {

polynomial_nonlinearity::polynomial_nonlinearity(double a2, double a3, double clip_level)
    : a2_(a2), a3_(a3), clip_level_(clip_level) {}

double polynomial_nonlinearity::apply(double x) const noexcept {
    double y = x + a2_ * x * x + a3_ * x * x * x;
    if (clip_level_ > 0.0) {
        y = std::clamp(y, -clip_level_, clip_level_);
    }
    return y;
}

polynomial_nonlinearity polynomial_nonlinearity::for_target_hd(double amplitude, double hd2_db,
                                                               double hd3_db) {
    BISTNA_EXPECTS(amplitude > 0.0, "operating amplitude must be positive");
    const double hd2 = db_to_amplitude_ratio(hd2_db);
    const double hd3 = db_to_amplitude_ratio(hd3_db);
    // Small-distortion single-tone relations for y = x + a2 x^2 + a3 x^3:
    // A2/A1 = a2*A/2, A3/A1 = a3*A^2/4.
    const double a2 = 2.0 * hd2 / amplitude;
    const double a3 = 4.0 * hd3 / (amplitude * amplitude);
    return polynomial_nonlinearity(a2, a3);
}

nonlinear_dut::nonlinear_dut(std::unique_ptr<device_under_test> core,
                             polynomial_nonlinearity input_poly,
                             polynomial_nonlinearity output_poly)
    : core_(std::move(core)), input_poly_(input_poly), output_poly_(output_poly) {
    BISTNA_EXPECTS(core_ != nullptr, "nonlinear_dut requires a core DUT");
}

void nonlinear_dut::prepare(double sample_rate_hz) { core_->prepare(sample_rate_hz); }

double nonlinear_dut::process(double input) {
    return output_poly_.apply(core_->process(input_poly_.apply(input)));
}

void nonlinear_dut::reset() { core_->reset(); }

std::complex<double> nonlinear_dut::ideal_response(double frequency_hz) const {
    return core_->ideal_response(frequency_hz);
}

std::string nonlinear_dut::description() const {
    return core_->description() + " + weak polynomial nonlinearity";
}

std::unique_ptr<device_under_test> make_paper_dut_with_distortion(double tolerance_sigma,
                                                                  std::uint64_t seed) {
    auto core = make_paper_dut(tolerance_sigma, seed);
    // Operating point of Fig. 10c: 800 mVpp (0.4 V amplitude) at 1.6 kHz;
    // the filter attenuates the fundamental to ~0.146 V at its output.
    const double input_amplitude = 0.4;
    const double output_amplitude =
        input_amplitude * std::abs(core->ideal_response(1600.0));
    const auto output_stage =
        polynomial_nonlinearity::for_target_hd(output_amplitude, -56.0, -62.0);
    return std::make_unique<nonlinear_dut>(std::move(core), polynomial_nonlinearity(0.0, 0.0),
                                           output_stage);
}

} // namespace bistna::dut
