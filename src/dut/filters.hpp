// Active-RC filter designs with component-level tolerance modeling.
//
// The demonstrator board's DUT is "an active-RC 2nd-order low-pass filter
// with a cut-off frequency of 1 kHz" (paper section IV.C).  We realize it
// as a unity-gain Sallen-Key Butterworth stage built from discrete Rs and
// Cs; drawing each component from its tolerance band moves the actual
// cutoff/Q exactly like a populated board would, and the drawn values feed
// both the simulation and the ground-truth response.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dut/dut.hpp"
#include "dut/transfer_function.hpp"

namespace bistna::dut {

/// Ideal 2nd-order Butterworth low-pass prototype:
/// H(s) = gain * w0^2 / (s^2 + sqrt(2) w0 s + w0^2).
transfer_function butterworth_lowpass2(double cutoff_hz, double gain = 1.0);

/// Generic 2nd-order low-pass: H(s) = gain * w0^2 / (s^2 + (w0/q) s + w0^2).
transfer_function lowpass2(double cutoff_hz, double q, double gain = 1.0);

/// Unity-gain Sallen-Key low-pass component set.
struct sallen_key_components {
    double r1 = 0.0; ///< ohms
    double r2 = 0.0; ///< ohms
    double c1 = 0.0; ///< farads (positive-feedback cap)
    double c2 = 0.0; ///< farads (ground cap)
};

/// Nominal components for a given cutoff and Q (equal-R design,
/// C1/C2 = 4 Q^2, R around 10 kOhm).
sallen_key_components design_sallen_key(double cutoff_hz, double q);

/// Draw each component from a Gaussian tolerance band (sigma relative).
sallen_key_components perturb(const sallen_key_components& nominal, double tolerance_sigma,
                              bistna::rng& generator);

/// H(s) of the unity-gain Sallen-Key stage:
/// H = 1 / (s^2 R1 R2 C1 C2 + s C2 (R1 + R2) + 1).
transfer_function sallen_key_lowpass(const sallen_key_components& components);

/// Multiple-feedback (inverting) low-pass:
/// H = -(R2/R1) / (1 + s C1 R2 (R3/R1 + R3/R2 + 1) + s^2 C1 C2 R2 R3).
struct mfb_components {
    double r1 = 0.0, r2 = 0.0, r3 = 0.0;
    double c1 = 0.0, c2 = 0.0;
};
transfer_function mfb_lowpass(const mfb_components& components);
mfb_components design_mfb(double cutoff_hz, double q, double gain_abs);

/// Tow-Thomas biquad band-pass (an extra DUT for the examples):
/// H_bp(s) = (w0/q) s * gain / (s^2 + (w0/q) s + w0^2).
transfer_function tow_thomas_bandpass(double center_hz, double q, double gain = 1.0);

/// The paper's DUT: 1 kHz Butterworth Sallen-Key with board tolerances.
/// `tolerance_sigma` ~ 0.01 for 1 % components.  Returns a linear DUT whose
/// ideal_response reflects the *drawn* component values.
std::unique_ptr<device_under_test> make_paper_dut(double tolerance_sigma = 0.01,
                                                  std::uint64_t seed = 7);

} // namespace bistna::dut
