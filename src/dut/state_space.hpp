// Continuous-time state space x' = Ax + Bu, y = Cx + Du, discretized
// *exactly* under the zero-order-hold assumption.
//
// The stimulus reaching the DUT on the demonstrator board is a staircase
// updated at f_gen = f_eva/6 and therefore piecewise-constant over every
// f_eva sample interval, so the matrix-exponential ZOH discretization
// reproduces the continuous-time response sample-exactly at the evaluator's
// sampling instants (DESIGN.md section 2).
#pragma once

#include <span>

#include "common/arena.hpp"
#include "dut/transfer_function.hpp"
#include "linalg/matrix.hpp"

namespace bistna::dut {

class state_space_bank;

class state_space {
public:
    /// SISO system; A: n x n, B: n x 1, C: 1 x n, D: 1 x 1.
    state_space(linalg::matrix a, linalg::matrix b, linalg::matrix c, double d);

    /// Build the controllable canonical realization of a transfer function.
    static state_space from_transfer_function(const transfer_function& tf);

    /// Discretize at a sample rate; must be called before step().
    void prepare(double sample_rate_hz);
    bool prepared() const noexcept { return prepared_; }

    /// Advance one sample with ZOH input; returns the output *after* the
    /// update (y[n+1] given u[n] held over the interval), matching how the
    /// evaluator samples the settled board signal.
    double step(double input);

    /// step() over a whole record (output.size() == input.size()), sample
    /// for sample bit-identical to the scalar loop but with the per-sample
    /// call and precondition overhead hoisted out -- the board's
    /// DUT-filtering hot path.  Orders 1-4 (every DUT the catalog builds)
    /// run register-resident fast paths; higher orders fall back to the
    /// generic per-sample loop, bit-identically.
    void step_block(std::span<const double> input, std::span<double> output);

    /// Zero the state.
    void reset();

    std::size_t order() const noexcept { return a_.rows(); }
    const linalg::matrix& a() const noexcept { return a_; }

private:
    friend class state_space_bank;

    linalg::matrix a_, b_, c_;
    double d_;
    linalg::matrix ad_, bd_;
    std::vector<double> state_;
    std::vector<double> scratch_; ///< next-state buffer, swapped each step
    bool prepared_ = false;
};

/// Lockstep SoA pass over many prepared realizations of equal order: the
/// DUT-filtering stage of the banked render pipeline.  Lane l advances with
/// exactly the per-lane arithmetic of lanes[l]->step_block (same
/// left-to-right association, no cross-lane math), so every output sample
/// and final state is bit-identical to the scalar pass at any lane count --
/// the bank only swaps the loop order (sample-outer, lane-inner over
/// contiguous coefficient/state lanes) so the compiler can vectorize across
/// lanes, with a runtime AVX2 clone where the toolchain supports it.
///
/// Coefficient/state SoA storage is bump-allocated from the caller's arena,
/// which must outlive the bank and must not be reset while it is in use.
class state_space_bank {
public:
    /// True when the lanes can run the lockstep kernel: at least one lane,
    /// all prepared, equal order, order <= 4 (every DUT the catalog builds).
    static bool compatible(std::span<const state_space* const> lanes) noexcept;

    /// Requires compatible(); lane states are loaded from the lanes here
    /// and written back after every block.
    state_space_bank(std::span<state_space* const> lanes, arena& scratch);

    std::size_t lanes() const noexcept { return n_lanes_; }
    std::size_t order() const noexcept { return order_; }

    /// Lane l filters inputs[l][0..count); out is lane-major:
    /// out[n * lanes() + l] holds lane l's output at sample n -- exactly
    /// the layout sd::modulator_bank::accumulate_lane_major consumes, so
    /// render feeds measure without a transpose.
    void step_block_lanes(const double* const* inputs, std::size_t count,
                          double* lane_major_out) noexcept;

    /// step_block_lanes() with one record broadcast to every lane (the
    /// cache-shared staircase): no per-lane input gather at all.
    void step_block_shared(const double* input, std::size_t count,
                           double* lane_major_out) noexcept;

private:
    void run(const double* lane_major_u, const double* shared_u,
             std::size_t count, double* out) noexcept;
    void write_back() noexcept;

    std::size_t n_lanes_ = 0;
    std::size_t order_ = 0;
    state_space** lane_ptrs_ = nullptr; ///< arena copy for state write-back
    double* ad_ = nullptr;  ///< (r * order + c) * lanes + l
    double* bd_ = nullptr;  ///< r * lanes + l
    double* c_ = nullptr;   ///< j * lanes + l
    double* d_ = nullptr;   ///< l
    double* x_ = nullptr;   ///< r * lanes + l
    double* u_scratch_ = nullptr; ///< transpose block for per-lane inputs
};

} // namespace bistna::dut
