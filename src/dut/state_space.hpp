// Continuous-time state space x' = Ax + Bu, y = Cx + Du, discretized
// *exactly* under the zero-order-hold assumption.
//
// The stimulus reaching the DUT on the demonstrator board is a staircase
// updated at f_gen = f_eva/6 and therefore piecewise-constant over every
// f_eva sample interval, so the matrix-exponential ZOH discretization
// reproduces the continuous-time response sample-exactly at the evaluator's
// sampling instants (DESIGN.md section 2).
#pragma once

#include <span>

#include "dut/transfer_function.hpp"
#include "linalg/matrix.hpp"

namespace bistna::dut {

class state_space {
public:
    /// SISO system; A: n x n, B: n x 1, C: 1 x n, D: 1 x 1.
    state_space(linalg::matrix a, linalg::matrix b, linalg::matrix c, double d);

    /// Build the controllable canonical realization of a transfer function.
    static state_space from_transfer_function(const transfer_function& tf);

    /// Discretize at a sample rate; must be called before step().
    void prepare(double sample_rate_hz);
    bool prepared() const noexcept { return prepared_; }

    /// Advance one sample with ZOH input; returns the output *after* the
    /// update (y[n+1] given u[n] held over the interval), matching how the
    /// evaluator samples the settled board signal.
    double step(double input);

    /// step() over a whole record (output.size() == input.size()), sample
    /// for sample bit-identical to the scalar loop but with the per-sample
    /// call and precondition overhead hoisted out -- the board's
    /// DUT-filtering hot path.
    void step_block(std::span<const double> input, std::span<double> output);

    /// Zero the state.
    void reset();

    std::size_t order() const noexcept { return a_.rows(); }
    const linalg::matrix& a() const noexcept { return a_; }

private:
    linalg::matrix a_, b_, c_;
    double d_;
    linalg::matrix ad_, bd_;
    std::vector<double> state_;
    std::vector<double> scratch_; ///< next-state buffer, swapped each step
    bool prepared_ = false;
};

} // namespace bistna::dut
