#include "dut/filters.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace bistna::dut {

transfer_function lowpass2(double cutoff_hz, double q, double gain) {
    BISTNA_EXPECTS(cutoff_hz > 0.0, "cutoff must be positive");
    BISTNA_EXPECTS(q > 0.0, "Q must be positive");
    const double w0 = two_pi * cutoff_hz;
    return transfer_function({gain * w0 * w0}, {w0 * w0, w0 / q, 1.0});
}

transfer_function butterworth_lowpass2(double cutoff_hz, double gain) {
    return lowpass2(cutoff_hz, 1.0 / std::sqrt(2.0), gain);
}

sallen_key_components design_sallen_key(double cutoff_hz, double q) {
    BISTNA_EXPECTS(cutoff_hz > 0.0 && q > 0.0, "invalid Sallen-Key specs");
    sallen_key_components c;
    c.r1 = 10e3;
    c.r2 = 10e3;
    // Unity-gain equal-R design: Q = sqrt(C1/C2)/2 -> C1 = 4 Q^2 C2,
    // w0 = 1/(R sqrt(C1 C2)).
    const double w0 = two_pi * cutoff_hz;
    const double c_geo = 1.0 / (w0 * c.r1); // sqrt(C1*C2)
    c.c1 = c_geo * 2.0 * q;
    c.c2 = c_geo / (2.0 * q);
    return c;
}

sallen_key_components perturb(const sallen_key_components& nominal, double tolerance_sigma,
                              bistna::rng& generator) {
    BISTNA_EXPECTS(tolerance_sigma >= 0.0, "tolerance must be non-negative");
    auto draw = [&](double v) { return v * (1.0 + generator.gaussian(0.0, tolerance_sigma)); };
    sallen_key_components out;
    out.r1 = draw(nominal.r1);
    out.r2 = draw(nominal.r2);
    out.c1 = draw(nominal.c1);
    out.c2 = draw(nominal.c2);
    return out;
}

transfer_function sallen_key_lowpass(const sallen_key_components& c) {
    BISTNA_EXPECTS(c.r1 > 0 && c.r2 > 0 && c.c1 > 0 && c.c2 > 0,
                   "Sallen-Key components must be positive");
    return transfer_function({1.0},
                             {1.0, c.c2 * (c.r1 + c.r2), c.r1 * c.r2 * c.c1 * c.c2});
}

transfer_function mfb_lowpass(const mfb_components& c) {
    BISTNA_EXPECTS(c.r1 > 0 && c.r2 > 0 && c.r3 > 0 && c.c1 > 0 && c.c2 > 0,
                   "MFB components must be positive");
    const double k = c.r2 / c.r1;
    return transfer_function(
        {-k}, {1.0, c.c1 * c.r2 * (c.r3 / c.r1 + c.r3 / c.r2 + 1.0),
               c.c1 * c.c2 * c.r2 * c.r3});
}

mfb_components design_mfb(double cutoff_hz, double q, double gain_abs) {
    BISTNA_EXPECTS(cutoff_hz > 0 && q > 0 && gain_abs > 0, "invalid MFB specs");
    mfb_components c;
    c.r2 = 10e3;
    c.r1 = c.r2 / gain_abs;
    c.r3 = 10e3;
    const double w0 = two_pi * cutoff_hz;
    // w0^2 = 1/(C1 C2 R2 R3); w0/q = C1 (R3/R1 + R3/R2 + 1) / (C1 C2 R3) ...
    // Solve with C1 chosen from the damping equation, then C2 from w0.
    const double damping_resistance = c.r2 * (c.r3 / c.r1 + c.r3 / c.r2 + 1.0);
    c.c1 = 1.0 / (q * w0 * damping_resistance);
    c.c2 = 1.0 / (w0 * w0 * c.c1 * c.r2 * c.r3);
    return c;
}

transfer_function tow_thomas_bandpass(double center_hz, double q, double gain) {
    BISTNA_EXPECTS(center_hz > 0 && q > 0, "invalid Tow-Thomas specs");
    const double w0 = two_pi * center_hz;
    return transfer_function({0.0, gain * w0 / q}, {w0 * w0, w0 / q, 1.0});
}

std::unique_ptr<device_under_test> make_paper_dut(double tolerance_sigma, std::uint64_t seed) {
    bistna::rng generator(seed);
    const auto nominal = design_sallen_key(1000.0, 1.0 / std::sqrt(2.0));
    const auto drawn = perturb(nominal, tolerance_sigma, generator);
    return std::make_unique<linear_dut>(sallen_key_lowpass(drawn),
                                        "active-RC 2nd-order LPF, fc = 1 kHz (Sallen-Key)");
}

} // namespace bistna::dut
