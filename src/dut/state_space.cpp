#include "dut/state_space.hpp"

#include "common/error.hpp"
#include "linalg/expm.hpp"

namespace bistna::dut {

state_space::state_space(linalg::matrix a, linalg::matrix b, linalg::matrix c, double d)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(d), ad_(1, 1), bd_(1, 1) {
    BISTNA_EXPECTS(a_.is_square(), "state matrix must be square");
    BISTNA_EXPECTS(b_.rows() == a_.rows() && b_.cols() == 1, "B must be n x 1");
    BISTNA_EXPECTS(c_.rows() == 1 && c_.cols() == a_.rows(), "C must be 1 x n");
    state_.assign(a_.rows(), 0.0);
    scratch_.assign(a_.rows(), 0.0);
}

state_space state_space::from_transfer_function(const transfer_function& tf) {
    const auto& den = tf.denominator();
    const std::size_t n = tf.order();
    BISTNA_EXPECTS(n >= 1, "state space requires order >= 1");

    // Normalize so the denominator is monic.
    const double lead = den.back();
    poly dn(den.size());
    for (std::size_t i = 0; i < den.size(); ++i) {
        dn[i] = den[i] / lead;
    }
    poly nm(n + 1, 0.0);
    for (std::size_t i = 0; i < tf.numerator().size(); ++i) {
        nm[i] = tf.numerator()[i] / lead;
    }

    // Controllable canonical form.
    linalg::matrix a(n, n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        a(i, i + 1) = 1.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
        a(n - 1, j) = -dn[j];
    }
    linalg::matrix b(n, 1);
    b(n - 1, 0) = 1.0;

    const double d = nm[n];
    linalg::matrix c(1, n);
    for (std::size_t j = 0; j < n; ++j) {
        c(0, j) = nm[j] - dn[j] * d;
    }
    return state_space(std::move(a), std::move(b), std::move(c), d);
}

void state_space::prepare(double sample_rate_hz) {
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");
    const auto zoh = linalg::discretize_zoh(a_, b_, 1.0 / sample_rate_hz);
    ad_ = zoh.ad;
    bd_ = zoh.bd;
    prepared_ = true;
}

double state_space::step(double input) {
    BISTNA_EXPECTS(prepared_, "state_space::prepare(sample_rate) must be called first");
    const std::size_t n = state_.size();
    // Output at the *current* sampling instant (before the input acts over
    // [n, n+1)), so rendered records align exactly with the sample grid the
    // evaluator uses.
    double y = d_ * input;
    for (std::size_t c = 0; c < n; ++c) {
        y += c_(0, c) * state_[c];
    }
    // scratch_ is a member, not a local: this is the sweep hot path, and a
    // per-sample heap allocation here dominates the whole DUT-filtering
    // stage (see bench_stimulus_cache).
    for (std::size_t r = 0; r < n; ++r) {
        double acc = bd_(r, 0) * input;
        for (std::size_t c = 0; c < n; ++c) {
            acc += ad_(r, c) * state_[c];
        }
        scratch_[r] = acc;
    }
    state_.swap(scratch_);
    return y;
}

void state_space::step_block(std::span<const double> input, std::span<double> output) {
    BISTNA_EXPECTS(prepared_, "state_space::prepare(sample_rate) must be called first");
    BISTNA_EXPECTS(input.size() == output.size(), "block output must match input length");
    const std::size_t n = state_.size();
    if (n == 2) {
        // The common DUTs are biquadratic; keeping their state in registers
        // roughly halves the cost of the sweep's DUT-filtering stage.  Same
        // operations in the same order as step(), so bit-identical.
        const double a00 = ad_(0, 0), a01 = ad_(0, 1), a10 = ad_(1, 0), a11 = ad_(1, 1);
        const double b0 = bd_(0, 0), b1 = bd_(1, 0);
        const double c0 = c_(0, 0), c1 = c_(0, 1);
        double x0 = state_[0], x1 = state_[1];
        for (std::size_t i = 0; i < input.size(); ++i) {
            const double u = input[i];
            // Same association order as step(): left-to-right accumulation.
            output[i] = (d_ * u + c0 * x0) + c1 * x1;
            const double next0 = (b0 * u + a00 * x0) + a01 * x1;
            const double next1 = (b1 * u + a10 * x0) + a11 * x1;
            x0 = next0;
            x1 = next1;
        }
        state_[0] = x0;
        state_[1] = x1;
        return;
    }
    for (std::size_t i = 0; i < input.size(); ++i) {
        output[i] = step(input[i]);
    }
}

void state_space::reset() { state_.assign(state_.size(), 0.0); }

} // namespace bistna::dut
