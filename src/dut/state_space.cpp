#include "dut/state_space.hpp"

#include "common/error.hpp"
#include "linalg/expm.hpp"

namespace bistna::dut {

state_space::state_space(linalg::matrix a, linalg::matrix b, linalg::matrix c, double d)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(d), ad_(1, 1), bd_(1, 1) {
    BISTNA_EXPECTS(a_.is_square(), "state matrix must be square");
    BISTNA_EXPECTS(b_.rows() == a_.rows() && b_.cols() == 1, "B must be n x 1");
    BISTNA_EXPECTS(c_.rows() == 1 && c_.cols() == a_.rows(), "C must be 1 x n");
    state_.assign(a_.rows(), 0.0);
}

state_space state_space::from_transfer_function(const transfer_function& tf) {
    const auto& den = tf.denominator();
    const std::size_t n = tf.order();
    BISTNA_EXPECTS(n >= 1, "state space requires order >= 1");

    // Normalize so the denominator is monic.
    const double lead = den.back();
    poly dn(den.size());
    for (std::size_t i = 0; i < den.size(); ++i) {
        dn[i] = den[i] / lead;
    }
    poly nm(n + 1, 0.0);
    for (std::size_t i = 0; i < tf.numerator().size(); ++i) {
        nm[i] = tf.numerator()[i] / lead;
    }

    // Controllable canonical form.
    linalg::matrix a(n, n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        a(i, i + 1) = 1.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
        a(n - 1, j) = -dn[j];
    }
    linalg::matrix b(n, 1);
    b(n - 1, 0) = 1.0;

    const double d = nm[n];
    linalg::matrix c(1, n);
    for (std::size_t j = 0; j < n; ++j) {
        c(0, j) = nm[j] - dn[j] * d;
    }
    return state_space(std::move(a), std::move(b), std::move(c), d);
}

void state_space::prepare(double sample_rate_hz) {
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");
    const auto zoh = linalg::discretize_zoh(a_, b_, 1.0 / sample_rate_hz);
    ad_ = zoh.ad;
    bd_ = zoh.bd;
    prepared_ = true;
}

double state_space::step(double input) {
    BISTNA_EXPECTS(prepared_, "state_space::prepare(sample_rate) must be called first");
    const std::size_t n = state_.size();
    // Output at the *current* sampling instant (before the input acts over
    // [n, n+1)), so rendered records align exactly with the sample grid the
    // evaluator uses.
    double y = d_ * input;
    for (std::size_t c = 0; c < n; ++c) {
        y += c_(0, c) * state_[c];
    }
    std::vector<double> next(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        double acc = bd_(r, 0) * input;
        for (std::size_t c = 0; c < n; ++c) {
            acc += ad_(r, c) * state_[c];
        }
        next[r] = acc;
    }
    state_ = std::move(next);
    return y;
}

void state_space::reset() { state_.assign(state_.size(), 0.0); }

} // namespace bistna::dut
