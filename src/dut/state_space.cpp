#include "dut/state_space.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/kernel.hpp"
#include "linalg/expm.hpp"

namespace bistna::dut {

namespace {

/// Register-resident step_block body for compile-time order N: the loops
/// over N unroll fully, so state and coefficients live in registers across
/// the whole record.  Operation-for-operation the same left-to-right
/// accumulation as step(), so bit-identical to the generic path.
template <std::size_t N>
void step_block_small(const linalg::matrix& ad, const linalg::matrix& bd,
                      const linalg::matrix& c, double d, double* state,
                      std::span<const double> input, std::span<double> output) {
    double a[N][N], b[N], cr[N], x[N];
    for (std::size_t r = 0; r < N; ++r) {
        for (std::size_t j = 0; j < N; ++j) {
            a[r][j] = ad(r, j);
        }
        b[r] = bd(r, 0);
        cr[r] = c(0, r);
        x[r] = state[r];
    }
    for (std::size_t i = 0; i < input.size(); ++i) {
        const double u = input[i];
        double y = d * u;
        for (std::size_t j = 0; j < N; ++j) {
            y += cr[j] * x[j];
        }
        output[i] = y;
        double nx[N];
        for (std::size_t r = 0; r < N; ++r) {
            double acc = b[r] * u;
            for (std::size_t j = 0; j < N; ++j) {
                acc += a[r][j] * x[j];
            }
            nx[r] = acc;
        }
        for (std::size_t r = 0; r < N; ++r) {
            x[r] = nx[r];
        }
    }
    for (std::size_t r = 0; r < N; ++r) {
        state[r] = x[r];
    }
}

} // namespace

state_space::state_space(linalg::matrix a, linalg::matrix b, linalg::matrix c, double d)
    : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(d), ad_(1, 1), bd_(1, 1) {
    BISTNA_EXPECTS(a_.is_square(), "state matrix must be square");
    BISTNA_EXPECTS(b_.rows() == a_.rows() && b_.cols() == 1, "B must be n x 1");
    BISTNA_EXPECTS(c_.rows() == 1 && c_.cols() == a_.rows(), "C must be 1 x n");
    state_.assign(a_.rows(), 0.0);
    scratch_.assign(a_.rows(), 0.0);
}

state_space state_space::from_transfer_function(const transfer_function& tf) {
    const auto& den = tf.denominator();
    const std::size_t n = tf.order();
    BISTNA_EXPECTS(n >= 1, "state space requires order >= 1");

    // Normalize so the denominator is monic.
    const double lead = den.back();
    poly dn(den.size());
    for (std::size_t i = 0; i < den.size(); ++i) {
        dn[i] = den[i] / lead;
    }
    poly nm(n + 1, 0.0);
    for (std::size_t i = 0; i < tf.numerator().size(); ++i) {
        nm[i] = tf.numerator()[i] / lead;
    }

    // Controllable canonical form.
    linalg::matrix a(n, n);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        a(i, i + 1) = 1.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
        a(n - 1, j) = -dn[j];
    }
    linalg::matrix b(n, 1);
    b(n - 1, 0) = 1.0;

    const double d = nm[n];
    linalg::matrix c(1, n);
    for (std::size_t j = 0; j < n; ++j) {
        c(0, j) = nm[j] - dn[j] * d;
    }
    return state_space(std::move(a), std::move(b), std::move(c), d);
}

void state_space::prepare(double sample_rate_hz) {
    BISTNA_EXPECTS(sample_rate_hz > 0.0, "sample rate must be positive");
    const auto zoh = linalg::discretize_zoh(a_, b_, 1.0 / sample_rate_hz);
    ad_ = zoh.ad;
    bd_ = zoh.bd;
    prepared_ = true;
}

double state_space::step(double input) {
    BISTNA_EXPECTS(prepared_, "state_space::prepare(sample_rate) must be called first");
    const std::size_t n = state_.size();
    // Output at the *current* sampling instant (before the input acts over
    // [n, n+1)), so rendered records align exactly with the sample grid the
    // evaluator uses.
    double y = d_ * input;
    for (std::size_t c = 0; c < n; ++c) {
        y += c_(0, c) * state_[c];
    }
    // scratch_ is a member, not a local: this is the sweep hot path, and a
    // per-sample heap allocation here dominates the whole DUT-filtering
    // stage (see bench_stimulus_cache).
    for (std::size_t r = 0; r < n; ++r) {
        double acc = bd_(r, 0) * input;
        for (std::size_t c = 0; c < n; ++c) {
            acc += ad_(r, c) * state_[c];
        }
        scratch_[r] = acc;
    }
    state_.swap(scratch_);
    return y;
}

void state_space::step_block(std::span<const double> input, std::span<double> output) {
    BISTNA_EXPECTS(prepared_, "state_space::prepare(sample_rate) must be called first");
    BISTNA_EXPECTS(input.size() == output.size(), "block output must match input length");
    // Keeping low-order state in registers roughly halves the cost of the
    // sweep's DUT-filtering stage (the common DUTs are biquadratic; the
    // catalog tops out at order 4).
    switch (state_.size()) {
    case 1: step_block_small<1>(ad_, bd_, c_, d_, state_.data(), input, output); return;
    case 2: step_block_small<2>(ad_, bd_, c_, d_, state_.data(), input, output); return;
    case 3: step_block_small<3>(ad_, bd_, c_, d_, state_.data(), input, output); return;
    case 4: step_block_small<4>(ad_, bd_, c_, d_, state_.data(), input, output); return;
    default: break;
    }
    for (std::size_t i = 0; i < input.size(); ++i) {
        output[i] = step(input[i]);
    }
}

void state_space::reset() { state_.assign(state_.size(), 0.0); }

namespace {

/// Samples per transpose block when lanes have distinct input records: big
/// enough to amortize the kernel dispatch, small enough that the lane-major
/// input tile stays in L1 alongside the output rows.
constexpr std::size_t bank_block = 128;

/// Lockstep bank body for compile-time order N.  Inputs arrive either
/// broadcast (Shared: u[n] for every lane -- the cache-shared staircase) or
/// lane-major (u[n * n_lanes + l]).  Per-lane arithmetic is the exact
/// left-to-right accumulation of state_space::step, so each lane's output
/// and state sequence is bit-identical to the scalar pass; only the loop
/// order changes (sample-outer, lane-inner) so the lane loop vectorizes.
template <std::size_t N, bool Shared>
inline void bank_rows(std::size_t n_lanes, std::size_t count, const double* u_in,
                      const double* __restrict ad, const double* __restrict bd,
                      const double* __restrict c, const double* __restrict d,
                      double* __restrict x, double* __restrict out) {
    for (std::size_t n = 0; n < count; ++n) {
        double* out_row = out + n * n_lanes;
        const double* u_row = Shared ? u_in : u_in + n * n_lanes;
        for (std::size_t l = 0; l < n_lanes; ++l) {
            const double u = Shared ? u_in[n] : u_row[l];
            double y = d[l] * u;
            for (std::size_t j = 0; j < N; ++j) {
                y += c[j * n_lanes + l] * x[j * n_lanes + l];
            }
            out_row[l] = y;
            double nx[N];
            for (std::size_t r = 0; r < N; ++r) {
                double acc = bd[r * n_lanes + l] * u;
                for (std::size_t j = 0; j < N; ++j) {
                    acc += ad[(r * N + j) * n_lanes + l] * x[j * n_lanes + l];
                }
                nx[r] = acc;
            }
            for (std::size_t r = 0; r < N; ++r) {
                x[r * n_lanes + l] = nx[r];
            }
        }
    }
}

// target_clones needs plain functions, so the template is stamped once per
// (order, input shape); the AVX2 clone inlines the body at its ISA.
#define BISTNA_SS_BANK_KERNEL(name, order, shared)                                \
    BISTNA_KERNEL_CLONES void name(std::size_t n_lanes, std::size_t count,        \
                                   const double* u, const double* ad,             \
                                   const double* bd, const double* c,             \
                                   const double* d, double* x, double* out) {     \
        bank_rows<order, shared>(n_lanes, count, u, ad, bd, c, d, x, out);        \
    }

BISTNA_SS_BANK_KERNEL(bank_run_lm_1, 1, false)
BISTNA_SS_BANK_KERNEL(bank_run_lm_2, 2, false)
BISTNA_SS_BANK_KERNEL(bank_run_lm_3, 3, false)
BISTNA_SS_BANK_KERNEL(bank_run_lm_4, 4, false)
BISTNA_SS_BANK_KERNEL(bank_run_sh_1, 1, true)
BISTNA_SS_BANK_KERNEL(bank_run_sh_2, 2, true)
BISTNA_SS_BANK_KERNEL(bank_run_sh_3, 3, true)
BISTNA_SS_BANK_KERNEL(bank_run_sh_4, 4, true)

#undef BISTNA_SS_BANK_KERNEL

} // namespace

bool state_space_bank::compatible(std::span<const state_space* const> lanes) noexcept {
    if (lanes.empty()) {
        return false;
    }
    const state_space* first = lanes.front();
    if (first == nullptr || !first->prepared()) {
        return false;
    }
    const std::size_t order = first->order();
    if (order < 1 || order > 4) {
        return false;
    }
    for (const state_space* lane : lanes) {
        if (lane == nullptr || !lane->prepared() || lane->order() != order) {
            return false;
        }
    }
    return true;
}

state_space_bank::state_space_bank(std::span<state_space* const> lanes, arena& scratch) {
    BISTNA_EXPECTS(compatible({lanes.data(), lanes.size()}),
                   "state_space_bank requires prepared lanes of equal order <= 4");
    n_lanes_ = lanes.size();
    order_ = lanes.front()->order();

    auto ptrs = scratch.allocate<state_space*>(n_lanes_);
    std::copy(lanes.begin(), lanes.end(), ptrs.begin());
    lane_ptrs_ = ptrs.data();

    ad_ = scratch.allocate<double>(order_ * order_ * n_lanes_).data();
    bd_ = scratch.allocate<double>(order_ * n_lanes_).data();
    c_ = scratch.allocate<double>(order_ * n_lanes_).data();
    d_ = scratch.allocate<double>(n_lanes_).data();
    x_ = scratch.allocate<double>(order_ * n_lanes_).data();
    u_scratch_ = scratch.allocate<double>(bank_block * n_lanes_).data();

    for (std::size_t l = 0; l < n_lanes_; ++l) {
        const state_space& lane = *lanes[l];
        for (std::size_t r = 0; r < order_; ++r) {
            for (std::size_t j = 0; j < order_; ++j) {
                ad_[(r * order_ + j) * n_lanes_ + l] = lane.ad_(r, j);
            }
            bd_[r * n_lanes_ + l] = lane.bd_(r, 0);
            c_[r * n_lanes_ + l] = lane.c_(0, r);
            x_[r * n_lanes_ + l] = lane.state_[r];
        }
        d_[l] = lane.d_;
    }
}

void state_space_bank::run(const double* lane_major_u, const double* shared_u,
                           std::size_t count, double* out) noexcept {
    if (shared_u != nullptr) {
        switch (order_) {
        case 1: bank_run_sh_1(n_lanes_, count, shared_u, ad_, bd_, c_, d_, x_, out); break;
        case 2: bank_run_sh_2(n_lanes_, count, shared_u, ad_, bd_, c_, d_, x_, out); break;
        case 3: bank_run_sh_3(n_lanes_, count, shared_u, ad_, bd_, c_, d_, x_, out); break;
        case 4: bank_run_sh_4(n_lanes_, count, shared_u, ad_, bd_, c_, d_, x_, out); break;
        default: break;
        }
        return;
    }
    switch (order_) {
    case 1: bank_run_lm_1(n_lanes_, count, lane_major_u, ad_, bd_, c_, d_, x_, out); break;
    case 2: bank_run_lm_2(n_lanes_, count, lane_major_u, ad_, bd_, c_, d_, x_, out); break;
    case 3: bank_run_lm_3(n_lanes_, count, lane_major_u, ad_, bd_, c_, d_, x_, out); break;
    case 4: bank_run_lm_4(n_lanes_, count, lane_major_u, ad_, bd_, c_, d_, x_, out); break;
    default: break;
    }
}

void state_space_bank::step_block_lanes(const double* const* inputs, std::size_t count,
                                        double* lane_major_out) noexcept {
    // Per-lane records are sample-contiguous; transpose a block at a time
    // into the lane-major tile the kernel reads so the hot loop never
    // chases the per-lane pointers.
    for (std::size_t start = 0; start < count; start += bank_block) {
        const std::size_t len = std::min(bank_block, count - start);
        for (std::size_t l = 0; l < n_lanes_; ++l) {
            const double* src = inputs[l] + start;
            for (std::size_t n = 0; n < len; ++n) {
                u_scratch_[n * n_lanes_ + l] = src[n];
            }
        }
        run(u_scratch_, nullptr, len, lane_major_out + start * n_lanes_);
    }
    write_back();
}

void state_space_bank::step_block_shared(const double* input, std::size_t count,
                                         double* lane_major_out) noexcept {
    run(nullptr, input, count, lane_major_out);
    write_back();
}

void state_space_bank::write_back() noexcept {
    for (std::size_t l = 0; l < n_lanes_; ++l) {
        for (std::size_t r = 0; r < order_; ++r) {
            lane_ptrs_[l]->state_[r] = x_[r * n_lanes_ + l];
        }
    }
}

} // namespace bistna::dut
