#include "dut/dut.hpp"

namespace bistna::dut {

linear_dut::linear_dut(transfer_function tf, std::string name)
    : tf_(std::move(tf)), realization_(state_space::from_transfer_function(tf_)),
      name_(std::move(name)) {}

void linear_dut::prepare(double sample_rate_hz) { realization_.prepare(sample_rate_hz); }

double linear_dut::process(double input) { return realization_.step(input); }

void linear_dut::process_block(std::span<const double> input, std::span<double> output) {
    realization_.step_block(input, output);
}

void linear_dut::reset() { realization_.reset(); }

std::complex<double> linear_dut::ideal_response(double frequency_hz) const {
    return tf_.response(frequency_hz);
}

} // namespace bistna::dut
