// Weak static nonlinearities for the harmonic-distortion experiment
// (paper Fig. 10c).
//
// The board-level filter distorts through its op-amp; behaviorally this is
// a memoryless polynomial y = x + a2 x^2 + a3 x^3 applied at the filter
// input and/or output.  Both placements are exact under the board's
// sampling scheme: the input staircase stays piecewise-constant through a
// memoryless map, and an output map acts directly on output samples.
#pragma once

#include <memory>
#include <string>

#include "dut/dut.hpp"

namespace bistna::dut {

/// y = x + a2 x^2 + a3 x^3, with optional hard clip.
class polynomial_nonlinearity {
public:
    polynomial_nonlinearity(double a2, double a3, double clip_level = 0.0);

    double apply(double x) const noexcept;
    double a2() const noexcept { return a2_; }
    double a3() const noexcept { return a3_; }

    /// Coefficients producing the requested single-tone distortion at
    /// operating amplitude A (small-distortion formulas HD2 = a2*A/2,
    /// HD3 = a3*A^2/4).  Levels in dB (negative, relative to the carrier).
    static polynomial_nonlinearity for_target_hd(double amplitude, double hd2_db,
                                                 double hd3_db);

private:
    double a2_;
    double a3_;
    double clip_level_;
};

/// DUT decorator: input nonlinearity -> linear core -> output nonlinearity.
class nonlinear_dut final : public device_under_test {
public:
    nonlinear_dut(std::unique_ptr<device_under_test> core, polynomial_nonlinearity input_poly,
                  polynomial_nonlinearity output_poly);

    void prepare(double sample_rate_hz) override;
    double process(double input) override;
    void reset() override;
    /// Small-signal response of the linear core (the nonlinearity is weak).
    std::complex<double> ideal_response(double frequency_hz) const override;
    std::string description() const override;

private:
    std::unique_ptr<device_under_test> core_;
    polynomial_nonlinearity input_poly_;
    polynomial_nonlinearity output_poly_;
};

/// The Fig. 10c DUT: the paper's 1 kHz filter plus an output-stage
/// nonlinearity calibrated so a 800 mVpp, 1.6 kHz stimulus produces
/// HD2 ~ -56 dB and HD3 ~ -62 dB at the filter output (the levels the
/// paper's analyzer and the LeCroy scope both report).
std::unique_ptr<device_under_test> make_paper_dut_with_distortion(
    double tolerance_sigma = 0.01, std::uint64_t seed = 7);

} // namespace bistna::dut
