// A production-style BIST flow: the calibration path first verifies the
// test circuitry itself (the paper's "verification of the BIST circuitry
// functionality"), then the DUT is screened against spec limits -- the
// go/no-go decision an on-chip self-test would make.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "core/sweep.hpp"
#include "dut/filters.hpp"

namespace {

struct spec_limit {
    double f_hz;
    double gain_db_min;
    double gain_db_max;
};

bool screen_die(std::uint64_t die_seed, double component_sigma, bool verbose) {
    using namespace bistna;

    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut(component_sigma, die_seed));
    board.set_amplitude(millivolt(150.0));
    core::analyzer_settings settings;
    settings.periods = 200;
    core::network_analyzer analyzer(board, settings);

    // Step 1: self-test.  The stimulus measured through the calibration
    // path must match its programmed amplitude (300 mV) within 5 %.
    const auto& calibration = analyzer.calibrate();
    if (std::abs(calibration.amplitude.volts - 0.3) > 0.015) {
        std::cout << "die " << die_seed << ": BIST self-test FAILED (stimulus "
                  << calibration.amplitude.volts << " V)\n";
        return false;
    }

    // Step 2: screen the DUT against a 1 kHz Butterworth spec mask.
    const spec_limit limits[] = {
        {200.0, -0.6, 0.4},     // passband flatness
        {1000.0, -4.0, -2.2},   // cutoff
        {4000.0, -26.5, -21.5}, // stopband slope
    };
    for (const auto& limit : limits) {
        const auto point = analyzer.measure_point(hertz{limit.f_hz});
        // Conservative screening: the *whole* guaranteed interval must sit
        // inside the mask (no false passes from measurement uncertainty).
        const bool pass = point.gain_db_bounds.lo() >= limit.gain_db_min &&
                          point.gain_db_bounds.hi() <= limit.gain_db_max;
        if (verbose) {
            std::cout << "  " << limit.f_hz << " Hz: " << format_fixed(point.gain_db, 2)
                      << " dB in [" << limit.gain_db_min << ", " << limit.gain_db_max
                      << "] -> " << (pass ? "pass" : "FAIL") << "\n";
        }
        if (!pass) {
            return false;
        }
    }
    return true;
}

} // namespace

int main() {
    std::cout << "=== BIST screening of one die (verbose) ===\n";
    const bool first = screen_die(7, 0.01, true);
    std::cout << "die 7 verdict: " << (first ? "PASS" : "FAIL") << "\n\n";

    std::cout << "=== Lot screening: 20 dice, 1 % components ===\n";
    int passes = 0;
    for (std::uint64_t die = 1; die <= 20; ++die) {
        passes += screen_die(die, 0.01, false);
    }
    std::cout << "yield: " << passes << "/20\n\n";

    std::cout << "=== Same lot with 5 % components (out-of-spec process) ===\n";
    int bad_passes = 0;
    for (std::uint64_t die = 1; die <= 20; ++die) {
        bad_passes += screen_die(die, 0.05, false);
    }
    std::cout << "yield: " << bad_passes << "/20 (the analyzer catches the drift)\n";
    return 0;
}
