// Fault-trajectory diagnosis demo: build a fault dictionary on the nominal
// die (batched lockstep build, streamed with live progress), ship it
// through its CSV form, inject known single faults into Monte Carlo lots,
// and report how often the classifier localizes the true fault on the dice
// that fail screening.  Every session -- the dictionary build and each
// diagnosed lot -- runs on one shared worker pool.
//
//   ./fault_diagnosis [--dice=N] [--sigma=S] [--threads=N] [--lanes=N]
//                     [--store=PATH] [--trace=PATH] [--metrics]
//
// When --threads/--lanes are omitted the sweep engine's autotune probe
// picks them for this machine; pass either flag to override.
//
// The dictionary also ships through its checksummed binary form (written
// next to the CSV, loaded back both copying and mmapped); --store
// additionally appends every injected-lot report to a persistent binary
// record store as the dice stream off their jobs.
//
// --trace writes a Chrome trace of the dictionary build and every lot's
// engine-stage spans; --metrics prints the accumulated counters and
// latency histograms.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "diag/classifier.hpp"
#include "diag/diagnose.hpp"
#include "diag/fault_model.hpp"
#include "diag/trajectory_builder.hpp"
#include "store/dictionary_io.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace bistna;

struct cell_outcome {
    std::size_t dice = 0;
    std::size_t failing = 0;
    std::size_t top1 = 0;      ///< failing dice whose top hypothesis is the true fault
    std::size_t ambiguous = 0; ///< failing dice whose ambiguity set holds the true fault
    double severity_error = 0.0;
};

/// One-line live progress for a streamed lot (overwritten in place).
diag::diagnose_progress lot_progress(const std::string& label) {
    return [label](std::size_t completed, std::size_t total, std::size_t failing) {
        std::cout << "\r  " << label << ": " << completed << "/" << total
                  << " dice screened, " << failing << " failing" << std::flush;
        if (completed == total) {
            std::cout << "\n";
        }
    };
}

} // namespace

int main(int argc, char** argv) {
    const auto dice = static_cast<std::size_t>(flag_value(argc, argv, "dice", 8.0));
    const double sigma = flag_value(argc, argv, "sigma", 0.02);
    auto threads = static_cast<std::size_t>(flag_value(argc, argv, "threads", 0.0));
    auto lanes = static_cast<std::size_t>(flag_value(argc, argv, "lanes", 8.0));
    const std::string store_path = flag_text(argc, argv, "store");

    const std::string trace_path = flag_text(argc, argv, "trace");
    const bool want_metrics = flag_switch(argc, argv, "metrics");
    telemetry::metric_registry registry;
    if (!trace_path.empty() || want_metrics) {
        registry.set_process_name("fault_diagnosis");
        registry.attach();
        telemetry::set_thread_name("main");
    }

    const diag::die_design design; // realistic 0.35 um generator, nominal DUT
    core::analyzer_settings settings;
    const auto mask = core::spec_mask::paper_lowpass();
    const auto catalog = diag::default_catalog();
    const auto space = diag::signature_space::from_mask(mask, /*thd_max_harmonic=*/3);

    // Flags omitted -> autotune the configuration on the nominal die
    // (either flag still overrides).
    if (!flag_present(argc, argv, "threads") || !flag_present(argc, argv, "lanes")) {
        core::sweep_engine_options probe;
        probe.autotune = true;
        core::sweep_engine tuner(design.factory(), settings, probe);
        const auto tuned = tuner.stats();
        if (!flag_present(argc, argv, "threads")) {
            threads = tuned.threads;
        }
        if (!flag_present(argc, argv, "lanes")) {
            lanes = tuned.batch_lanes;
        }
        std::cout << "autotune probe picked " << tuned.threads << " threads x "
                  << tuned.batch_lanes << " lanes in "
                  << format_fixed(tuned.autotune_seconds * 1e3, 1) << " ms\n\n";
    }

    // One pool for every session this demo runs.
    const auto queue = std::make_shared<core::job_queue>(threads);

    std::cout << "=== fault-trajectory diagnosis: dictionary build (" << queue->threads()
              << " threads x " << lanes << " lanes) ===\n\n";
    diag::trajectory_build_options build;
    build.grid_points = 9;
    build.batch_lanes = lanes;
    build.queue = queue;
    build.on_progress = [](std::size_t completed, std::size_t total) {
        // Runs on worker threads; a single composed << keeps lines whole.
        std::cout << ("\r  acquired " + std::to_string(completed) + "/" +
                      std::to_string(total) + " severity grid points") << std::flush;
    };
    const auto dictionary =
        diag::build_dictionary(design, settings, space, catalog, build);
    std::cout << "\n";

    const std::string dictionary_path = "fault_dictionary.csv";
    dictionary.write_csv(dictionary_path);
    const auto shipped = diag::fault_dictionary::read_csv(dictionary_path);
    std::cout << catalog.size() << " faults x " << build.grid_points
              << " severities -> " << dictionary_path << " (round trip "
              << (shipped == dictionary ? "bit-exact" : "DIVERGED") << ")\n";

    // The binary sibling: checksummed frames with the trajectory matrix
    // stored contiguously, loaded back both ways (full copy and the
    // zero-copy mmap view a test floor would share between processes).
    const std::string binary_path = "fault_dictionary.bin";
    dictionary.write_binary(binary_path);
    const auto binary_shipped = diag::fault_dictionary::read_binary(binary_path);
    const store::mapped_dictionary mapped(binary_path);
    std::cout << "binary form -> " << binary_path << " (read_binary "
              << (binary_shipped == dictionary ? "bit-exact" : "DIVERGED")
              << ", mmap view " << mapped.rows() << " rows x "
              << (1 + mapped.dimensions()) << " cols, materialized "
              << (mapped.materialize() == dictionary ? "bit-exact" : "DIVERGED")
              << ")\n\n";

    std::cout << "trajectory extent per fault (normalized distance of the severity\n"
              << "endpoints from the healthy signature):\n";
    const diag::classifier clf(shipped);
    ascii_table extent_table({"fault", "severity range", "|min|", "|max|"});
    for (std::size_t j = 0; j < shipped.trajectories.size(); ++j) {
        const auto& trajectory = shipped.trajectories[j];
        const auto& spec = catalog[j];
        const auto lo = clf.classify(trajectory.points.front().signature);
        const auto hi = clf.classify(trajectory.points.back().signature);
        extent_table.add_row({diag::fault_name(trajectory.kind),
                              format_fixed(spec.severity_min, 3) + " .. " +
                                  format_fixed(spec.severity_max, 3),
                              format_fixed(lo.healthy_distance, 2),
                              format_fixed(hi.healthy_distance, 2)});
    }
    extent_table.print(std::cout);

    // Monte Carlo lots with one injected fault per cell: severities toward
    // both ends of each catalog range (inside the dictionary grid; signed
    // ranges are symmetric, so the middle would inject no fault at all).
    std::cout << "\n=== Monte Carlo lots with injected faults (" << dice
              << " dice/cell, " << sigma * 100.0 << " % components) ===\n\n";
    const std::vector<double> fractions = {1.0 / 12.0, 0.25, 0.75, 11.0 / 12.0};

    // Optional persistent record store: every lot's reports are appended
    // as they stream in, with die ids globalized across cells so a
    // collector can tell the lots apart.
    std::unique_ptr<store::lot_store> result_store;
    if (!store_path.empty()) {
        result_store = std::make_unique<store::lot_store>(
            store::lot_store::open_append(store_path));
        const auto& recovery = result_store->recovery();
        if (recovery.existed) {
            std::cout << "store: resuming '" << store_path << "' with "
                      << recovery.valid_records << " records";
            if (recovery.tail_truncated) {
                std::cout << " (torn tail truncated at byte " << recovery.tail_offset
                          << ": " << recovery.tail_error << ")";
            }
            std::cout << "\n\n";
        }
    }
    std::uint64_t die_base = 0;
    const auto store_hook = [&](std::size_t die,
                                const core::screening_report& report) {
        if (result_store) {
            result_store->append(store::to_record(report, die_base + die));
        }
    };

    ascii_table result_table({"fault", "failing", "top-1", "in ambiguity set",
                              "mean |severity err|"});
    std::size_t total_failing = 0;
    std::size_t total_top1 = 0;
    for (const auto& spec : catalog) {
        cell_outcome outcome;
        const auto progress = lot_progress(diag::fault_name(spec.kind));
        for (double fraction : fractions) {
            const double severity =
                spec.severity_min + fraction * (spec.severity_max - spec.severity_min);
            diag::die_design faulty = design;
            faulty.dut_tolerance_sigma = sigma;
            core::analyzer_settings faulty_settings = settings;
            diag::apply_fault(spec.kind, severity, faulty, faulty_settings);

            const auto diagnosed = diag::screen_and_diagnose_lot(
                faulty.factory(), faulty_settings, mask, clf, dice,
                /*first_seed=*/1000 + static_cast<std::uint64_t>(fraction * 1000.0),
                threads, lanes, progress, queue, store_hook);
            die_base += dice;
            outcome.dice += dice;
            for (const auto& die : diagnosed.failing) {
                ++outcome.failing;
                if (die.result.ranked.empty()) {
                    continue;
                }
                if (die.result.ranked.front().kind == spec.kind) {
                    ++outcome.top1;
                    outcome.severity_error +=
                        std::abs(die.result.ranked.front().severity - severity);
                }
                for (const auto& hypothesis : die.result.ambiguity) {
                    if (hypothesis.kind == spec.kind) {
                        ++outcome.ambiguous;
                        break;
                    }
                }
            }
        }
        total_failing += outcome.failing;
        total_top1 += outcome.top1;
        result_table.add_row(
            {diag::fault_name(spec.kind),
             std::to_string(outcome.failing) + "/" + std::to_string(outcome.dice),
             outcome.failing == 0
                 ? "-"
                 : format_fixed(100.0 * static_cast<double>(outcome.top1) /
                                    static_cast<double>(outcome.failing),
                                1) + " %",
             outcome.failing == 0
                 ? "-"
                 : format_fixed(100.0 * static_cast<double>(outcome.ambiguous) /
                                    static_cast<double>(outcome.failing),
                                1) + " %",
             outcome.top1 == 0
                 ? "-"
                 : format_fixed(outcome.severity_error /
                                    static_cast<double>(outcome.top1),
                                4)});
    }
    std::cout << "\n";
    result_table.print(std::cout);

    // A fault-free control lot: failing dice here are spec marginalities,
    // and healthy dice must classify as "no fault".
    diag::die_design healthy = design;
    healthy.dut_tolerance_sigma = sigma;
    const auto control = diag::screen_and_diagnose_lot(
        healthy.factory(), settings, mask, clf, 4 * dice, /*first_seed=*/5000,
        threads, lanes, lot_progress("control lot"), queue, store_hook);
    std::size_t control_no_fault = 0;
    for (const auto& die : control.failing) {
        control_no_fault += die.result.fault_detected ? 0 : 1;
    }

    const double accuracy = total_failing == 0
                                ? 0.0
                                : static_cast<double>(total_top1) /
                                      static_cast<double>(total_failing);
    std::cout << "\ncontrol lot (no injected fault): " << control.failing.size() << "/"
              << control.lot.dice << " failing, " << control_no_fault
              << " of those classified no-fault\n";
    std::cout << "overall localization: " << total_top1 << "/" << total_failing << " ("
              << format_fixed(100.0 * accuracy, 1) << " %) of failing dice rank the "
              << "true fault first\n";
    if (result_store) {
        std::cout << "store: '" << result_store->path() << "' now holds "
                  << result_store->records() << " records ("
                  << result_store->bytes() << " bytes, "
                  << result_store->records_appended() << " appended this run)\n";
    }

    if (registry.is_attached()) {
        registry.detach();
        const auto snapshot = registry.snapshot();
        if (!trace_path.empty()) {
            telemetry::write_chrome_trace_file(trace_path, {&snapshot, 1});
            std::cout << "trace: " << trace_path << "\n";
        }
        if (want_metrics) {
            std::cout << "\n--- telemetry ---\n";
            telemetry::print_metrics(std::cout, snapshot);
        }
    }
    return accuracy >= 0.9 ? 0 : 1;
}
