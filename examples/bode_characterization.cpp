// Full Bode characterization of a DUT (the paper's Fig. 10a/b scenario),
// including the error bands of eqs. (4)-(5), printed as a table and dumped
// to CSV for plotting.
//
// Demonstrates: log sweeps, one-time calibration, measurement bounds,
// swapping in a different DUT (an MFB filter with gain), and the parallel
// sweep engine (the batch runs across all hardware threads, bit-identical
// to the serial path, and renders the clock-normalized generator staircase
// once for the whole batch via the shared stimulus cache).
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "gen/generator.hpp"

namespace {

void characterize(const char* title, const bistna::core::board_factory& factory,
                  const std::string& csv_path) {
    using namespace bistna;

    core::analyzer_settings settings;
    settings.periods = 200;

    const auto frequencies = core::log_spaced(hertz{100.0}, kilohertz(20.0), 17);
    core::sweep_engine engine(factory, settings); // threads = hardware concurrency
    const auto report = engine.run(frequencies);

    ascii_table table({"f (Hz)", "gain (dB)", "gain lo/hi", "phase (deg)", "phase lo/hi",
                       "true gain", "true phase"});
    csv_writer csv(csv_path);
    csv.header({"f_hz", "gain_db", "gain_lo", "gain_hi", "phase_deg", "phase_lo",
                "phase_hi", "ideal_gain_db", "ideal_phase_deg"});
    for (const auto& p : report.points) {
        table.add_row({format_fixed(p.f_wave.value, 0), format_fixed(p.gain_db, 2),
                       format_fixed(p.gain_db_bounds.lo(), 2) + "/" +
                           format_fixed(p.gain_db_bounds.hi(), 2),
                       format_fixed(p.phase_deg, 1),
                       format_fixed(p.phase_deg_bounds.lo(), 1) + "/" +
                           format_fixed(p.phase_deg_bounds.hi(), 1),
                       format_fixed(p.ideal_gain_db, 2), format_fixed(p.ideal_phase_deg, 1)});
        csv.row({p.f_wave.value, p.gain_db, p.gain_db_bounds.lo(), p.gain_db_bounds.hi(),
                 p.phase_deg, p.phase_deg_bounds.lo(), p.phase_deg_bounds.hi(),
                 p.ideal_gain_db, p.ideal_phase_deg});
    }
    std::cout << "\n=== " << title << " ===\n";
    table.print(std::cout);
    const auto cache = engine.stimulus_stats();
    std::cout << "(" << report.points.size() << " points on " << report.threads_used
              << " thread(s) in " << format_fixed(report.elapsed_seconds, 2)
              << " s; worst |gain error| " << format_fixed(report.worst_gain_error_db, 3)
              << " dB, gain-bound violations " << report.gain_bound_violations << ")\n";
    std::cout << "(clock-normalized stimulus rendered " << cache.misses << " time(s), reused "
              << cache.hits << " time(s) across the batch)\n";
    std::cout << "(CSV written to " << csv_path << ")\n";
}

} // namespace

int main() {
    using namespace bistna;

    // The paper's DUT: 1 kHz Sallen-Key Butterworth with 1 % parts.
    characterize("paper DUT: active-RC 2nd-order LPF, fc = 1 kHz",
                 [](std::uint64_t seed) {
                     core::demonstrator_board board(gen::generator_params::ideal(),
                                                    dut::make_paper_dut(0.01, seed));
                     board.set_amplitude(millivolt(150.0));
                     return board;
                 },
                 "bode_paper_dut.csv");

    // A different DUT to show the analyzer is generic: inverting MFB
    // low-pass with gain 2 at 2.5 kHz.
    characterize("second DUT: MFB low-pass, fc = 2.5 kHz, gain -2",
                 [](std::uint64_t) {
                     const auto mfb = dut::design_mfb(2500.0, 1.0 / std::sqrt(2.0), 2.0);
                     core::demonstrator_board board(
                         gen::generator_params::ideal(),
                         std::make_unique<dut::linear_dut>(dut::mfb_lowpass(mfb),
                                                           "MFB LPF, fc = 2.5 kHz, gain -2"));
                     board.set_amplitude(millivolt(100.0));
                     return board;
                 },
                 "bode_mfb_dut.csv");
    return 0;
}
