// Full Bode characterization of a DUT (the paper's Fig. 10a/b scenario),
// including the error bands of eqs. (4)-(5), printed as a table and dumped
// to CSV for plotting.
//
// Demonstrates: log sweeps, one-time calibration, measurement bounds, and
// swapping in a different DUT (an MFB filter with gain).
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "core/sweep.hpp"
#include "dut/filters.hpp"

namespace {

void characterize(const char* title, bistna::core::demonstrator_board& board,
                  const std::string& csv_path) {
    using namespace bistna;

    core::analyzer_settings settings;
    settings.periods = 200;
    core::network_analyzer analyzer(board, settings);

    const auto frequencies = core::log_spaced(hertz{100.0}, kilohertz(20.0), 17);
    const auto points = analyzer.bode_sweep(frequencies);

    ascii_table table({"f (Hz)", "gain (dB)", "gain lo/hi", "phase (deg)", "phase lo/hi",
                       "true gain", "true phase"});
    csv_writer csv(csv_path);
    csv.header({"f_hz", "gain_db", "gain_lo", "gain_hi", "phase_deg", "phase_lo",
                "phase_hi", "ideal_gain_db", "ideal_phase_deg"});
    for (const auto& p : points) {
        table.add_row({format_fixed(p.f_wave.value, 0), format_fixed(p.gain_db, 2),
                       format_fixed(p.gain_db_bounds.lo(), 2) + "/" +
                           format_fixed(p.gain_db_bounds.hi(), 2),
                       format_fixed(p.phase_deg, 1),
                       format_fixed(p.phase_deg_bounds.lo(), 1) + "/" +
                           format_fixed(p.phase_deg_bounds.hi(), 1),
                       format_fixed(p.ideal_gain_db, 2), format_fixed(p.ideal_phase_deg, 1)});
        csv.row({p.f_wave.value, p.gain_db, p.gain_db_bounds.lo(), p.gain_db_bounds.hi(),
                 p.phase_deg, p.phase_deg_bounds.lo(), p.phase_deg_bounds.hi(),
                 p.ideal_gain_db, p.ideal_phase_deg});
    }
    std::cout << "\n=== " << title << " ===\n";
    table.print(std::cout);
    std::cout << "(CSV written to " << csv_path << ")\n";
}

} // namespace

int main() {
    using namespace bistna;

    // The paper's DUT: 1 kHz Sallen-Key Butterworth with 1 % parts.
    core::demonstrator_board paper_board(gen::generator_params::ideal(),
                                         dut::make_paper_dut(0.01, 7));
    paper_board.set_amplitude(millivolt(150.0));
    characterize("paper DUT: active-RC 2nd-order LPF, fc = 1 kHz", paper_board,
                 "bode_paper_dut.csv");

    // A different DUT to show the analyzer is generic: inverting MFB
    // low-pass with gain 2 at 2.5 kHz.
    const auto mfb = dut::design_mfb(2500.0, 1.0 / std::sqrt(2.0), 2.0);
    core::demonstrator_board mfb_board(
        gen::generator_params::ideal(),
        std::make_unique<dut::linear_dut>(dut::mfb_lowpass(mfb),
                                          "MFB LPF, fc = 2.5 kHz, gain -2"));
    mfb_board.set_amplitude(millivolt(100.0));
    characterize("second DUT: MFB low-pass, fc = 2.5 kHz, gain -2", mfb_board,
                 "bode_mfb_dut.csv");
    return 0;
}
