// The shard worker executable the coordinator spawns: one process, one
// contiguous unit range of a lot manifest, frames streamed to a record
// store in global-id order.  All the logic lives in shard::worker_main so
// the test binary can host the identical worker behind a dispatch flag.
//
//   ./shard_worker --manifest=lot.json --out=shard.store
//                  [--first=N] [--count=N] [--flush-interval=N]
#include "shard/worker.hpp"

int main(int argc, char** argv) { return bistna::shard::worker_main(argc, argv); }
