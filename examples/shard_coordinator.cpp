// Multi-process lot runner: split a lot manifest into shards, fan them
// across N worker processes, survive dead and straggler workers by retry,
// and merge the shard stores into one lot store that is bit-identical to
// a single-process run -- at any shard count, worker count and completion
// order.
//
//   ./shard_coordinator --manifest=lot.json --out=lot.store
//                       [--shards=N] [--workers=N] [--shard-dir=DIR]
//                       [--worker=PATH] [--timeout-s=T] [--retries=N]
//                       [--flush-interval=N] [--trace=PATH] [--metrics]
//
// --workers caps the processes running at once (default: one per shard);
// --worker points at the worker binary (default: shard_worker next to
// this executable); --timeout-s enables straggler kill + retry;
// --retries is the total attempts allowed per shard (default 3).
// --trace writes one merged Chrome trace (chrome://tracing /
// ui.perfetto.dev) with the coordinator and every worker as its own
// process lane; --metrics prints the fleet-wide merged counters and
// histograms.  Either flag turns on worker telemetry sidecars.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "shard/coordinator.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace_export.hpp"

int main(int argc, char** argv) {
    using namespace bistna;

    const std::string manifest_path = flag_text(argc, argv, "manifest");
    const std::string out_path = flag_text(argc, argv, "out");
    if (manifest_path.empty() || out_path.empty()) {
        std::fprintf(stderr,
                     "usage: shard_coordinator --manifest=lot.json --out=lot.store\n"
                     "  [--shards=N] [--workers=N] [--shard-dir=DIR] [--worker=PATH]\n"
                     "  [--timeout-s=T] [--retries=N] [--flush-interval=N]\n"
                     "  [--trace=trace.json] [--metrics]\n");
        return 2;
    }

    try {
        const shard::lot_manifest manifest = shard::lot_manifest::load(manifest_path);

        const std::string trace_path = flag_text(argc, argv, "trace");
        const bool want_metrics = flag_switch(argc, argv, "metrics");
        const bool metered = !trace_path.empty() || want_metrics;

        telemetry::metric_registry registry;
        if (metered) {
            registry.set_process_name("coordinator");
            registry.attach();
            telemetry::set_thread_name("coordinator-main");
        }

        shard::supervisor_options options;
        options.shards =
            static_cast<std::size_t>(flag_value(argc, argv, "shards", 4.0));
        options.max_processes =
            static_cast<std::size_t>(flag_value(argc, argv, "workers", 0.0));
        options.straggler_timeout_seconds = flag_value(argc, argv, "timeout-s", 0.0);
        options.max_attempts =
            static_cast<std::size_t>(flag_value(argc, argv, "retries", 3.0));
        options.flush_interval =
            static_cast<std::size_t>(flag_value(argc, argv, "flush-interval", 32.0));

        options.shard_dir = flag_text(argc, argv, "shard-dir");
        if (options.shard_dir.empty()) {
            options.shard_dir = out_path + ".shards";
        }

        std::string worker = flag_text(argc, argv, "worker");
        if (worker.empty()) {
            // Default: the shard_worker binary built next to this one.
            worker = (std::filesystem::path(argv[0]).parent_path() / "shard_worker")
                         .string();
        }
        options.worker_command = {worker};
        options.telemetry_sidecars = metered;
        options.on_event = [](const std::string& line) {
            std::printf("  %s\n", line.c_str());
        };

        std::printf("=== shard coordinator: %s lot, %llu units, %zu shards ===\n",
                    shard::workload_name(manifest.workload),
                    static_cast<unsigned long long>(manifest.total_units()),
                    options.shards);

        const shard::coordinator_report report =
            shard::run_lot(manifest, out_path, options);

        std::printf("merged %llu records (%llu seen, %llu duplicates dropped, "
                    "%zu torn files) from %zu attempts (%zu retries) -> %s "
                    "(%llu bytes)\n",
                    static_cast<unsigned long long>(report.merge.records_merged),
                    static_cast<unsigned long long>(report.merge.records_seen),
                    static_cast<unsigned long long>(report.merge.duplicates_dropped),
                    report.merge.torn_files, report.shards.attempts.size(),
                    report.shards.retries, out_path.c_str(),
                    static_cast<unsigned long long>(report.merge.bytes_written));

        if (metered) {
            registry.detach();
            // Coordinator lane first, then one lane per worker snapshot.
            std::vector<telemetry::telemetry_snapshot> lanes;
            lanes.push_back(registry.snapshot());
            for (auto& snapshot : report.worker_snapshots) {
                lanes.push_back(snapshot);
            }
            if (!trace_path.empty()) {
                telemetry::write_chrome_trace_file(trace_path, lanes);
                std::printf("trace: %s (%zu process lanes)\n",
                            trace_path.c_str(), lanes.size());
            }
            if (want_metrics) {
                std::printf("--- fleet metrics (%zu workers) ---\n",
                            report.worker_snapshots.size());
                telemetry::print_metrics(std::cout,
                                         telemetry::merge_metrics(lanes));
            }
        }
        return 0;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "shard coordinator: %s\n", error.what());
        return 1;
    }
}
