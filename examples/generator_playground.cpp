// Explore the switched-capacitor sinewave generator: programmable
// amplitude (Fig. 8a), spectral quality (Fig. 8b), and what the Table I
// biquad actually does to the 16-step staircase.
#include <iostream>

#include "common/math_util.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dsp/resample.hpp"
#include "dsp/sine_fit.hpp"
#include "dsp/spectrum.hpp"
#include "gen/generator.hpp"
#include "sc/analysis.hpp"
#include "sim/trace.hpp"

int main() {
    using namespace bistna;

    std::cout << "=== The Table I biquad ===\n";
    const auto info = sc::analyze_biquad(sc::biquad_caps::table1());
    std::cout << "pole angle   : fs / " << format_fixed(1.0 / (info.pole_angle / two_pi), 2)
              << " (target fs/16)\n"
              << "pole radius  : " << format_fixed(info.pole_radius, 4) << " (Q = "
              << format_fixed(info.q_factor, 2) << ")\n"
              << "passband gain: " << format_fixed(info.gain_at_16th, 3)
              << " x (V_A+ - V_A-)\n\n";

    std::cout << "=== Amplitude programming (Fig. 8a law) ===\n";
    ascii_table amp_table({"V_A refs (mV)", "predicted (mV)", "fitted (mV)"});
    for (double va : {75.0, 125.0, 150.0}) {
        gen::generator_params params; // non-ideal 0.35 um defaults
        params.seed = 3;
        gen::sinewave_generator generator(params);
        generator.set_amplitude(millivolt(2.0 * va)); // differential
        generator.settle(64);
        const auto wave = generator.generate(16 * 64);
        const auto fit = dsp::sine_fit_3param(wave, 1.0, 16.0);
        amp_table.add_row({"+/-" + format_fixed(va, 0), format_fixed(4.0 * va, 0),
                           format_fixed(fit.amplitude * 1e3, 1)});
    }
    amp_table.print(std::cout);

    std::cout << "\n=== Spectral quality at 1 Vpp (Fig. 8b) ===\n";
    gen::generator_params params;
    params.seed = 21;
    gen::sinewave_generator generator(params);
    generator.set_amplitude(millivolt(250.0));
    generator.settle(64);
    const auto wave = generator.generate(16 * 2048);

    const auto dt_metrics = dsp::analyze_tone(wave, 16.0, 1.0, 8);
    std::cout << "discrete-time view : SFDR " << format_fixed(dt_metrics.sfdr_db, 1)
              << " dB, THD " << format_fixed(dt_metrics.thd_db, 1) << " dB\n";

    // The paper's caveat: a scope sees the held (continuous-time) waveform.
    const auto held = dsp::zoh_upsample(wave, 8);
    const auto ct_metrics = dsp::analyze_tone(held, 16.0 * 8.0, 1.0, 8);
    std::cout << "continuous-time view: SFDR " << format_fixed(ct_metrics.sfdr_db, 1)
              << " dB (hold images included)\n";

    // Dump one period of the waveform for plotting.
    sim::trace trace("generator_output", 16.0);
    for (std::size_t i = 0; i < 64; ++i) {
        trace.push(wave[i]);
    }
    trace.write_csv("generator_waveform.csv");
    std::cout << "\n(waveform CSV written to generator_waveform.csv)\n";
    return 0;
}
