// Quickstart: measure the gain and phase of an analog filter with the
// on-chip network analyzer -- the one-page tour of the public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <iostream>

#include "core/network_analyzer.hpp"
#include "dut/filters.hpp"

int main() {
    using namespace bistna;

    // 1. A device under test: the paper's 1 kHz active-RC low-pass filter,
    //    with 1 % component tolerances drawn from seed 7.
    auto device = dut::make_paper_dut(/*tolerance_sigma=*/0.01, /*seed=*/7);
    std::cout << "DUT: " << device->description() << "\n\n";

    // 2. The demonstrator board: sinewave generator -> DUT -> evaluator,
    //    all driven from one master clock (f_wave = f_master / 96).
    core::demonstrator_board board(gen::generator_params::ideal(), std::move(device));
    board.set_amplitude(millivolt(150.0)); // V_A+ - V_A- -> 300 mV stimulus

    // 3. The network analyzer: calibrate once, then measure.
    core::analyzer_settings settings;
    settings.periods = 200; // M, the accuracy/test-time knob
    core::network_analyzer analyzer(board, settings);

    for (double f : {200.0, 1000.0, 4000.0}) {
        const auto point = analyzer.measure_point(hertz{f});
        std::cout << "f = " << f << " Hz:\n"
                  << "  gain  = " << point.gain_db << " dB  (guaranteed bounds "
                  << point.gain_db_bounds << ", true " << point.ideal_gain_db << ")\n"
                  << "  phase = " << point.phase_deg << " deg (guaranteed bounds "
                  << point.phase_deg_bounds << ", true " << point.ideal_phase_deg
                  << ")\n";
    }

    std::cout << "\nEvery measurement carries the eq. (4)/(5) error interval;\n"
                 "increase `settings.periods` to tighten it.\n";
    return 0;
}
