// bistna_serverd -- the screening service daemon.
//
//   bistna_serverd [--listen=PATH | --listen=tcp:PORT] [--tcp=PORT]
//                  [--threads=N] [--active-jobs=N] [--admission=N]
//                  [--quota=N] [--send-queue-bytes=N]
//                  [--stall-timeout-ms=MS] [--idle-timeout-ms=MS]
//                  [--progress-every=N] [--trace=PATH] [--metrics]
//
// Accepts lot manifests over the framed socket protocol and streams
// per-die records back, multiplexing every connected client onto one
// shared worker pool.  See README "Screening as a service" and
// src/svc/server.hpp for the full semantics; stop with SIGINT/SIGTERM.

#include "svc/server.hpp"

int main(int argc, char** argv) {
    return bistna::svc::server_main(argc, argv);
}
