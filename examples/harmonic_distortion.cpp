// Harmonic-distortion measurement (the paper's Fig. 10c scenario): the
// BIST analyzer measures HD2/HD3 of a distorting filter and the result is
// cross-checked against a digital-oscilloscope FFT -- the same comparison
// the paper makes against a LeCroy WaveSurfer 422.
#include <iostream>

#include "baseline/oscilloscope.hpp"
#include "common/table.hpp"
#include "core/network_analyzer.hpp"
#include "dut/nonlinear.hpp"

int main() {
    using namespace bistna;

    // The paper's filter with its op-amp nonlinearity (calibrated to the
    // measured HD2 ~ -56 dB / HD3 ~ -62 dB at the Fig. 10c operating point).
    core::demonstrator_board board(gen::generator_params::ideal(),
                                   dut::make_paper_dut_with_distortion(0.01, 7));
    // 800 mVpp stimulus at 1.6 kHz (V_A diff = 200 mV -> 0.4 V amplitude).
    board.set_amplitude(millivolt(200.0));

    core::analyzer_settings settings;
    settings.distortion_periods = 400; // the paper's M for this experiment
    core::network_analyzer analyzer(board, settings);

    const auto result = analyzer.measure_distortion(kilohertz(1.6), 3);

    // Cross-check: "oscilloscope" FFT of the same board output.
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.6));
    auto record = board.render(tb, 400, core::signal_path::through_dut);
    baseline::oscilloscope_params scope_params;
    scope_params.record_length = 1 << 15;
    // Autoranged vertical scale and the WaveSurfer's enhanced-resolution
    // (averaging) mode: ~11 effective bits, so quantizer spurs sit well
    // below the -62 dB harmonic being measured.
    scope_params.full_scale = 0.25;
    scope_params.adc_bits = 11;
    baseline::oscilloscope scope(scope_params);
    const auto digitized =
        scope.acquire(core::demonstrator_board::as_source(std::move(record)),
                      tb.master().value);
    const auto scope_reading =
        scope.measure_harmonics(digitized, tb.master().value, 1600.0, 3);

    ascii_table table({"harmonic", "BIST analyzer (dBc)", "bounds", "oscilloscope (dBc)"});
    for (std::size_t i = 0; i < result.harmonic_dbc.size(); ++i) {
        table.add_row({"H" + std::to_string(i + 2), format_fixed(result.harmonic_dbc[i], 1),
                       format_fixed(result.harmonic_dbc_bounds[i].lo(), 1) + "/" +
                           format_fixed(result.harmonic_dbc_bounds[i].hi(), 1),
                       i < scope_reading.harmonic_dbc.size()
                           ? format_fixed(scope_reading.harmonic_dbc[i], 1)
                           : "-"});
    }
    std::cout << "Harmonic distortion of \"" << board.dut().description() << "\"\n"
              << "stimulus: 800 mVpp @ 1.6 kHz, M = 400 periods\n\n";
    table.print(std::cout);
    std::cout << "\nTHD (BIST): " << format_fixed(result.thd_db, 1) << " dB\n"
              << "THD (scope): " << format_fixed(scope_reading.thd_db, 1) << " dB\n"
              << "\nThe two instruments agree, as in the paper's Fig. 10c -- but the\n"
                 "BIST analyzer needed only two comparators and two counters on-chip.\n";
    return 0;
}
