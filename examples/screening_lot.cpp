// Monte Carlo lot screening through the batched evaluation pipeline: a
// production flow's view of the paper's test-economics pitch.  A lot of
// process-drawn dice is screened against the 1 kHz Butterworth spec mask
// with dice grouped into SoA modulator-bank lanes (threads x lanes in
// lockstep).  The lot is submitted as an asynchronous job and consumed as
// a stream, so yield is visible while the lot is still running; the scalar
// path then runs the same lot on the same worker pool for a wall-clock
// comparison, and the two are verified to agree die for die.
//
//   ./screening_lot [--dice=N] [--sigma=S] [--threads=N] [--lanes=N]
//                   [--store=PATH] [--trace=PATH] [--metrics]
//
// When --threads/--lanes are omitted the engine's autotune probe picks
// them (a short calibration screen at each candidate configuration); pass
// either flag to override.
//
// --store appends one checksummed binary record per die to PATH as the
// reports stream off the job (store/lot_store.hpp) -- reopening an
// existing store resumes it, recovering from a torn tail if a previous
// run was killed mid-write.
//
// --trace writes a Chrome trace (chrome://tracing / ui.perfetto.dev) of
// the run's engine-stage spans; --metrics prints the counters and latency
// histograms the run accumulated.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/job_queue.hpp"
#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"
#include "store/lot_store.hpp"
#include "store/records.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_export.hpp"

namespace {

using namespace bistna;

/// Die seed of the lot's first die (lot die i = seed kFirstSeed + i); also
/// the stored record id, matching what the shard runner's workers store,
/// so an example --store file and a sharded run of the same lot are
/// directly comparable.
constexpr std::uint64_t kFirstSeed = 1;

core::board_factory make_factory(double sigma) {
    return [sigma](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(sigma, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

/// Screen the lot as a streamed job on the shared pool: pull reports in
/// die order, keeping a live yield line on screen.  When `store` is
/// non-null every die is appended the moment it becomes deliverable
/// in order -- the store's bytes are then deterministic (frames in die
/// order, ids kFirstSeed + die) and byte-identical to what the shard
/// runner's merged store holds for the same lot, while a crash still
/// loses at most the buffered tail.
std::vector<core::screening_report>
screen_streamed(const core::board_factory& factory, const core::analyzer_settings& settings,
                const core::spec_mask& mask, std::size_t dice, std::size_t batch_lanes,
                const std::shared_ptr<core::job_queue>& queue, double& seconds,
                store::lot_store* sink = nullptr) {
    core::sweep_engine_options options;
    options.batch_lanes = batch_lanes;
    options.queue = queue;
    core::sweep_engine engine(factory, settings, options);

    const auto start = std::chrono::steady_clock::now();
    auto handle = engine.submit_screening(mask, dice, kFirstSeed);
    core::job_scope<core::screening_report> guard(handle);
    std::size_t failing = 0;
    while (auto item = handle.next_in_order()) {
        failing += item->value.passed ? 0 : 1;
        if (sink != nullptr) {
            sink->append(store::to_record(item->value, kFirstSeed + item->index));
        }
        const std::size_t done = handle.completed_items();
        std::cout << "\r  " << (batch_lanes > 1 ? "batched" : "scalar ") << ": " << done
                  << "/" << dice << " dice screened, " << failing << " failing" << std::flush;
    }
    std::cout << "\n";
    auto reports = handle.results();
    seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return reports;
}

bool reports_identical(const std::vector<core::screening_report>& a,
                       const std::vector<core::screening_report>& b) {
    if (a.size() != b.size()) {
        return false;
    }
    for (std::size_t die = 0; die < a.size(); ++die) {
        if (a[die].passed != b[die].passed ||
            a[die].stimulus_volts != b[die].stimulus_volts ||
            a[die].limits.size() != b[die].limits.size()) {
            return false;
        }
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            if (a[die].limits[i].measured_db != b[die].limits[i].measured_db ||
                a[die].limits[i].measured_bounds_db != b[die].limits[i].measured_bounds_db) {
                return false;
            }
        }
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    const auto dice = static_cast<std::size_t>(flag_value(argc, argv, "dice", 64.0));
    const double sigma = flag_value(argc, argv, "sigma", 0.03);
    auto threads = static_cast<std::size_t>(flag_value(argc, argv, "threads", 0.0));
    auto lanes = static_cast<std::size_t>(flag_value(argc, argv, "lanes", 8.0));
    const std::string store_path = flag_text(argc, argv, "store");

    // Telemetry is opt-in: detached, every counter/span call is a no-op
    // branch, so the flags cost nothing when absent.
    const std::string trace_path = flag_text(argc, argv, "trace");
    const bool want_metrics = flag_switch(argc, argv, "metrics");
    telemetry::metric_registry registry;
    if (!trace_path.empty() || want_metrics) {
        registry.set_process_name("screening_lot");
        registry.attach();
        telemetry::set_thread_name("main");
    }

    // Production-flow settings: calibrated offset handling, default
    // 200-period acquisitions -- every die pays the grounded calibration
    // run plus one acquisition per mask limit.
    core::analyzer_settings settings;
    const auto mask = core::spec_mask::paper_lowpass();
    const auto factory = make_factory(sigma);

    // Flags omitted -> let the engine's autotune probe pick the
    // configuration for this machine (either flag still overrides).
    if (!flag_present(argc, argv, "threads") || !flag_present(argc, argv, "lanes")) {
        core::sweep_engine_options probe;
        probe.autotune = true;
        core::sweep_engine tuner(factory, settings, probe);
        const auto tuned = tuner.stats();
        if (!flag_present(argc, argv, "threads")) {
            threads = tuned.threads;
        }
        if (!flag_present(argc, argv, "lanes")) {
            lanes = tuned.batch_lanes;
        }
        std::cout << "autotune probe picked " << tuned.threads << " threads x "
                  << tuned.batch_lanes << " lanes in "
                  << format_fixed(tuned.autotune_seconds * 1e3, 1) << " ms\n\n";
    }

    // One worker pool serves both sessions below (and could serve any
    // number of concurrent lots).
    const auto queue = std::make_shared<core::job_queue>(threads);

    std::cout << "=== Monte Carlo lot screening: " << dice << " dice, " << sigma * 100.0
              << " % components, " << queue->threads() << " threads x " << lanes
              << " lanes ===\n\n";

    // Open (or resume) the persistent result store before measuring: a
    // torn tail from a killed run is reported and truncated here, never
    // silently read back.
    std::unique_ptr<store::lot_store> result_store;
    if (!store_path.empty()) {
        result_store = std::make_unique<store::lot_store>(
            store::lot_store::open_append(store_path));
        const auto& recovery = result_store->recovery();
        if (recovery.existed) {
            std::cout << "store: resuming '" << store_path << "' with "
                      << recovery.valid_records << " records";
            if (recovery.tail_truncated) {
                std::cout << " (torn tail truncated at byte " << recovery.tail_offset
                          << ": " << recovery.tail_error << ")";
            }
            std::cout << "\n\n";
        }
    }

    double batched_seconds = 0.0;
    const auto reports = screen_streamed(factory, settings, mask, dice, lanes, queue,
                                         batched_seconds, result_store.get());
    double scalar_seconds = 0.0;
    const auto scalar_reports =
        screen_streamed(factory, settings, mask, dice, 1, queue, scalar_seconds);
    const bool identical = reports_identical(reports, scalar_reports);
    const auto lot = core::aggregate_lot(reports);

    std::cout << "\nyield: " << lot.passed << "/" << lot.dice << " ("
              << format_fixed(100.0 * lot.yield(), 1) << " %)\n\n";

    std::cout << "per-limit measured-gain distributions across the lot (dB):\n";
    ascii_table limits_table(
        {"limit", "f / Hz", "mean", "stddev", "min", "max", "p05", "p95"});
    for (std::size_t i = 0; i < lot.gain_distributions.size(); ++i) {
        const auto& dist = lot.gain_distributions[i];
        const auto& limit = mask.limits[i];
        limits_table.add_row({limit.name, format_fixed(limit.f_hz, 0),
                              format_fixed(dist.mean, 3), format_fixed(dist.stddev, 3),
                              format_fixed(dist.min, 3), format_fixed(dist.max, 3),
                              format_fixed(dist.p05, 3), format_fixed(dist.p95, 3)});
    }
    limits_table.print(std::cout);

    std::cout << "\nwall clock: " << format_fixed(batched_seconds * 1e3, 1)
              << " ms batched (" << lanes << " bank lanes) vs "
              << format_fixed(scalar_seconds * 1e3, 1) << " ms scalar -- "
              << format_fixed(scalar_seconds / batched_seconds, 2)
              << "x from lockstep evaluation, reports "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";

    if (result_store) {
        std::cout << "store: '" << result_store->path() << "' now holds "
                  << result_store->records() << " records ("
                  << result_store->bytes() << " bytes, "
                  << result_store->records_appended() << " appended this run)\n";
    }

    if (registry.is_attached()) {
        registry.detach();
        const auto snapshot = registry.snapshot();
        if (!trace_path.empty()) {
            telemetry::write_chrome_trace_file(trace_path, {&snapshot, 1});
            std::cout << "trace: " << trace_path << "\n";
        }
        if (want_metrics) {
            std::cout << "\n--- telemetry ---\n";
            telemetry::print_metrics(std::cout, snapshot);
        }
    }
    return identical ? 0 : 1;
}
