// screening_client -- submit a lot to a running bistna_serverd and stream
// the records back.
//
//   screening_client [--connect=PATH | --connect=tcp:PORT]
//                    [--manifest=PATH.json | --dice=N --sigma=S --lanes=N]
//                    [--store=PATH] [--cancel-after=N]
//
// With --store the streamed records are appended to a lot store file that
// is byte-identical to what `screening_lot --store` would have written
// offline -- the service streams the exact same records in the exact same
// order.  --cancel-after=N exercises cooperative mid-job cancel.

#include "svc/client.hpp"

int main(int argc, char** argv) {
    return bistna::svc::client_main(argc, argv);
}
