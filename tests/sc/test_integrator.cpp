// SC integrator charge-transfer behaviour, with and without the
// behavioral op-amp non-idealities.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "sc/integrator.hpp"

namespace {

using namespace bistna;
using sc::branch;
using sc::sc_integrator;

TEST(ScIntegrator, IdealLosslessAccumulation) {
    sc_integrator integ(2.0, 0.0, sc::opamp_params::ideal());
    // v_new = v_old - (Ci/Cf) * u  (inverting).
    integ.transfer(branch{1.0, 0.5});
    EXPECT_NEAR(integ.output(), -0.25, 1e-12);
    integ.transfer(branch{1.0, 0.5});
    EXPECT_NEAR(integ.output(), -0.5, 1e-12);
}

TEST(ScIntegrator, DampingCapMakesItLossy) {
    sc_integrator integ(2.0, 1.0, sc::opamp_params::ideal());
    // v_new = (Cf*v_old - q) / (Cf + Cd); with q = 0 state decays by 2/3.
    integ.reset(0.9);
    integ.transfer(branch{1.0, 0.0});
    EXPECT_NEAR(integ.output(), 0.6, 1e-12);
}

TEST(ScIntegrator, MultipleBranchesSumCharge) {
    sc_integrator integ(1.0, 0.0, sc::opamp_params::ideal());
    const std::array<branch, 3> branches = {branch{0.5, 0.2}, branch{-0.25, 0.4},
                                            branch{1.0, -0.1}};
    integ.transfer(branches);
    // q = 0.5*0.2 - 0.25*0.4 - 1.0*0.1 = 0.1 - 0.1 - 0.1 = -0.1 -> v = +0.1
    EXPECT_NEAR(integ.output(), 0.1, 1e-12);
}

TEST(ScIntegrator, FiniteGainLeavesResidualError) {
    auto opamp = sc::opamp_params::ideal();
    opamp.dc_gain_db = 40.0; // gain 100 -> visible error
    sc_integrator integ(1.0, 0.0, opamp);
    integ.transfer(branch{1.0, -1.0});
    // Ideal would be +1.0; finite gain leaves ~ (1 + loading)/A short.
    EXPECT_LT(integ.output(), 1.0);
    EXPECT_GT(integ.output(), 0.95);
}

TEST(ScIntegrator, OffsetAccumulatesEachTransfer) {
    auto opamp = sc::opamp_params::ideal();
    opamp.offset_volts = 1e-3;
    sc_integrator integ(1.0, 0.5, opamp); // damped so offset settles
    double v = 0.0;
    for (int i = 0; i < 2000; ++i) {
        v = integ.transfer(branch{1.0, 0.0});
    }
    // Damped integrator converges; offset must move the settled value.
    EXPECT_GT(std::abs(v), 1e-4);
}

TEST(ScIntegrator, ClipCountsAndSaturates) {
    auto opamp = sc::opamp_params::ideal();
    opamp.output_swing = 0.3;
    sc_integrator integ(1.0, 0.0, opamp);
    for (int i = 0; i < 10; ++i) {
        integ.transfer(branch{1.0, -0.2});
    }
    EXPECT_NEAR(integ.output(), 0.3, 1e-12);
    EXPECT_GT(integ.clip_events(), 0u);
}

TEST(ScIntegrator, NoiseIsReproducibleWithSeed) {
    auto opamp = sc::opamp_params::ideal();
    opamp.noise_rms = 1e-4;
    sc_integrator a(1.0, 0.0, opamp, rng(1234));
    sc_integrator b(1.0, 0.0, opamp, rng(1234));
    for (int i = 0; i < 100; ++i) {
        a.transfer(branch{1.0, 0.1});
        b.transfer(branch{1.0, 0.1});
    }
    EXPECT_DOUBLE_EQ(a.output(), b.output());
}

TEST(ScIntegrator, RejectsNonPositiveFeedbackCap) {
    EXPECT_THROW(sc_integrator(0.0, 0.0, sc::opamp_params::ideal()), precondition_error);
    EXPECT_THROW(sc_integrator(1.0, -0.1, sc::opamp_params::ideal()), precondition_error);
}

} // namespace
