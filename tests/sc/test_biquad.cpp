// The biquad is the generator's smoothing filter.  These tests pin the
// recovered Fig. 2 topology to Table I: resonance at f_gen/16, pole radius
// ~0.96 (Q ~ 5), passband gain 2, and the design helper's round trip.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "sc/analysis.hpp"
#include "sc/biquad.hpp"

namespace {

using namespace bistna;
using sc::biquad_caps;
using sc::sc_biquad;

TEST(BiquadAnalysis, TableOneResonatesAtSixteenthOfClock) {
    const auto info = sc::analyze_biquad(biquad_caps::table1());
    // Pole angle within 1 % of 2*pi/16.
    EXPECT_NEAR(info.pole_angle, two_pi / 16.0, 0.01 * two_pi / 16.0);
    EXPECT_NEAR(info.pole_radius, 0.9625, 0.002);
    EXPECT_NEAR(info.q_factor, 5.0, 0.3);
}

TEST(BiquadAnalysis, TableOnePassbandGainIsTwo) {
    const auto info = sc::analyze_biquad(biquad_caps::table1());
    // Measured in Fig. 8a: output amplitude = 2 * (V_A+ - V_A-).
    EXPECT_NEAR(info.gain_at_16th, 2.0, 0.05);
}

TEST(BiquadAnalysis, HarmonicsAreAttenuatedRelativeToFundamental) {
    const auto caps = biquad_caps::table1();
    const double h1 = std::abs(sc::biquad_response(caps, 1.0 / 16.0));
    const double h2 = std::abs(sc::biquad_response(caps, 2.0 / 16.0));
    const double h3 = std::abs(sc::biquad_response(caps, 3.0 / 16.0));
    // The smoothing filter suppresses harmonics by > 20 dB relative to the
    // fundamental (this is what cleans the 16-step staircase).
    EXPECT_GT(20.0 * std::log10(h1 / h2), 20.0);
    EXPECT_GT(20.0 * std::log10(h1 / h3), 28.0);
}

TEST(BiquadAnalysis, DesignRoundTripRecoversTableOne) {
    sc::biquad_design_spec spec;
    const auto info = sc::analyze_biquad(biquad_caps::table1());
    spec.normalized_f0 = info.pole_angle / two_pi;
    spec.pole_radius = info.pole_radius;
    spec.passband_gain = info.gain_at_16th;
    spec.total_cap_scale = biquad_caps::table1().b + biquad_caps::table1().f;
    const auto designed = sc::design_biquad(spec);
    EXPECT_NEAR(designed.a, 5.194, 0.05);
    EXPECT_NEAR(designed.b, 12.749, 0.05);
    EXPECT_NEAR(designed.d, 2.574, 0.05);
    EXPECT_NEAR(designed.f, 1.014, 0.05);
}

TEST(BiquadAnalysis, DesignHitsRequestedSpecs) {
    sc::biquad_design_spec spec;
    spec.normalized_f0 = 1.0 / 16.0;
    spec.pole_radius = 0.96;
    spec.passband_gain = 2.0;
    const auto caps = sc::design_biquad(spec);
    const auto info = sc::analyze_biquad(caps);
    EXPECT_NEAR(info.pole_angle, two_pi / 16.0, 1e-9);
    EXPECT_NEAR(info.pole_radius, 0.96, 1e-9);
    const double gain = std::abs(sc::biquad_response(caps, 1.0 / 16.0));
    EXPECT_NEAR(gain, 2.0, 1e-9);
}

TEST(BiquadSimulation, TimeDomainMatchesTransferFunctionForSine) {
    // Drive the *ideal* simulated biquad with a sampled sine through a
    // constant input cap and compare steady-state amplitude with |H|.
    const auto caps = biquad_caps::table1();
    sc_biquad biquad(caps, sc::opamp_params::ideal(), sc::opamp_params::ideal());
    const double f = 1.0 / 16.0;
    const std::size_t settle = 2048;
    const std::size_t measure = 512;
    double peak = 0.0;
    for (std::size_t n = 0; n < settle + measure; ++n) {
        const double u = std::sin(two_pi * f * static_cast<double>(n));
        const double y = biquad.step(u, 1.0);
        if (n >= settle) {
            peak = std::max(peak, std::abs(y));
        }
    }
    const double expected = std::abs(sc::biquad_response(caps, f));
    EXPECT_NEAR(peak, expected, 0.02 * expected);
}

TEST(BiquadSimulation, ImpulseDecaysWithPoleRadius) {
    const auto caps = biquad_caps::table1();
    sc_biquad biquad(caps, sc::opamp_params::ideal(), sc::opamp_params::ideal());
    biquad.step(1.0, 1.0); // impulse
    double first_peak = 0.0;
    double late_peak = 0.0;
    for (std::size_t n = 0; n < 512; ++n) {
        const double y = std::abs(biquad.step(0.0, 0.0));
        if (n < 16) {
            first_peak = std::max(first_peak, y);
        }
        if (n >= 256) {
            late_peak = std::max(late_peak, y);
        }
    }
    EXPECT_GT(first_peak, 0.0);
    // 240+ samples at r = 0.9625: decay by r^240 ~ 1e-4.
    EXPECT_LT(late_peak, 1e-3 * first_peak);
}

TEST(BiquadSimulation, ClipEventsReportedWhenDrivenIntoSwing) {
    auto opamp = sc::opamp_params::ideal();
    opamp.output_swing = 0.1;
    sc_biquad biquad(biquad_caps::table1(), opamp, opamp);
    for (std::size_t n = 0; n < 256; ++n) {
        biquad.step(std::sin(two_pi * static_cast<double>(n) / 16.0), 1.0);
    }
    EXPECT_GT(biquad.clip_events(), 0u);
}

TEST(BiquadSimulation, RejectsNonPositiveCaps) {
    biquad_caps caps = biquad_caps::table1();
    caps.b = 0.0;
    EXPECT_THROW(sc_biquad(caps, sc::opamp_params::ideal(), sc::opamp_params::ideal()),
                 precondition_error);
}

} // namespace
