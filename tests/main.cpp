// Custom test main: the binary doubles as the shard worker.
//
// The supervisor/integration suites spawn real worker processes; pointing
// them at /proc/self/exe with the dispatch sentinel below means the suites
// need no other binary on disk -- they run identically in the sanitizer CI
// jobs, which build with BISTNA_BUILD_EXAMPLES=OFF and would not have the
// shard_worker example available.
#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "shard/worker.hpp"

int main(int argc, char** argv) {
    if (bistna::flag_present(argc, argv, "bistna-shard-worker")) {
        return bistna::shard::worker_main(argc, argv);
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
