// ZOH state-space exactness: the discretized system must reproduce the
// continuous-time response of the transfer function sample-exactly for
// piecewise-constant inputs.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dut/dut.hpp"
#include "dut/filters.hpp"
#include "dut/state_space.hpp"

namespace {

using namespace bistna;
using dut::state_space;
using dut::transfer_function;

std::vector<double> noisy_sine(std::size_t count, std::uint64_t seed) {
    rng noise(seed);
    std::vector<double> samples(count);
    for (std::size_t n = 0; n < count; ++n) {
        samples[n] =
            std::sin(two_pi * static_cast<double>(n) / 96.0) + 0.01 * noise.gaussian();
    }
    return samples;
}

TEST(StateSpace, FirstOrderStepResponseIsExactExponential) {
    // H(s) = 1/(1 + s/w0): step response 1 - e^{-w0 t}.
    const double w0 = two_pi * 100.0;
    transfer_function tf({1.0}, {1.0, 1.0 / w0});
    auto ss = state_space::from_transfer_function(tf);
    const double fs = 10e3;
    ss.prepare(fs);
    // step() returns the output at the current instant, before the held
    // input acts over the coming interval: call n returns y((n-1) Ts).
    double y = 0.0;
    for (int n = 1; n <= 100; ++n) {
        y = ss.step(1.0);
        const double t = static_cast<double>(n - 1) / fs;
        EXPECT_NEAR(y, 1.0 - std::exp(-w0 * t), 1e-9) << "n=" << n;
    }
}

TEST(StateSpace, SecondOrderSineSteadyStateMatchesAnalyticResponse) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    auto ss = state_space::from_transfer_function(tf);
    const double fs = 96.0 * 800.0; // N=96 grid at f_wave = 800 Hz
    ss.prepare(fs);

    const double f = 800.0;
    const std::size_t settle = 20000;
    const std::size_t measure = 960;
    std::vector<double> in_record, out_record;
    for (std::size_t n = 0; n < settle + measure; ++n) {
        const double u = std::sin(two_pi * f * static_cast<double>(n) / fs);
        const double y = ss.step(u);
        if (n >= settle) {
            in_record.push_back(u);
            out_record.push_back(y);
        }
    }
    // Amplitude ratio via RMS (coherent records).
    double rms_in = 0.0, rms_out = 0.0;
    for (std::size_t i = 0; i < in_record.size(); ++i) {
        rms_in += in_record[i] * in_record[i];
        rms_out += out_record[i] * out_record[i];
    }
    const double measured_gain = std::sqrt(rms_out / rms_in);
    const double expected_gain = std::abs(tf.response(f));
    // ZOH droop at 120 samples/period is < 0.04 %; allow 0.5 %.
    EXPECT_NEAR(measured_gain, expected_gain, 5e-3 * expected_gain);
}

TEST(StateSpace, DcGainPreserved) {
    const auto tf = dut::butterworth_lowpass2(1000.0, 2.5);
    auto ss = state_space::from_transfer_function(tf);
    ss.prepare(50e3);
    double y = 0.0;
    for (int n = 0; n < 200000; ++n) {
        y = ss.step(1.0);
    }
    EXPECT_NEAR(y, 2.5, 1e-6);
}

TEST(StateSpace, ResetClearsState) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    auto ss = state_space::from_transfer_function(tf);
    ss.prepare(96000.0);
    for (int n = 0; n < 100; ++n) {
        ss.step(1.0);
    }
    ss.reset();
    EXPECT_NEAR(ss.step(0.0), 0.0, 1e-15);
}

TEST(StateSpace, StepBeforePrepareThrows) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    auto ss = state_space::from_transfer_function(tf);
    EXPECT_THROW((void)ss.step(1.0), precondition_error);
}

TEST(StateSpace, CanonicalFormHasExpectedOrder) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    const auto ss = state_space::from_transfer_function(tf);
    EXPECT_EQ(ss.order(), 2u);
}

TEST(StateSpace, StepBlockBitIdenticalToScalarStepOrderTwo) {
    // The order-2 fast path of step_block claims bit-identity with the
    // scalar step() loop; guard it sample for sample, including the state
    // carry-over across a split into two block calls.
    const auto tf = dut::butterworth_lowpass2(1000.0);
    auto scalar = state_space::from_transfer_function(tf);
    auto block = state_space::from_transfer_function(tf);
    auto split = state_space::from_transfer_function(tf);
    scalar.prepare(96000.0);
    block.prepare(96000.0);
    split.prepare(96000.0);

    const auto input = noisy_sine(1000, 11);
    std::vector<double> expected(input.size());
    for (std::size_t n = 0; n < input.size(); ++n) {
        expected[n] = scalar.step(input[n]);
    }
    std::vector<double> from_block(input.size());
    block.step_block(input, from_block);
    std::vector<double> from_split(input.size());
    const std::span<const double> in(input);
    const std::span<double> out(from_split);
    split.step_block(in.first(333), out.first(333));
    split.step_block(in.subspan(333), out.subspan(333));
    for (std::size_t n = 0; n < input.size(); ++n) {
        ASSERT_EQ(from_block[n], expected[n]) << "block diverged at " << n;
        ASSERT_EQ(from_split[n], expected[n]) << "split block diverged at " << n;
    }
}

TEST(StateSpace, StepBlockBitIdenticalToScalarStepHigherOrder) {
    // (1 + s/w)^3: exercises the generic (non order-2) block path.
    const double w = two_pi * 1000.0;
    transfer_function tf({1.0}, {1.0, 3.0 / w, 3.0 / (w * w), 1.0 / (w * w * w)});
    auto scalar = state_space::from_transfer_function(tf);
    auto block = state_space::from_transfer_function(tf);
    ASSERT_EQ(scalar.order(), 3u);
    scalar.prepare(96000.0);
    block.prepare(96000.0);

    const auto input = noisy_sine(500, 23);
    std::vector<double> from_block(input.size());
    block.step_block(input, from_block);
    for (std::size_t n = 0; n < input.size(); ++n) {
        ASSERT_EQ(from_block[n], scalar.step(input[n])) << "diverged at " << n;
    }
}

TEST(StateSpace, StepBlockRejectsLengthMismatch) {
    auto ss = state_space::from_transfer_function(dut::butterworth_lowpass2(1000.0));
    ss.prepare(96000.0);
    std::vector<double> input(8, 0.0);
    std::vector<double> output(7, 0.0);
    EXPECT_THROW(ss.step_block(input, output), precondition_error);
}

TEST(StateSpace, LinearDutProcessBlockMatchesProcessLoop) {
    // The virtual process_block override must stay semantically identical
    // to per-sample process() (dut.hpp's documented contract).
    dut::linear_dut by_sample(dut::butterworth_lowpass2(1000.0), "scalar");
    dut::linear_dut by_block(dut::butterworth_lowpass2(1000.0), "block");
    by_sample.prepare(96000.0);
    by_block.prepare(96000.0);

    const auto input = noisy_sine(600, 37);
    std::vector<double> from_block(input.size());
    by_block.process_block(input, from_block);
    for (std::size_t n = 0; n < input.size(); ++n) {
        ASSERT_EQ(from_block[n], by_sample.process(input[n])) << "diverged at " << n;
    }
}

} // namespace
