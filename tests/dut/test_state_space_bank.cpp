// The banked DUT pass and the step_block fast paths: both must be
// IEEE-754 bit-identical to the per-sample scalar reference at every order
// and lane count -- the render pipeline's correctness contract.
#include "dut/state_space.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/arena.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace bistna;
using dut::state_space;
using dut::state_space_bank;

/// A stable lowpass realization of the requested order, built directly in
/// (well-conditioned) diagonal form: real poles at -w_i with distinct w_i,
/// slightly perturbed per seed so lanes differ.  Companion form would be
/// numerically hopeless past order 3 at these frequencies.
state_space stable_lowpass(std::size_t order, std::uint64_t seed) {
    rng draw(seed);
    linalg::matrix a(order, order);
    linalg::matrix b(order, 1);
    linalg::matrix c(1, order);
    for (std::size_t i = 0; i < order; ++i) {
        const double w = two_pi * (500.0 + 400.0 * static_cast<double>(i)) *
                         (1.0 + 0.05 * draw.gaussian());
        a(i, i) = -w;
        b(i, 0) = 1.0;
        c(0, i) = (i % 2 == 0 ? 1.0 : -1.0) * w / static_cast<double>(order);
    }
    return state_space(std::move(a), std::move(b), std::move(c), 0.0);
}

std::vector<double> random_record(std::size_t count, std::uint64_t seed) {
    rng draw(seed);
    std::vector<double> record(count);
    for (double& v : record) {
        v = draw.gaussian();
    }
    return record;
}

/// step_block output of a fresh copy of the (order, seed) design, computed
/// with the per-sample step() loop (the pre-fast-path arithmetic).
std::vector<double> per_sample_reference(std::size_t order, std::uint64_t seed,
                                         double fs, const std::vector<double>& input) {
    auto ss = stable_lowpass(order, seed);
    ss.prepare(fs);
    std::vector<double> out(input.size());
    for (std::size_t n = 0; n < input.size(); ++n) {
        out[n] = ss.step(input[n]);
    }
    return out;
}

// Satellite regression: the order 1-4 register fast paths (and the generic
// path above them) pin bit-identity to the per-sample step() loop.
TEST(StateSpaceBank, StepBlockBitIdenticalToPerSampleStepOrders1To6) {
    const double fs = 96.0 * 1000.0;
    const auto input = random_record(4096, 77);
    for (std::size_t order = 1; order <= 6; ++order) {
        const auto expected = per_sample_reference(order, 900 + order, fs, input);

        auto ss = stable_lowpass(order, 900 + order);
        ss.prepare(fs);
        std::vector<double> out(input.size());
        ss.step_block(input, out);
        for (std::size_t n = 0; n < input.size(); ++n) {
            ASSERT_EQ(out[n], expected[n]) << "order " << order << " sample " << n;
        }
    }
}

TEST(StateSpaceBank, CompatibleRequiresPreparedEqualLowOrderLanes) {
    auto a = stable_lowpass(2, 1);
    auto b = stable_lowpass(2, 2);
    auto c = stable_lowpass(3, 3);
    auto high = stable_lowpass(5, 4);

    EXPECT_FALSE(state_space_bank::compatible({}));

    const state_space* unprepared[] = {&a, &b};
    EXPECT_FALSE(state_space_bank::compatible(unprepared));

    a.prepare(96e3);
    b.prepare(96e3);
    c.prepare(96e3);
    high.prepare(96e3);

    const state_space* same_order[] = {&a, &b};
    EXPECT_TRUE(state_space_bank::compatible(same_order));

    const state_space* mixed_order[] = {&a, &c};
    EXPECT_FALSE(state_space_bank::compatible(mixed_order));

    const state_space* too_high[] = {&high};
    EXPECT_FALSE(state_space_bank::compatible(too_high));
}

TEST(StateSpaceBank, LaneMajorPassBitIdenticalToScalarLanes) {
    const double fs = 96.0 * 2500.0;
    const std::size_t samples = 2000;
    for (std::size_t order = 1; order <= 4; ++order) {
        for (std::size_t lanes : {1u, 3u, 8u}) {
            // Scalar reference lanes and bank lanes from the same designs.
            std::vector<std::vector<double>> inputs;
            std::vector<std::vector<double>> expected(lanes);
            std::vector<state_space> bank_lanes;
            bank_lanes.reserve(lanes);
            for (std::size_t l = 0; l < lanes; ++l) {
                const std::uint64_t seed = 100 * order + l;
                inputs.push_back(random_record(samples, 500 + l));
                expected[l] = per_sample_reference(order, seed, fs, inputs[l]);
                bank_lanes.push_back(stable_lowpass(order, seed));
                bank_lanes.back().prepare(fs);
            }

            std::vector<state_space*> lane_ptrs;
            std::vector<const double*> input_ptrs;
            for (std::size_t l = 0; l < lanes; ++l) {
                lane_ptrs.push_back(&bank_lanes[l]);
                input_ptrs.push_back(inputs[l].data());
            }
            ASSERT_TRUE(state_space_bank::compatible({lane_ptrs.data(), lanes}));

            arena scratch;
            state_space_bank bank({lane_ptrs.data(), lanes}, scratch);
            // Two block calls over one bank state (the settle/tail split the
            // render pipeline performs).
            const std::size_t split = samples / 3;
            std::vector<double> lane_major(samples * lanes);
            bank.step_block_lanes(input_ptrs.data(), split, lane_major.data());
            std::vector<const double*> tail_ptrs;
            for (std::size_t l = 0; l < lanes; ++l) {
                tail_ptrs.push_back(inputs[l].data() + split);
            }
            bank.step_block_lanes(tail_ptrs.data(), samples - split,
                                  lane_major.data() + split * lanes);

            for (std::size_t l = 0; l < lanes; ++l) {
                for (std::size_t n = 0; n < samples; ++n) {
                    ASSERT_EQ(lane_major[n * lanes + l], expected[l][n])
                        << "order " << order << " lanes " << lanes << " lane " << l
                        << " sample " << n;
                }
            }

            // State write-back: continuing each lane with the scalar
            // step_block must match a pure-scalar run of the same length.
            const auto more = random_record(256, 9000 + order);
            for (std::size_t l = 0; l < lanes; ++l) {
                auto reference = stable_lowpass(order, 100 * order + l);
                reference.prepare(fs);
                std::vector<double> sink(samples);
                reference.step_block(inputs[l], sink);
                std::vector<double> expect_more(more.size());
                reference.step_block(more, expect_more);

                std::vector<double> got_more(more.size());
                bank_lanes[l].step_block(more, got_more);
                for (std::size_t n = 0; n < more.size(); ++n) {
                    ASSERT_EQ(got_more[n], expect_more[n])
                        << "post-bank state diverged, lane " << l << " sample " << n;
                }
            }
        }
    }
}

TEST(StateSpaceBank, SharedInputPassMatchesLaneMajorPass) {
    const double fs = 96.0 * 1000.0;
    const std::size_t samples = 1500;
    const std::size_t lanes = 5;
    const auto input = random_record(samples, 42);

    std::vector<state_space> a_lanes, b_lanes;
    std::vector<state_space*> a_ptrs, b_ptrs;
    std::vector<const double*> input_ptrs(lanes, input.data());
    for (std::size_t l = 0; l < lanes; ++l) {
        a_lanes.push_back(stable_lowpass(3, 300 + l));
        b_lanes.push_back(stable_lowpass(3, 300 + l));
    }
    for (std::size_t l = 0; l < lanes; ++l) {
        a_lanes[l].prepare(fs);
        b_lanes[l].prepare(fs);
        a_ptrs.push_back(&a_lanes[l]);
        b_ptrs.push_back(&b_lanes[l]);
    }

    arena scratch;
    state_space_bank broadcast({a_ptrs.data(), lanes}, scratch);
    state_space_bank pointers({b_ptrs.data(), lanes}, scratch);
    std::vector<double> out_broadcast(samples * lanes), out_pointers(samples * lanes);
    broadcast.step_block_shared(input.data(), samples, out_broadcast.data());
    pointers.step_block_lanes(input_ptrs.data(), samples, out_pointers.data());
    for (std::size_t i = 0; i < out_broadcast.size(); ++i) {
        ASSERT_EQ(out_broadcast[i], out_pointers[i]) << "element " << i;
    }
}

} // namespace
