#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dut/transfer_function.hpp"

namespace {

using namespace bistna;
using dut::transfer_function;

TEST(TransferFunction, FirstOrderMagnitudeAndPhase) {
    // H(s) = 1/(1 + s/w0), w0 = 2 pi * 1 kHz.
    const double w0 = two_pi * 1000.0;
    transfer_function tf({1.0}, {1.0, 1.0 / w0});
    EXPECT_NEAR(tf.magnitude_db(1000.0), -3.0103, 1e-3);
    EXPECT_NEAR(tf.phase_rad(1000.0), -pi / 4.0, 1e-9);
    EXPECT_NEAR(tf.magnitude_db(10.0), 0.0, 1e-3);
}

TEST(TransferFunction, DcGain) {
    transfer_function tf({3.0}, {1.5, 0.01});
    EXPECT_DOUBLE_EQ(tf.dc_gain(), 2.0);
}

TEST(TransferFunction, CutoffSearchFindsMinus3Db) {
    const double w0 = two_pi * 1234.0;
    transfer_function tf({1.0}, {1.0, std::sqrt(2.0) / w0, 1.0 / (w0 * w0)});
    EXPECT_NEAR(tf.cutoff_frequency(10.0, 1e6), 1234.0, 1.0);
}

TEST(TransferFunction, CutoffThrowsWhenNotBracketed) {
    transfer_function tf({1.0}, {1.0, 1.0 / (two_pi * 1000.0)});
    EXPECT_THROW((void)tf.cutoff_frequency(1.0, 10.0), configuration_error);
}

TEST(TransferFunction, CascadeMultipliesResponses) {
    const double w0 = two_pi * 1000.0;
    transfer_function stage({1.0}, {1.0, 1.0 / w0});
    const auto cascade = stage * stage;
    const auto direct = cascade.response(500.0);
    const auto expected = stage.response(500.0) * stage.response(500.0);
    EXPECT_NEAR(std::abs(direct - expected), 0.0, 1e-12);
    EXPECT_EQ(cascade.order(), 2u);
}

TEST(TransferFunction, ImproperRejected) {
    EXPECT_THROW(transfer_function({1.0, 1.0}, {1.0}), precondition_error);
}

TEST(TransferFunction, PolynomialHelpers) {
    const auto product = dut::multiply({1.0, 1.0}, {1.0, -1.0});
    ASSERT_EQ(product.size(), 3u);
    EXPECT_DOUBLE_EQ(product[0], 1.0);
    EXPECT_DOUBLE_EQ(product[1], 0.0);
    EXPECT_DOUBLE_EQ(product[2], -1.0);
    const auto value = dut::eval_poly({1.0, 2.0, 3.0}, {2.0, 0.0});
    EXPECT_DOUBLE_EQ(value.real(), 17.0);
}

} // namespace
