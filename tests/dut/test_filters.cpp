// Active-RC designs: nominal values hit the specs, tolerance draws move
// the cutoff the way 1 % components would.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;

TEST(Filters, Butterworth2HasMaximallyFlatShape) {
    const auto tf = dut::butterworth_lowpass2(1000.0);
    EXPECT_NEAR(tf.magnitude_db(10.0), 0.0, 1e-3);
    EXPECT_NEAR(tf.magnitude_db(1000.0), -3.0103, 2e-2);
    // -40 dB/decade asymptote.
    EXPECT_NEAR(tf.magnitude_db(10000.0) - tf.magnitude_db(100000.0), 40.0, 0.5);
}

TEST(Filters, SallenKeyNominalMatchesSpecs) {
    const double q = 1.0 / std::sqrt(2.0);
    const auto components = dut::design_sallen_key(1000.0, q);
    const auto tf = dut::sallen_key_lowpass(components);
    EXPECT_NEAR(tf.dc_gain(), 1.0, 1e-12);
    EXPECT_NEAR(tf.cutoff_frequency(10.0, 1e6), 1000.0, 2.0);
    // Matches the ideal Butterworth prototype across the band.
    const auto proto = dut::butterworth_lowpass2(1000.0);
    for (double f : {100.0, 500.0, 1000.0, 3000.0, 20000.0}) {
        EXPECT_NEAR(tf.magnitude_db(f), proto.magnitude_db(f), 0.05) << f;
    }
}

TEST(Filters, ToleranceDrawsSpreadCutoff) {
    const double q = 1.0 / std::sqrt(2.0);
    const auto nominal = dut::design_sallen_key(1000.0, q);
    rng generator(11);
    double min_fc = 1e9, max_fc = 0.0;
    for (int i = 0; i < 50; ++i) {
        const auto drawn = dut::perturb(nominal, 0.01, generator);
        const auto tf = dut::sallen_key_lowpass(drawn);
        const double fc = tf.cutoff_frequency(10.0, 1e6);
        min_fc = std::min(min_fc, fc);
        max_fc = std::max(max_fc, fc);
    }
    EXPECT_LT(min_fc, 1000.0);
    EXPECT_GT(max_fc, 1000.0);
    EXPECT_LT(max_fc - min_fc, 120.0); // ~1 % parts -> a few % fc spread
}

TEST(Filters, MfbLowpassGainAndOrder) {
    const auto components = dut::design_mfb(1000.0, 1.0 / std::sqrt(2.0), 2.0);
    const auto tf = dut::mfb_lowpass(components);
    EXPECT_NEAR(tf.dc_gain(), -2.0, 1e-9); // inverting stage
    EXPECT_NEAR(std::abs(tf.response(1000.0)), 2.0 / std::sqrt(2.0), 0.05);
}

TEST(Filters, TowThomasBandpassPeaksAtCenter) {
    const auto tf = dut::tow_thomas_bandpass(2000.0, 8.0);
    const double peak = std::abs(tf.response(2000.0));
    EXPECT_NEAR(peak, 1.0, 1e-6);
    EXPECT_LT(std::abs(tf.response(500.0)), 0.3);
    EXPECT_LT(std::abs(tf.response(8000.0)), 0.3);
}

TEST(Filters, PaperDutDescriptionAndResponse) {
    const auto dut_instance = dut::make_paper_dut(0.01, 7);
    EXPECT_NE(dut_instance->description().find("1 kHz"), std::string::npos);
    // Drawn instance should be within a few percent of the nominal 1 kHz.
    const double g100 = std::abs(dut_instance->ideal_response(100.0));
    const double g10k = std::abs(dut_instance->ideal_response(10000.0));
    EXPECT_NEAR(g100, 1.0, 0.02);
    EXPECT_LT(g10k, 0.02);
}

TEST(Filters, InvalidSpecsThrow) {
    EXPECT_THROW((void)dut::lowpass2(-1.0, 0.7), precondition_error);
    EXPECT_THROW((void)dut::lowpass2(1000.0, 0.0), precondition_error);
    EXPECT_THROW((void)dut::design_mfb(1000.0, 0.7, 0.0), precondition_error);
}

} // namespace
