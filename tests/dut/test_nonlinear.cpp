// Polynomial nonlinearity: HD calibration formulas and the decorated DUT.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "dsp/goertzel.hpp"
#include "dut/filters.hpp"
#include "dut/nonlinear.hpp"

namespace {

using namespace bistna;
using dut::polynomial_nonlinearity;

TEST(Nonlinear, TargetHdCalibrationProducesRequestedLevels) {
    const double amplitude = 0.3;
    const auto poly = polynomial_nonlinearity::for_target_hd(amplitude, -50.0, -60.0);

    // Run a pure tone through and extract harmonics coherently.
    const std::size_t n_per_period = 96;
    const std::size_t periods = 64;
    std::vector<double> record;
    record.reserve(n_per_period * periods);
    for (std::size_t n = 0; n < n_per_period * periods; ++n) {
        const double x =
            amplitude * std::sin(two_pi * static_cast<double>(n) / n_per_period);
        record.push_back(poly.apply(x));
    }
    const double a1 = dsp::estimate_tone(record, 1.0 / 96.0, 1.0).amplitude;
    const double a2 = dsp::estimate_tone(record, 2.0 / 96.0, 1.0).amplitude;
    const double a3 = dsp::estimate_tone(record, 3.0 / 96.0, 1.0).amplitude;
    EXPECT_NEAR(20.0 * std::log10(a2 / a1), -50.0, 0.2);
    EXPECT_NEAR(20.0 * std::log10(a3 / a1), -60.0, 0.2);
}

TEST(Nonlinear, ZeroCoefficientsAreTransparent) {
    const polynomial_nonlinearity unity(0.0, 0.0);
    for (double x : {-0.5, 0.0, 0.123, 0.9}) {
        EXPECT_DOUBLE_EQ(unity.apply(x), x);
    }
}

TEST(Nonlinear, ClipLevelLimitsOutput) {
    const polynomial_nonlinearity clipper(0.0, 0.0, 0.4);
    EXPECT_DOUBLE_EQ(clipper.apply(3.0), 0.4);
    EXPECT_DOUBLE_EQ(clipper.apply(-3.0), -0.4);
}

TEST(Nonlinear, DecoratedDutKeepsLinearResponse) {
    auto core = dut::make_paper_dut(0.0, 1);
    const auto reference = core->ideal_response(700.0);
    dut::nonlinear_dut wrapped(std::move(core), polynomial_nonlinearity(1e-3, 1e-3),
                               polynomial_nonlinearity(1e-3, 1e-3));
    const auto response = wrapped.ideal_response(700.0);
    EXPECT_NEAR(std::abs(response - reference), 0.0, 1e-12);
    EXPECT_NE(wrapped.description().find("nonlinearity"), std::string::npos);
}

TEST(Nonlinear, PaperDistortionDutProducesTargetHd) {
    auto device = dut::make_paper_dut_with_distortion(0.0, 7);
    const double fs = 96.0 * 1600.0;
    device->prepare(fs);

    const double input_amplitude = 0.4; // 800 mVpp
    const std::size_t settle = 96 * 64;
    const std::size_t measure = 96 * 256;
    std::vector<double> record;
    record.reserve(measure);
    for (std::size_t n = 0; n < settle + measure; ++n) {
        const double u =
            input_amplitude * std::sin(two_pi * 1600.0 * static_cast<double>(n) / fs);
        const double y = device->process(u);
        if (n >= settle) {
            record.push_back(y);
        }
    }
    const double a1 = dsp::estimate_tone(record, 1600.0, fs).amplitude;
    const double a2 = dsp::estimate_tone(record, 3200.0, fs).amplitude;
    const double a3 = dsp::estimate_tone(record, 4800.0, fs).amplitude;
    EXPECT_NEAR(20.0 * std::log10(a2 / a1), -56.0, 1.0);
    EXPECT_NEAR(20.0 * std::log10(a3 / a1), -62.0, 1.5);
}

} // namespace
