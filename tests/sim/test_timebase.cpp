// The clocking invariants of Fig. 1: f_gen = f_eva/6, f_wave = f_eva/96,
// N = 96 independent of the master clock ("inherent synchronization").
#include "common/error.hpp"
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "sim/clock_divider.hpp"
#include "sim/timebase.hpp"

namespace {

using namespace bistna;
using sim::timebase;

TEST(Timebase, PaperFrequencyChain) {
    // Fig. 8: f_wave = 62.5 kHz needs f_gen = 1 MHz, f_eva = 6 MHz.
    const timebase tb(megahertz(6.0));
    EXPECT_DOUBLE_EQ(tb.generator_clock().value, 1e6);
    EXPECT_DOUBLE_EQ(tb.wave_frequency().value, 62.5e3);
    EXPECT_DOUBLE_EQ(tb.sample_period().value, 1.0 / 6e6);
}

TEST(Timebase, OversamplingRatioFixedByConstruction) {
    for (double f : {100.0, 1000.0, 20000.0, 62500.0}) {
        const auto tb = timebase::for_wave_frequency(hertz{f});
        EXPECT_DOUBLE_EQ(tb.master() / tb.wave_frequency(), 96.0) << f;
        EXPECT_EQ(timebase::samples_per_period(), 96u);
    }
}

TEST(Timebase, ForWaveFrequencyInverts) {
    const auto tb = timebase::for_wave_frequency(kilohertz(1.0));
    EXPECT_DOUBLE_EQ(tb.master().value, 96e3);
    EXPECT_DOUBLE_EQ(tb.wave_period().value, 1e-3);
}

TEST(Timebase, SamplesForPeriods) {
    const auto tb = timebase::for_wave_frequency(kilohertz(1.0));
    EXPECT_EQ(tb.samples_for_periods(200), 19200u);
}

TEST(Timebase, RejectsNonPositive) {
    EXPECT_THROW(timebase(hertz{0.0}), precondition_error);
    EXPECT_THROW(timebase::for_wave_frequency(hertz{-1.0}), precondition_error);
}

TEST(ClockDivider, DividesBySix) {
    sim::clock_divider divider(6);
    int fires = 0;
    for (int i = 0; i < 60; ++i) {
        fires += divider.tick();
    }
    EXPECT_EQ(fires, 10);
}

TEST(ClockDivider, FiresOnFirstTickAfterReset) {
    sim::clock_divider divider(4);
    EXPECT_TRUE(divider.tick());
    EXPECT_FALSE(divider.tick());
    divider.reset();
    EXPECT_TRUE(divider.tick());
}

TEST(ClockDivider, RejectsZeroRatio) {
    EXPECT_THROW(sim::clock_divider(0), precondition_error);
}

} // namespace
