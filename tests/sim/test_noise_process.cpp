#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.hpp"
#include "sim/noise.hpp"
#include "sim/process.hpp"

namespace {

using namespace bistna;

TEST(Noise, KtcFormula) {
    // kT/C at 300 K for 1 pF: ~64.3 uV rms.
    EXPECT_NEAR(sim::ktc_noise_rms(1e-12), 64.3e-6, 0.5e-6);
    // Quadruple the cap -> half the noise.
    EXPECT_NEAR(sim::ktc_noise_rms(4e-12), sim::ktc_noise_rms(1e-12) / 2.0, 1e-9);
    EXPECT_THROW((void)sim::ktc_noise_rms(0.0), precondition_error);
}

TEST(Noise, SourceStatisticsMatchRms) {
    sim::noise_source source(1e-3, rng(4));
    running_stats stats;
    for (int i = 0; i < 100000; ++i) {
        stats.add(source.sample());
    }
    EXPECT_NEAR(stats.mean(), 0.0, 2e-5);
    EXPECT_NEAR(stats.stddev(), 1e-3, 2e-5);
}

TEST(Noise, SilentSourceIsExactlyZero) {
    sim::noise_source source(0.0, rng(4));
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(source.sample(), 0.0);
    }
}

TEST(Process, IdealParamsDrawNominals) {
    sim::process_sampler sampler(sim::process_params::ideal(), rng(8));
    EXPECT_DOUBLE_EQ(sampler.matched_capacitor(5.194), 5.194);
    EXPECT_DOUBLE_EQ(sampler.comparator_offset(), 0.0);
    EXPECT_DOUBLE_EQ(sampler.opamp_gain_db(72.0), 72.0);
}

TEST(Process, MismatchSigmaRespected) {
    auto params = sim::process_params::ideal();
    params.cap_mismatch_sigma = 1e-3;
    sim::process_sampler sampler(params, rng(8));
    running_stats stats;
    for (int i = 0; i < 20000; ++i) {
        stats.add(sampler.matched_capacitor(1.0) - 1.0);
    }
    EXPECT_NEAR(stats.stddev(), 1e-3, 5e-5);
    EXPECT_NEAR(stats.mean(), 0.0, 5e-5);
}

TEST(Process, CornersShiftOpampGain) {
    auto params = sim::process_params::ideal();
    params.process_corner = sim::corner::slow;
    sim::process_sampler slow(params, rng(8));
    params.process_corner = sim::corner::fast;
    sim::process_sampler fast(params, rng(8));
    EXPECT_LT(slow.opamp_gain_db(72.0), 72.0);
    EXPECT_GT(fast.opamp_gain_db(72.0), 72.0);
}

TEST(Process, MatchedCapacitorsVectorForm) {
    auto params = sim::process_params::cmos035();
    sim::process_sampler sampler(params, rng(9));
    const auto drawn = sampler.matched_capacitors({1.0, 2.0, 3.0});
    ASSERT_EQ(drawn.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(drawn[i], static_cast<double>(i + 1), 0.01 * static_cast<double>(i + 1));
    }
}

} // namespace
