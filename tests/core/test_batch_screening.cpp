// Bit-identity of the lockstep (batch_lanes) screening and sweep paths
// against the scalar reference: any lane count, any thread count, dice
// counts that don't divide evenly, and lanes that fail the self-test.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/screening.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::screening_report;
using core::spec_mask;
using core::sweep_engine;
using core::sweep_engine_options;

analyzer_settings fast_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 100;
    return settings;
}

analyzer_settings calibrated_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    settings.evaluator.calibration_periods = 256; // keep the test fast
    settings.periods = 64;
    return settings;
}

core::board_factory make_factory(double sigma) {
    return [sigma](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(sigma, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

/// Factory producing one die with broken stimulus circuitry (seed 3).
core::board_factory make_flawed_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(seed == 3 ? millivolt(50.0) : millivolt(150.0));
        return board;
    };
}

void expect_reports_identical(const std::vector<screening_report>& a,
                              const std::vector<screening_report>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t die = 0; die < a.size(); ++die) {
        EXPECT_EQ(a[die].self_test_passed, b[die].self_test_passed) << "die " << die;
        EXPECT_EQ(a[die].stimulus_volts, b[die].stimulus_volts) << "die " << die;
        EXPECT_EQ(a[die].passed, b[die].passed) << "die " << die;
        ASSERT_EQ(a[die].limits.size(), b[die].limits.size()) << "die " << die;
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            EXPECT_EQ(a[die].limits[i].measured_db, b[die].limits[i].measured_db)
                << "die " << die << " limit " << i;
            EXPECT_EQ(a[die].limits[i].measured_bounds_db,
                      b[die].limits[i].measured_bounds_db)
                << "die " << die << " limit " << i;
            EXPECT_EQ(a[die].limits[i].passed, b[die].limits[i].passed);
        }
    }
}

std::vector<screening_report> screen_with_lanes(const core::board_factory& factory,
                                                const analyzer_settings& settings,
                                                std::size_t dice, std::size_t threads,
                                                std::size_t lanes) {
    sweep_engine_options options;
    options.threads = threads;
    options.batch_lanes = lanes;
    sweep_engine engine(factory, settings, options);
    return engine.screen_batch(spec_mask::paper_lowpass(), dice, 1);
}

TEST(BatchScreening, LaneCountsBitIdenticalToScalarPath) {
    const auto factory = make_factory(0.03);
    const auto settings = fast_settings();
    const std::size_t dice = 10; // deliberately not a multiple of the lane counts
    const auto scalar = screen_with_lanes(factory, settings, dice, 2, 1);
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 4));
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 8));
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 1, 4));
}

TEST(BatchScreening, CalibratedOffsetModeBitIdenticalAcrossLanes) {
    const auto factory = make_factory(0.02);
    const auto settings = calibrated_settings();
    const std::size_t dice = 6;
    const auto scalar = screen_with_lanes(factory, settings, dice, 2, 1);
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 4));
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 6));
}

TEST(BatchScreening, SelfTestFailureLaneDoesNotPerturbNeighbours) {
    const auto factory = make_flawed_factory();
    const auto settings = fast_settings();
    const std::size_t dice = 8; // die seed 3 fails its stimulus self-test
    const auto scalar = screen_with_lanes(factory, settings, dice, 1, 1);
    ASSERT_FALSE(scalar[2].self_test_passed); // seeds start at 1
    EXPECT_TRUE(scalar[2].limits.empty());    // DUT data never trusted
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 4));
    expect_reports_identical(scalar, screen_with_lanes(factory, settings, dice, 2, 3));
}

TEST(BatchScreening, ScreenLotParallelMatchesSequentialScreenLot) {
    const auto factory = make_factory(0.04);
    const auto settings = fast_settings();
    const auto mask = spec_mask::paper_lowpass();
    const auto sequential = core::screen_lot(factory, settings, mask, 9, 1);
    const auto batched = core::screen_lot_parallel(factory, settings, mask, 9, 1,
                                                   /*threads=*/2, /*batch_lanes=*/4);
    EXPECT_EQ(sequential.dice, batched.dice);
    EXPECT_EQ(sequential.passed, batched.passed);
    ASSERT_EQ(sequential.gain_distributions.size(), batched.gain_distributions.size());
    for (std::size_t i = 0; i < sequential.gain_distributions.size(); ++i) {
        EXPECT_EQ(sequential.gain_distributions[i].mean, batched.gain_distributions[i].mean);
        EXPECT_EQ(sequential.gain_distributions[i].stddev,
                  batched.gain_distributions[i].stddev);
    }
}

TEST(BatchScreening, BodeSweepLanesBitIdenticalToScalarPath) {
    const auto factory = make_factory(0.01);
    auto settings = fast_settings();
    const auto frequencies = core::log_spaced(hertz{100.0}, kilohertz(10.0), 11);

    auto run_with_lanes = [&](std::size_t lanes) {
        sweep_engine_options options;
        options.threads = 2;
        options.batch_lanes = lanes;
        sweep_engine engine(factory, settings, options);
        return engine.run(frequencies);
    };

    const auto scalar = run_with_lanes(1);
    for (std::size_t lanes : {std::size_t{4}, std::size_t{5}}) {
        const auto batched = run_with_lanes(lanes);
        ASSERT_EQ(scalar.points.size(), batched.points.size());
        for (std::size_t i = 0; i < scalar.points.size(); ++i) {
            EXPECT_EQ(scalar.points[i].gain_db, batched.points[i].gain_db)
                << "lanes " << lanes << " point " << i;
            EXPECT_EQ(scalar.points[i].gain_db_bounds, batched.points[i].gain_db_bounds);
            EXPECT_EQ(scalar.points[i].phase_deg, batched.points[i].phase_deg);
            EXPECT_EQ(scalar.points[i].phase_deg_bounds, batched.points[i].phase_deg_bounds);
            EXPECT_EQ(scalar.points[i].ideal_gain_db, batched.points[i].ideal_gain_db);
        }
    }
}

TEST(BatchScreening, BodeSweepCalibratedOffsetModeBitIdentical) {
    const auto factory = make_factory(0.02);
    const auto settings = calibrated_settings();
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(8.0), 6);

    auto run_with_lanes = [&](std::size_t lanes) {
        sweep_engine_options options;
        options.threads = 2;
        options.batch_lanes = lanes;
        sweep_engine engine(factory, settings, options);
        return engine.run(frequencies);
    };
    const auto scalar = run_with_lanes(1);
    const auto batched = run_with_lanes(3);
    ASSERT_EQ(scalar.points.size(), batched.points.size());
    for (std::size_t i = 0; i < scalar.points.size(); ++i) {
        EXPECT_EQ(scalar.points[i].gain_db, batched.points[i].gain_db) << "point " << i;
        EXPECT_EQ(scalar.points[i].gain_db_bounds, batched.points[i].gain_db_bounds);
        EXPECT_EQ(scalar.points[i].phase_deg, batched.points[i].phase_deg);
    }
}

// recalibrate_per_point has no shared calibration to batch against: the
// engine must fall back to the scalar path and still produce identical
// results at any batch_lanes setting.
TEST(BatchScreening, BodeSweepRecalibratePerPointFallsBackToScalar) {
    const auto factory = make_factory(0.01);
    auto settings = fast_settings();
    settings.recalibrate_per_point = true;
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(5.0), 5);

    auto run_with_lanes = [&](std::size_t lanes) {
        sweep_engine_options options;
        options.threads = 2;
        options.batch_lanes = lanes;
        sweep_engine engine(factory, settings, options);
        return engine.run(frequencies);
    };
    const auto scalar = run_with_lanes(1);
    const auto batched = run_with_lanes(4);
    ASSERT_EQ(scalar.points.size(), batched.points.size());
    for (std::size_t i = 0; i < scalar.points.size(); ++i) {
        EXPECT_EQ(scalar.points[i].gain_db, batched.points[i].gain_db);
        EXPECT_EQ(scalar.points[i].phase_deg, batched.points[i].phase_deg);
    }
}

} // namespace
