// Stimulus-record cache: render-once semantics, key correctness
// (amplitude / settle / design changes invalidate), bit-identity of cached
// vs. uncached renders and sweeps, and thread safety of concurrent lookups.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/board.hpp"
#include "core/stimulus_cache.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::demonstrator_board;
using core::signal_path;
using core::stimulus_cache;
using core::stimulus_key;

demonstrator_board make_board(gen::generator_params params = gen::generator_params::ideal()) {
    demonstrator_board board(params, dut::make_paper_dut(0.01, 7));
    board.set_amplitude(millivolt(150.0));
    return board;
}

stimulus_cache::record make_record(double value, std::size_t length = 4) {
    return stimulus_cache::record(length, value);
}

TEST(StimulusCache, RendersOnceThenHits) {
    stimulus_cache cache;
    stimulus_key key{1, 2, 3, 4};
    std::size_t renders = 0;
    const auto render = [&] {
        ++renders;
        return make_record(1.5);
    };
    const auto first = cache.get_or_render(key, render);
    const auto second = cache.get_or_render(key, render);
    EXPECT_EQ(renders, 1u);
    EXPECT_EQ(first.get(), second.get()); // literally the same record
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(StimulusCache, DistinctKeysRenderSeparately) {
    stimulus_cache cache;
    std::size_t renders = 0;
    const auto render = [&] {
        ++renders;
        return make_record(static_cast<double>(renders));
    };
    (void)cache.get_or_render(stimulus_key{1, 0, 0, 0}, render);
    (void)cache.get_or_render(stimulus_key{2, 0, 0, 0}, render);
    EXPECT_EQ(renders, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(StimulusCache, EvictsOldestBeyondCapacity) {
    stimulus_cache cache(2);
    std::size_t renders = 0;
    const auto render = [&] {
        ++renders;
        return make_record(0.0);
    };
    (void)cache.get_or_render(stimulus_key{1, 0, 0, 0}, render);
    (void)cache.get_or_render(stimulus_key{2, 0, 0, 0}, render);
    (void)cache.get_or_render(stimulus_key{3, 0, 0, 0}, render); // evicts key 1
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    (void)cache.get_or_render(stimulus_key{1, 0, 0, 0}, render); // re-render
    EXPECT_EQ(renders, 4u);
}

TEST(StimulusCache, RenderFailureForgetsEntrySoRetrySucceeds) {
    stimulus_cache cache;
    stimulus_key key{9, 0, 0, 0};
    EXPECT_THROW((void)cache.get_or_render(
                     key, []() -> stimulus_cache::record {
                         throw configuration_error("render exploded");
                     }),
                 configuration_error);
    EXPECT_EQ(cache.stats().entries, 0u);
    const auto record = cache.get_or_render(key, [] { return make_record(2.0); });
    EXPECT_EQ(record->front(), 2.0);
}

TEST(StimulusCache, ConcurrentSameKeyRendersExactlyOnce) {
    stimulus_cache cache;
    stimulus_key key{5, 0, 0, 0};
    std::atomic<int> renders{0};
    const auto render = [&] {
        renders.fetch_add(1);
        return make_record(3.25, 1024);
    };
    std::vector<std::thread> workers;
    std::vector<stimulus_cache::record_ptr> results(8);
    for (std::size_t t = 0; t < results.size(); ++t) {
        workers.emplace_back([&, t] { results[t] = cache.get_or_render(key, render); });
    }
    for (auto& worker : workers) {
        worker.join();
    }
    EXPECT_EQ(renders.load(), 1);
    for (const auto& result : results) {
        ASSERT_NE(result, nullptr);
        EXPECT_EQ(result.get(), results.front().get());
    }
}

TEST(StimulusCache, BoardKeyChangesWithAmplitudeAndSettleAndPeriodsAndDesign) {
    auto board = make_board();
    const auto base = board.stimulus_cache_key(200, 32);
    EXPECT_EQ(base, board.stimulus_cache_key(200, 32)); // stable

    board.set_amplitude(millivolt(151.0));
    EXPECT_NE(board.stimulus_cache_key(200, 32), base) << "amplitude must invalidate";
    board.set_amplitude(millivolt(150.0));
    EXPECT_EQ(board.stimulus_cache_key(200, 32), base);

    EXPECT_NE(board.stimulus_cache_key(200, 33), base) << "settle must invalidate";
    EXPECT_NE(board.stimulus_cache_key(201, 32), base) << "periods must invalidate";

    auto params = gen::generator_params::ideal();
    params.seed = 2; // a different die of the same design
    auto other = demonstrator_board(params, dut::make_paper_dut(0.01, 7));
    other.set_amplitude(millivolt(150.0));
    // Ideal process draws nothing, but the fingerprint still covers the seed.
    EXPECT_NE(other.stimulus_cache_key(200, 32), base) << "design seed must invalidate";
}

TEST(StimulusCache, CachedRenderBitIdenticalToUncached) {
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(2.0));
    for (const bool ideal : {true, false}) {
        auto params = ideal ? gen::generator_params::ideal() : gen::generator_params{};
        auto uncached_board = make_board(params);
        auto cached_board = make_board(params);
        cached_board.set_stimulus_cache(std::make_shared<stimulus_cache>());

        for (const auto path : {signal_path::calibration, signal_path::through_dut}) {
            const auto expected = uncached_board.render(tb, 8, path, 4);
            const auto first = cached_board.render(tb, 8, path, 4); // miss or reuse
            const auto second = cached_board.render(tb, 8, path, 4); // guaranteed hit
            ASSERT_EQ(expected.size(), first.size());
            for (std::size_t i = 0; i < expected.size(); ++i) {
                ASSERT_EQ(expected[i], first[i]) << "ideal=" << ideal << " sample " << i;
                ASSERT_EQ(expected[i], second[i]) << "ideal=" << ideal << " sample " << i;
            }
        }
        const auto stats = cached_board.shared_stimulus_cache()->stats();
        EXPECT_EQ(stats.misses, 1u); // calibration + DUT paths share one staircase
        EXPECT_EQ(stats.hits, 3u);
    }
}

TEST(StimulusCache, RenderStagesComposeToRender) {
    auto board = make_board(gen::generator_params{}); // full non-ideal defaults
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto staircase = board.render_stimulus(8, 4);
    ASSERT_EQ(staircase.size(), tb.samples_for_periods(12));
    // The staircase holds each generator value for 6 f_eva samples.
    for (std::size_t n = 0; n < staircase.size(); n += 6) {
        for (std::size_t j = 1; j < 6 && n + j < staircase.size(); ++j) {
            ASSERT_EQ(staircase[n], staircase[n + j]) << "hold broken at " << n + j;
        }
    }
    for (const auto path : {signal_path::calibration, signal_path::through_dut}) {
        const auto composed = board.render_from_stimulus(staircase, tb, 8, path, 4);
        const auto direct = board.render(tb, 8, path, 4);
        ASSERT_EQ(composed.size(), direct.size());
        for (std::size_t i = 0; i < composed.size(); ++i) {
            ASSERT_EQ(composed[i], direct[i]);
        }
    }
}

TEST(StimulusCache, RenderFromStimulusRejectsWrongLength) {
    auto board = make_board();
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto staircase = board.render_stimulus(8, 4);
    EXPECT_THROW(
        (void)board.render_from_stimulus(staircase, tb, 8, signal_path::calibration, 5),
        precondition_error);
}

core::board_factory paper_factory() {
    return [](std::uint64_t seed) {
        demonstrator_board board(gen::generator_params::ideal(),
                                 dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

core::analyzer_settings fast_settings() {
    core::analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 50;
    settings.settle_periods = 16;
    return settings;
}

void expect_bit_identical(const std::vector<core::frequency_point>& a,
                          const std::vector<core::frequency_point>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].f_wave.value, b[i].f_wave.value) << "point " << i;
        EXPECT_EQ(a[i].gain_db, b[i].gain_db) << "point " << i;
        EXPECT_EQ(a[i].gain_db_bounds, b[i].gain_db_bounds) << "point " << i;
        EXPECT_EQ(a[i].phase_deg, b[i].phase_deg) << "point " << i;
        EXPECT_EQ(a[i].phase_deg_bounds, b[i].phase_deg_bounds) << "point " << i;
    }
}

TEST(StimulusCache, SweepBitIdenticalWithAndWithoutCache) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(4.0), 6);

    core::sweep_engine_options cached_options;
    cached_options.threads = 2;
    core::sweep_engine cached(paper_factory(), fast_settings(), cached_options);

    core::sweep_engine_options uncached_options;
    uncached_options.threads = 2;
    uncached_options.share_stimulus = false;
    core::sweep_engine uncached(paper_factory(), fast_settings(), uncached_options);

    const auto with_cache = cached.run(frequencies);
    const auto without_cache = uncached.run(frequencies);
    expect_bit_identical(with_cache.points, without_cache.points);

    // One staircase serves the shared calibration and every point.
    const auto stats = cached.stimulus_stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, frequencies.size());
    EXPECT_EQ(uncached.stimulus_stats().misses, 0u);
}

TEST(StimulusCache, CachedSweepBitIdenticalAcrossThreadCounts) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(4.0), 6);
    std::vector<core::sweep_report> reports;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        core::sweep_engine_options options;
        options.threads = threads;
        core::sweep_engine engine(paper_factory(), fast_settings(), options);
        reports.push_back(engine.run(frequencies));
    }
    expect_bit_identical(reports[0].points, reports[1].points);
}

TEST(StimulusCache, ScreenLotUnchangedByCache) {
    const auto mask = core::spec_mask::paper_lowpass();
    const std::size_t dice = 4;

    core::sweep_engine_options cached_options;
    cached_options.threads = 2;
    core::sweep_engine cached(paper_factory(), fast_settings(), cached_options);

    core::sweep_engine_options uncached_options;
    uncached_options.threads = 2;
    uncached_options.share_stimulus = false;
    core::sweep_engine uncached(paper_factory(), fast_settings(), uncached_options);

    const auto with_cache = cached.screen_batch(mask, dice, /*first_seed=*/3);
    const auto without_cache = uncached.screen_batch(mask, dice, /*first_seed=*/3);
    ASSERT_EQ(with_cache.size(), without_cache.size());
    for (std::size_t die = 0; die < dice; ++die) {
        EXPECT_EQ(with_cache[die].passed, without_cache[die].passed);
        EXPECT_EQ(with_cache[die].stimulus_volts, without_cache[die].stimulus_volts);
        ASSERT_EQ(with_cache[die].limits.size(), without_cache[die].limits.size());
        for (std::size_t i = 0; i < with_cache[die].limits.size(); ++i) {
            EXPECT_EQ(with_cache[die].limits[i].measured_db,
                      without_cache[die].limits[i].measured_db);
        }
    }
    // All dice share the same generator design here, so the whole lot needs
    // exactly one staircase render.
    EXPECT_EQ(cached.stimulus_stats().misses, 1u);
    EXPECT_GT(cached.stimulus_stats().hits, 0u);
}

} // namespace
