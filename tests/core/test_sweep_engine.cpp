// Parallel batch sweep engine: determinism across thread counts, agreement
// with the sequential reference paths, and failure propagation.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/sweep.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::board_factory;
using core::frequency_point;
using core::spec_mask;
using core::sweep_engine;
using core::sweep_engine_options;

analyzer_settings fast_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 50;
    settings.settle_periods = 16;
    return settings;
}

board_factory paper_factory() {
    return [](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(0.01, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

sweep_engine engine_with_threads(std::size_t threads) {
    sweep_engine_options options;
    options.threads = threads;
    return sweep_engine(paper_factory(), fast_settings(), options);
}

void expect_bit_identical(const std::vector<frequency_point>& a,
                          const std::vector<frequency_point>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].f_wave.value, b[i].f_wave.value) << "point " << i;
        EXPECT_EQ(a[i].gain_db, b[i].gain_db) << "point " << i;
        EXPECT_EQ(a[i].gain_db_bounds, b[i].gain_db_bounds) << "point " << i;
        EXPECT_EQ(a[i].phase_deg, b[i].phase_deg) << "point " << i;
        EXPECT_EQ(a[i].phase_deg_bounds, b[i].phase_deg_bounds) << "point " << i;
        EXPECT_EQ(a[i].ideal_gain_db, b[i].ideal_gain_db) << "point " << i;
        EXPECT_EQ(a[i].ideal_phase_deg, b[i].ideal_phase_deg) << "point " << i;
    }
}

TEST(SweepEngine, BitIdenticalAcrossThreadCounts) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(4.0), 7);

    const auto serial = engine_with_threads(1).run(frequencies);
    const auto two = engine_with_threads(2).run(frequencies);
    const auto eight = engine_with_threads(8).run(frequencies);

    EXPECT_EQ(serial.threads_used, 1u);
    EXPECT_EQ(two.threads_used, 2u);
    EXPECT_EQ(eight.threads_used, 8u);
    expect_bit_identical(serial.points, two.points);
    expect_bit_identical(serial.points, eight.points);
}

TEST(SweepEngine, PointsComeBackInFrequencyOrder) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(4.0), 5);
    const auto report = engine_with_threads(4).run(frequencies);
    ASSERT_EQ(report.points.size(), frequencies.size());
    for (std::size_t i = 0; i < frequencies.size(); ++i) {
        EXPECT_EQ(report.points[i].f_wave.value, frequencies[i].value);
    }
}

TEST(SweepEngine, ReportAggregatesMatchPoints) {
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(2.0), 4);
    const auto report = engine_with_threads(2).run(frequencies);

    double worst = 0.0;
    for (const auto& p : report.points) {
        worst = std::max(worst, std::abs(p.gain_db - p.ideal_gain_db));
    }
    EXPECT_EQ(report.worst_gain_error_db, worst);
    EXPECT_EQ(report.gain_error_db_summary.count, frequencies.size());
    EXPECT_GE(report.max_gain_bound_width_db, 0.0);
    // The eq. (4) bounds are guaranteed enclosures, so the drawn-instance
    // truth must sit inside every interval.
    EXPECT_EQ(report.gain_bound_violations, 0u);
    EXPECT_GT(report.elapsed_seconds, 0.0);
}

TEST(SweepEngine, ScreenLotMatchesSequentialReference) {
    const auto mask = spec_mask::paper_lowpass();
    const std::size_t dice = 5;

    const auto sequential =
        core::screen_lot(paper_factory(), fast_settings(), mask, dice, /*first_seed=*/3);
    const auto parallel = core::screen_lot_parallel(paper_factory(), fast_settings(), mask,
                                                    dice, /*first_seed=*/3, /*threads=*/4);

    EXPECT_EQ(parallel.dice, sequential.dice);
    EXPECT_EQ(parallel.passed, sequential.passed);
    ASSERT_EQ(parallel.gain_distributions.size(), sequential.gain_distributions.size());
    for (std::size_t i = 0; i < parallel.gain_distributions.size(); ++i) {
        EXPECT_EQ(parallel.gain_distributions[i].mean, sequential.gain_distributions[i].mean);
        EXPECT_EQ(parallel.gain_distributions[i].stddev,
                  sequential.gain_distributions[i].stddev);
        EXPECT_EQ(parallel.gain_distributions[i].min, sequential.gain_distributions[i].min);
        EXPECT_EQ(parallel.gain_distributions[i].max, sequential.gain_distributions[i].max);
    }
}

TEST(SweepEngine, ScreenBatchReportsEveryDieInSeedOrder) {
    const auto mask = spec_mask::paper_lowpass();
    sweep_engine engine = engine_with_threads(3);
    const auto batch = engine.screen_batch(mask, 4, /*first_seed=*/1);
    ASSERT_EQ(batch.size(), 4u);
    for (const auto& report : batch) {
        EXPECT_TRUE(report.self_test_passed);
        EXPECT_EQ(report.limits.size(), mask.limits.size());
    }

    // Element i must be the same die the sequential path would screen.
    auto board = paper_factory()(2); // first_seed + 1
    core::network_analyzer analyzer(board, fast_settings());
    const auto direct = core::screen(analyzer, mask);
    ASSERT_EQ(batch[1].limits.size(), direct.limits.size());
    for (std::size_t i = 0; i < direct.limits.size(); ++i) {
        EXPECT_EQ(batch[1].limits[i].measured_db, direct.limits[i].measured_db);
    }
}

TEST(SweepEngine, ItemSeedsAreUniqueAndSchedulingIndependent) {
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 1000; ++i) {
        seeds.insert(core::sweep_item_seed(42, i));
    }
    EXPECT_EQ(seeds.size(), 1000u);
    EXPECT_EQ(core::sweep_item_seed(42, 7), core::sweep_item_seed(42, 7));
    EXPECT_NE(core::sweep_item_seed(42, 7), core::sweep_item_seed(43, 7));
}

TEST(SweepEngine, EmptyFrequencyListThrows) {
    auto engine = engine_with_threads(2);
    EXPECT_THROW(engine.run({}), precondition_error);
}

TEST(SweepEngine, WorkerExceptionPropagatesToCaller) {
    sweep_engine_options options;
    options.threads = 4;
    options.share_calibration = false;
    board_factory throwing = [](std::uint64_t) -> core::demonstrator_board {
        throw configuration_error("factory exploded");
    };
    sweep_engine engine(throwing, fast_settings(), options);
    const auto frequencies = core::log_spaced(hertz{200.0}, kilohertz(1.0), 6);
    EXPECT_THROW(engine.run(frequencies), configuration_error);
}

} // namespace
