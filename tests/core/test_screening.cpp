// Production screening: self-test gating, conservative pass/fail, lot
// Monte Carlo.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include "core/screening.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::demonstrator_board;
using core::network_analyzer;
using core::spec_mask;

analyzer_settings fast_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::ideal();
    settings.evaluator.offset = eval::offset_mode::none;
    settings.periods = 100;
    return settings;
}

TEST(Screening, GoodDiePasses) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.01, 7));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, fast_settings());
    const auto report = core::screen(analyzer, spec_mask::paper_lowpass());
    EXPECT_TRUE(report.self_test_passed);
    EXPECT_TRUE(report.passed);
    EXPECT_EQ(report.limits.size(), 3u);
    for (const auto& limit : report.limits) {
        EXPECT_TRUE(limit.passed) << limit.limit.name;
        EXPECT_TRUE(limit.measured_bounds_db.contains(limit.measured_db));
    }
}

TEST(Screening, WrongCutoffDieFails) {
    // A die whose filter came out at 1.5 kHz must fail the cutoff limit.
    bistna::rng generator(1);
    auto components = dut::design_sallen_key(1500.0, 1.0 / std::sqrt(2.0));
    demonstrator_board board(
        gen::generator_params::ideal(),
        std::make_unique<dut::linear_dut>(dut::sallen_key_lowpass(components),
                                          "off-spec 1.5 kHz filter"));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, fast_settings());
    const auto report = core::screen(analyzer, spec_mask::paper_lowpass());
    EXPECT_TRUE(report.self_test_passed);
    EXPECT_FALSE(report.passed);
}

TEST(Screening, BrokenStimulusGatesOutDutMeasurements) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(50.0)); // 100 mV instead of the nominal 300 mV
    network_analyzer analyzer(board, fast_settings());
    const auto report = core::screen(analyzer, spec_mask::paper_lowpass());
    EXPECT_FALSE(report.self_test_passed);
    EXPECT_FALSE(report.passed);
    EXPECT_TRUE(report.limits.empty()); // DUT data never trusted
}

TEST(Screening, LotYieldDistinguishesProcessQuality) {
    const auto settings = fast_settings();
    const auto mask = spec_mask::paper_lowpass();

    auto lot_with_sigma = [&](double sigma) {
        return core::screen_lot(
            [sigma](std::uint64_t seed) {
                core::demonstrator_board board(gen::generator_params::ideal(),
                                               dut::make_paper_dut(sigma, seed));
                board.set_amplitude(millivolt(150.0));
                return board;
            },
            settings, mask, 12, 100);
    };

    const auto good_lot = lot_with_sigma(0.01);
    const auto bad_lot = lot_with_sigma(0.08);
    EXPECT_EQ(good_lot.dice, 12u);
    EXPECT_GE(good_lot.yield(), 0.9);
    EXPECT_LT(bad_lot.yield(), good_lot.yield());
    // Distribution bookkeeping covers every mask limit.
    ASSERT_EQ(good_lot.gain_distributions.size(), mask.limits.size());
    EXPECT_GT(bad_lot.gain_distributions[1].stddev, good_lot.gain_distributions[1].stddev);
}

TEST(Screening, EmptyMaskRejected) {
    demonstrator_board board(gen::generator_params::ideal(), dut::make_paper_dut(0.0, 1));
    board.set_amplitude(millivolt(150.0));
    network_analyzer analyzer(board, fast_settings());
    EXPECT_THROW((void)core::screen(analyzer, spec_mask{}), precondition_error);
}

} // namespace
