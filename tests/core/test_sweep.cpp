#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "core/sweep.hpp"

namespace {

using namespace bistna;

TEST(Sweep, LogSpacedEndpointsAndMonotonic) {
    const auto points = core::log_spaced(hertz{100.0}, hertz{100000.0}, 13);
    ASSERT_EQ(points.size(), 13u);
    EXPECT_NEAR(points.front().value, 100.0, 1e-9);
    EXPECT_NEAR(points.back().value, 100000.0, 1e-6);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].value, points[i - 1].value);
    }
    // Constant ratio between consecutive points.
    const double ratio = points[1].value / points[0].value;
    for (std::size_t i = 2; i < points.size(); ++i) {
        EXPECT_NEAR(points[i].value / points[i - 1].value, ratio, 1e-9);
    }
}

TEST(Sweep, LinearSpacedStep) {
    const auto points = core::linear_spaced(hertz{0.0}, hertz{100.0}, 11);
    ASSERT_EQ(points.size(), 11u);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_NEAR(points[i].value, 10.0 * static_cast<double>(i), 1e-12);
    }
}

TEST(Sweep, Validation) {
    EXPECT_THROW((void)core::log_spaced(hertz{0.0}, hertz{10.0}, 5), precondition_error);
    EXPECT_THROW((void)core::log_spaced(hertz{10.0}, hertz{5.0}, 5), precondition_error);
    EXPECT_THROW((void)core::log_spaced(hertz{1.0}, hertz{10.0}, 1), precondition_error);
    EXPECT_THROW((void)core::linear_spaced(hertz{5.0}, hertz{5.0}, 3), precondition_error);
}

} // namespace
