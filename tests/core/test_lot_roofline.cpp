// The roofline render->measure pipeline end to end: lane-major execution
// must be bit-identical to the reference pipeline, autotune must pick a
// real configuration without perturbing results, and a steady-state lot
// loop must stop touching the heap for anything sizeable after its first
// pass (arena reuse + stimulus/table caches + calibration transplant).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/screening.hpp"
#include "core/sweep_engine.hpp"
#include "dut/filters.hpp"

// --- Passive large-allocation counter (this TU only defines it once for
// the whole test binary; it never changes allocation behaviour) -----------
namespace {
std::atomic<std::uint64_t> g_large_allocations{0};
constexpr std::size_t kLargeAllocationBytes = 64 * 1024;
} // namespace

void* operator new(std::size_t count) {
    if (count >= kLargeAllocationBytes) {
        g_large_allocations.fetch_add(1, std::memory_order_relaxed);
    }
    if (void* p = std::malloc(count == 0 ? 1 : count)) {
        return p;
    }
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace bistna;
using core::analyzer_settings;
using core::screening_options;
using core::screening_report;
using core::spec_mask;
using core::sweep_engine;
using core::sweep_engine_options;
using core::sweep_pipeline;

analyzer_settings lot_settings() {
    analyzer_settings settings;
    settings.evaluator.modulator = sd::modulator_params::cmos035();
    settings.evaluator.offset = eval::offset_mode::calibrated;
    settings.evaluator.calibration_periods = 128; // grounded run > 64 KiB buffers
    settings.periods = 16;
    settings.settle_periods = 4;
    settings.distortion_periods = 32;
    return settings;
}

core::board_factory make_factory(double sigma) {
    return [sigma](std::uint64_t seed) {
        core::demonstrator_board board(gen::generator_params::ideal(),
                                       dut::make_paper_dut(sigma, seed));
        board.set_amplitude(millivolt(150.0));
        return board;
    };
}

bool same_double(double a, double b) {
    return (a != a && b != b) || a == b; // NaN-tolerant exact compare
}

void expect_reports_identical(const std::vector<screening_report>& a,
                              const std::vector<screening_report>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t die = 0; die < a.size(); ++die) {
        EXPECT_EQ(a[die].self_test_passed, b[die].self_test_passed) << "die " << die;
        EXPECT_EQ(a[die].stimulus_volts, b[die].stimulus_volts) << "die " << die;
        EXPECT_EQ(a[die].stimulus_phase_deg, b[die].stimulus_phase_deg) << "die " << die;
        EXPECT_EQ(a[die].offset_rate, b[die].offset_rate) << "die " << die;
        EXPECT_EQ(a[die].passed, b[die].passed) << "die " << die;
        EXPECT_EQ(a[die].distortion_measured, b[die].distortion_measured) << "die " << die;
        EXPECT_TRUE(same_double(a[die].thd_db, b[die].thd_db)) << "die " << die;
        ASSERT_EQ(a[die].limits.size(), b[die].limits.size()) << "die " << die;
        for (std::size_t i = 0; i < a[die].limits.size(); ++i) {
            EXPECT_EQ(a[die].limits[i].measured_db, b[die].limits[i].measured_db)
                << "die " << die << " limit " << i;
            EXPECT_EQ(a[die].limits[i].phase_deg, b[die].limits[i].phase_deg)
                << "die " << die << " limit " << i;
            EXPECT_EQ(a[die].limits[i].passed, b[die].limits[i].passed)
                << "die " << die << " limit " << i;
        }
    }
}

std::vector<screening_report> screen(sweep_pipeline pipeline, std::size_t lanes,
                                     std::size_t dice,
                                     const screening_options& screening) {
    sweep_engine_options options;
    options.threads = 2;
    options.batch_lanes = lanes;
    options.pipeline = pipeline;
    sweep_engine engine(make_factory(0.02), lot_settings(), options);
    return engine.screen_batch(spec_mask::paper_lowpass(), dice, 1, screening);
}

TEST(LotRoofline, LaneMajorPipelineBitIdenticalToReference) {
    screening_options screening;
    screening.measure_distortion = true;
    screening.continue_after_self_test_failure = true;
    // Reference pipeline, scalar lanes = the PR-6 ground truth; the
    // lane-major pipeline must match it die for die at several lane counts
    // (including one that doesn't divide the dice evenly).
    const auto reference = screen(sweep_pipeline::reference, 1, 13, screening);
    for (std::size_t lanes : {4u, 8u}) {
        const auto reference_lanes =
            screen(sweep_pipeline::reference, lanes, 13, screening);
        const auto roofline = screen(sweep_pipeline::lane_major, lanes, 13, screening);
        expect_reports_identical(reference, reference_lanes);
        expect_reports_identical(reference, roofline);
    }
}

TEST(LotRoofline, SecondLotPassAllocatesNoLargeBlocks) {
    sweep_engine_options options;
    options.threads = 1; // one worker -> one arena, deterministic reuse
    options.batch_lanes = 8;
    options.pipeline = sweep_pipeline::lane_major;
    sweep_engine engine(make_factory(0.02), lot_settings(), options);

    screening_options screening;
    screening.measure_distortion = true;

    // First pass warms every reuse path: arena growth, staircase cache,
    // demodulation tables, calibration snapshot.
    (void)engine.screen_batch(spec_mask::paper_lowpass(), 24, 1, screening);

    const std::uint64_t before = g_large_allocations.load(std::memory_order_relaxed);
    const auto second = engine.screen_batch(spec_mask::paper_lowpass(), 24, 1, screening);
    const std::uint64_t after = g_large_allocations.load(std::memory_order_relaxed);

    EXPECT_EQ(second.size(), 24u);
    EXPECT_EQ(after - before, 0u)
        << "steady-state lot pass performed " << (after - before)
        << " allocations >= 64 KiB; the arena/cache reuse paths regressed";

    const auto stats = engine.stats();
    EXPECT_GT(stats.stimulus.hits, 0u);
    EXPECT_GT(stats.calibration_snapshots, 0u);
}

TEST(Autotune, ConstructionPicksAConfigurationAndReportsIt) {
    sweep_engine_options options;
    options.autotune = true;
    sweep_engine engine(make_factory(0.02), lot_settings(), options);

    const auto stats = engine.stats();
    EXPECT_TRUE(stats.autotuned);
    EXPECT_GT(stats.autotune_seconds, 0.0);
    EXPECT_GE(stats.autotune_candidates.size(), 3u);
    EXPECT_GE(stats.threads, 1u);
    const bool lanes_from_grid = stats.batch_lanes == 4 || stats.batch_lanes == 8 ||
                                 stats.batch_lanes == 16;
    EXPECT_TRUE(lanes_from_grid) << "picked " << stats.batch_lanes;
    for (const auto& candidate : stats.autotune_candidates) {
        EXPECT_GT(candidate.dice_per_second, 0.0);
        EXPECT_GT(candidate.seconds, 0.0);
    }
}

TEST(Autotune, TunedEngineStaysBitIdenticalToReference) {
    screening_options screening;
    const auto reference = screen(sweep_pipeline::reference, 1, 9, screening);

    sweep_engine_options options;
    options.autotune = true;
    sweep_engine engine(make_factory(0.02), lot_settings(), options);
    const auto tuned = engine.screen_batch(spec_mask::paper_lowpass(), 9, 1, screening);
    expect_reports_identical(reference, tuned);
}

TEST(Autotune, SharedQueueTunesLanesOnly) {
    auto queue = std::make_shared<core::job_queue>(2);
    sweep_engine_options options;
    options.autotune = true;
    options.queue = queue;
    sweep_engine engine(make_factory(0.02), lot_settings(), options);

    const auto stats = engine.stats();
    EXPECT_TRUE(stats.autotuned);
    EXPECT_EQ(stats.threads, 2u) << "a shared queue's thread count is not tunable";
    for (const auto& candidate : stats.autotune_candidates) {
        EXPECT_EQ(candidate.threads, 2u);
    }
}

} // namespace
