// Demonstrator-board wiring: staircase structure, calibration path,
// phase coherence across renders.
#include "common/error.hpp"
#include <gtest/gtest.h>

#include <cmath>

#include "core/board.hpp"
#include "dsp/goertzel.hpp"
#include "dut/filters.hpp"

namespace {

using namespace bistna;
using core::demonstrator_board;
using core::signal_path;

demonstrator_board make_board(gen::generator_params params = gen::generator_params::ideal()) {
    return demonstrator_board(params, dut::make_paper_dut(0.0, 1));
}

TEST(Board, CalibrationPathIsStaircaseHeldSixSamples) {
    auto board = make_board();
    board.set_amplitude(millivolt(150.0));
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto record = board.render(tb, 4, signal_path::calibration);
    ASSERT_EQ(record.size(), 4u * 96u);
    for (std::size_t n = 0; n < record.size(); n += 6) {
        for (std::size_t j = 1; j < 6 && n + j < record.size(); ++j) {
            ASSERT_DOUBLE_EQ(record[n], record[n + j]) << "hold broken at " << n + j;
        }
    }
}

TEST(Board, CalibrationRecordHasProgrammedAmplitude) {
    auto board = make_board();
    board.set_amplitude(millivolt(150.0));
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto record = board.render(tb, 32, signal_path::calibration);
    const double amplitude = dsp::estimate_tone(record, 1.0 / 96.0, 1.0).amplitude;
    EXPECT_NEAR(amplitude, 0.3, 0.01); // 2 * 150 mV
}

TEST(Board, DutPathAppliesFilterGain) {
    auto board = make_board();
    board.set_amplitude(millivolt(150.0));
    // At f_wave = 2 kHz the 1 kHz Butterworth attenuates by ~ -12.3 dB.
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(2.0));
    const auto cal = board.render(tb, 32, signal_path::calibration);
    const auto out = board.render(tb, 32, signal_path::through_dut);
    const double a_in = dsp::estimate_tone(cal, 1.0 / 96.0, 1.0).amplitude;
    const double a_out = dsp::estimate_tone(out, 1.0 / 96.0, 1.0).amplitude;
    const double expected = std::abs(board.dut().ideal_response(2000.0));
    EXPECT_NEAR(a_out / a_in, expected, 0.03 * expected + 0.01);
}

TEST(Board, RendersArePhaseCoherent) {
    auto board = make_board();
    board.set_amplitude(millivolt(100.0));
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    const auto r1 = board.render(tb, 8, signal_path::calibration);
    const auto r2 = board.render(tb, 8, signal_path::calibration);
    for (std::size_t i = 0; i < r1.size(); ++i) {
        ASSERT_DOUBLE_EQ(r1[i], r2[i]) << "render not reproducible at " << i;
    }
}

TEST(Board, SourceAdapterBoundsChecked) {
    auto board = make_board();
    const auto tb = sim::timebase::for_wave_frequency(kilohertz(1.0));
    auto record = board.render(tb, 2, signal_path::calibration);
    const auto source = demonstrator_board::as_source(std::move(record));
    (void)source(0);
    (void)source(2 * 96 - 1);
    EXPECT_THROW((void)source(2 * 96), precondition_error);
}

TEST(Board, RequiresDut) {
    EXPECT_THROW(demonstrator_board(gen::generator_params::ideal(), nullptr),
                 precondition_error);
}

} // namespace
